"""Shared primitive types and identifiers.

The paper models a system as a set of clusters ``S = {C_1, ..., C_z}``,
each holding ``n`` replicas of which at most ``f`` are Byzantine with
``n > 3f``.  This module defines the identifier types used to address
replicas, clusters, and clients throughout the library, plus small value
objects shared by several subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from .errors import ConfigurationError

# Type aliases used pervasively.  They are plain ints/strs so messages stay
# cheap to hash and compare inside the simulator's hot loop.
ClusterId = int
RoundId = int
ViewId = int
SeqNum = int


class NodeId(NamedTuple):
    """Globally unique address of a replica or client.

    ``kind`` is ``"replica"`` or ``"client"``; replicas additionally carry
    the cluster they belong to and their index (the paper's ``id(R)``,
    which is 1-based within a cluster).

    Node ids key nearly every dict in the simulator's hot loop (uplink
    queues, commit votes, metrics), so the class is a named tuple:
    hashing, equality, and ordering all run at C speed with no Python
    frame per dict probe.  Field order matches the old dataclass
    declaration order, so sorting replicas is unchanged.  ``str()`` —
    interpolated into every signed payload — is memoized in a side
    table keyed by the (interned) id.
    """

    kind: str
    cluster: ClusterId
    index: int

    def __str__(self) -> str:
        try:
            return _node_str_memo[self]
        except KeyError:
            s = f"{self.kind[0]}{self.cluster}.{self.index}"
            _node_str_memo[self] = s
            return s


_node_str_memo: dict = {}


# Node ids are value objects constructed millions of times per run; the
# factory functions intern them so equal ids are the *same* object and
# dict lookups take the identity fast path instead of dataclass __eq__.
_node_id_intern: dict = {}


def replica_id(cluster: ClusterId, index: int) -> NodeId:
    """Return the :class:`NodeId` of replica ``index`` in ``cluster``.

    ``index`` follows the paper's convention and is 1-based.  Interned:
    repeated calls return the same instance.
    """
    if index < 1:
        raise ConfigurationError(f"replica index must be >= 1, got {index}")
    key = ("replica", cluster, index)
    node = _node_id_intern.get(key)
    if node is None:
        node = _node_id_intern[key] = NodeId(*key)
    return node


def client_id(cluster: ClusterId, index: int) -> NodeId:
    """Return the :class:`NodeId` of client ``index`` local to ``cluster``.

    Interned like :func:`replica_id`.
    """
    if index < 1:
        raise ConfigurationError(f"client index must be >= 1, got {index}")
    key = ("client", cluster, index)
    node = _node_id_intern.get(key)
    if node is None:
        node = _node_id_intern[key] = NodeId(*key)
    return node


def max_faulty(n: int) -> int:
    """Largest ``f`` a cluster of ``n`` replicas tolerates (``n > 3f``).

    >>> max_faulty(4)
    1
    >>> max_faulty(7)
    2
    """
    if n < 1:
        raise ConfigurationError(f"cluster size must be positive, got {n}")
    return (n - 1) // 3


def quorum_size(n: int) -> int:
    """The ``n - f`` quorum used by PBFT prepare/commit phases."""
    return n - max_faulty(n)


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one cluster: its id, region, and size."""

    cluster_id: ClusterId
    region: str
    num_replicas: int

    def __post_init__(self) -> None:
        if self.num_replicas < 4:
            raise ConfigurationError(
                f"cluster {self.cluster_id} needs >= 4 replicas to tolerate "
                f"one fault (n > 3f), got {self.num_replicas}"
            )

    @property
    def f(self) -> int:
        """Faults tolerated by this cluster."""
        return max_faulty(self.num_replicas)

    @property
    def quorum(self) -> int:
        """PBFT quorum (``n - f``) for this cluster."""
        return quorum_size(self.num_replicas)

    def replicas(self) -> list[NodeId]:
        """All replica ids of this cluster, in index order."""
        return [
            replica_id(self.cluster_id, i)
            for i in range(1, self.num_replicas + 1)
        ]
