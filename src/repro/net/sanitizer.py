"""Runtime message-aliasing sanitizer (``REPRO_SANITIZE=1``).

The simulator passes message *objects* between replicas — there is no
serialization boundary.  That is what makes paper-scale runs fast (one
canonical encoding serves every receiver), but it also means a buggy
protocol change can mutate a message **after** posting it, and every
other receiver of the aliased object silently observes the mutation.
PBFT-family safety arguments assume all receivers of a broadcast process
identical messages (Castro & Liskov §4), so this failure mode corrupts
runs without any exception — typically surfacing weeks later as a
drifted ``deployment_digest``.  No static rule can prove its absence.

The sanitizer closes the gap at runtime: :class:`~repro.net.network.
Network` fingerprints each message when the delivery event is posted and
re-checks the fingerprint when the event fires, raising
:class:`~repro.errors.MessageAliasingError` (naming the message type and
sender) on any divergence.

Why not reuse the cached canonical encoding?  :class:`~repro.crypto.
digests.CachedEncodable` memoizes an instance's encoding the first time
it is computed — a message mutated *after* that point keeps serving its
stale cached bytes, which is precisely the corruption this tool hunts.
:func:`live_fingerprint` therefore re-walks the ``payload()`` tree on
every call and never reads (or writes) any ``_encoded_cache``.

Enabled via ``Network(..., sanitize=True)`` or the ``REPRO_SANITIZE=1``
environment variable.  Off by default: the uncached walk re-encodes
every request batch at every hop, which is exactly the work the PR-1
cache exists to avoid — expect sanitized runs to be several times
slower.  Scheduling is untouched (same events, same sequence numbers),
so ``deployment_digest`` values are byte-identical with the sanitizer on
or off.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Optional

from ..errors import MessageAliasingError

_ENV_FLAG = "REPRO_SANITIZE"


def sanitize_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve the sanitizer switch: explicit argument, else environment."""
    if explicit is not None:
        return explicit
    return os.environ.get(_ENV_FLAG, "") == "1"


def live_fingerprint(message: Any) -> bytes:
    """SHA256 over the message's *current* payload tree, uncached.

    Mirrors the canonical encoder's tagging (see
    :mod:`repro.crypto.digests`) but always expands ``payload()``
    instead of splicing ``_encoded_cache`` bytes, so a post-send
    mutation changes the fingerprint even after the instance memoized
    its encoding.  Objects without a ``payload()`` (foreign test
    doubles) fall back to a stable ``repr`` tag rather than failing —
    the sanitizer must never reject traffic the network itself accepts.
    """
    out: list = [type(message).__name__.encode()]
    emit = out.append
    stack: list = [message]
    push = stack.append
    pop = stack.pop
    while stack:
        v = pop()
        cls = v.__class__
        if cls is str:
            body = v.encode()
            emit(b"s%d:%b" % (len(body), body))
        elif cls is int:
            body = b"%d" % v
            emit(b"i%d:%b" % (len(body), body))
        elif cls is bytes:
            emit(b"b%d:%b" % (len(v), v))
        elif cls is tuple or cls is list:
            emit(b"l%d:" % len(v))
            for item in reversed(v):
                push(item)
        elif v is None:
            emit(b"N")
        elif v is True:
            emit(b"T")
        elif v is False:
            emit(b"F")
        elif cls is float:
            body = repr(v).encode()
            emit(b"f%d:%b" % (len(body), body))
        elif cls is dict:
            emit(b"d%d:" % len(v))
            for key in sorted(v, reverse=True):
                push(v[key])
                push(key)
        elif hasattr(v, "payload"):
            # Always re-walk — never splice a memoized encoding.
            push(v.payload())
        elif isinstance(v, (int, float)):
            body = repr(v).encode()
            emit(b"n%d:%b" % (len(body), body))
        elif isinstance(v, str):
            body = v.encode()
            emit(b"s%d:%b" % (len(body), body))
        elif isinstance(v, bytes):
            emit(b"b%d:%b" % (len(v), v))
        elif isinstance(v, (tuple, list)):
            emit(b"l%d:" % len(v))
            for item in reversed(v):
                push(item)
        else:
            body = repr(v).encode()
            emit(b"r%d:%b" % (len(body), body))
    return hashlib.sha256(b"".join(out)).digest()


class MessageSanitizer:
    """Fingerprint-at-send, verify-at-delivery checker.

    Stateless apart from counters: the send-time fingerprint rides
    inside the delivery event's arguments, so aliasing detection needs
    no identity map and holds no extra references to messages.
    """

    __slots__ = ("checks", "violations")

    def __init__(self) -> None:
        self.checks = 0
        self.violations = 0

    def fingerprint(self, message: Any) -> bytes:
        """Snapshot ``message``'s live payload fingerprint (send time)."""
        return live_fingerprint(message)

    def check(self, message: Any, expected: bytes, src: Any) -> None:
        """Assert ``message`` still matches its send-time fingerprint.

        Called when the delivery event fires.  Raises
        :class:`MessageAliasingError` naming the message type and the
        sending node, so the offending handler is one grep away.
        """
        self.checks += 1
        if live_fingerprint(message) != expected:
            self.violations += 1
            raise MessageAliasingError(
                f"{type(message).__name__} sent by {src} was mutated "
                f"between send and delivery; messages are shared by "
                f"reference and must be treated as immutable once "
                f"posted (construct a new object instead)"
            )
