"""Chaos engine: scheduled fault timelines over the event simulator.

The paper's failure study (§4.3, Figure 12) and the remote-view-change
protocol (§2.3, Example 2.4) both turn on *when* and *how* faults occur,
not just on which nodes are faulty.  This module turns the static rule
sets of :class:`~repro.net.failures.FailureModel` into a schedulable,
introspectable fault plan:

* A :class:`Fault` is a named behaviour with an activation window
  ``[at, until)`` on the simulated clock.  Concrete faults cover crashes
  and recoveries, directed partitions and heals, per-link delay/jitter
  injection, message-loss bursts, and Byzantine behaviours — omission of
  selected message types (the trigger for GeoBFT's remote view change),
  payload tampering that honest receivers must reject through their
  digest/signature verification paths, and primary equivocation
  (conflicting, individually well-formed proposals).
* A :class:`FaultTimeline` owns an ordered set of faults, installs them
  on a built :class:`~repro.bench.deployment.Deployment`, emits
  ``fault_on``/``fault_off`` events into the instrumentation hub, and
  records progress snapshots that the deployment's safety+liveness
  checker (:meth:`Deployment.check_invariants`) audits after the run.

Everything is driven through the discrete-event simulator, so a run
with a given (config, seed, timeline) triple is fully deterministic —
the chaos engine draws randomness (loss, jitter) only from its own
seeded generator, never from the simulator's.

Fault targets are **selectors**, resolved against the live deployment at
*activation* time so that e.g. ``"primary:1"`` names whichever replica
leads cluster 1 after any view changes that already happened:

========================  ==================================================
selector                  meaning
========================  ==================================================
``"replica:C.I"``         replica ``I`` of cluster ``C`` (also ``"rC.I"``)
``"cluster:C"``           every replica of cluster ``C``
``"primary:C"``           the *live* primary serving cluster ``C``
``"backup:C"``            the last non-primary replica of cluster ``C``
``"backups:C"``           every non-primary replica of cluster ``C``
``"backups:C:K"``         the last ``K`` non-primary replicas (``K`` may
                          be ``f``, the cluster's fault bound)
``"all"``                 every replica of the deployment
========================  ==================================================
"""

from __future__ import annotations

import dataclasses
import json
import random
import zlib
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..types import NodeId, max_faulty, replica_id

#: Message types tampered by default: every protocol's proposal/share
#: carrier plus the agreement votes, so a Byzantine actor corrupts
#: whatever role it happens to hold (primary, backup, or forwarder).
DEFAULT_TAMPER_KINDS = (
    "GlobalShare", "PrePrepare", "Prepare", "Commit", "OrderedRequest",
    "HsProposal", "HsVote", "SpecResponse", "StewardForward",
    "StewardGlobalOrder",
)


# ---------------------------------------------------------------------------
# Selector resolution
# ---------------------------------------------------------------------------
def _live_primary(deployment, cluster: int) -> NodeId:
    """The replica currently acting as primary for ``cluster``.

    Asks the first non-crashed member's protocol engine, so a timeline
    that fires after a view change targets the *rotated* primary, not
    the initial one.  Flat protocols report their single global primary;
    HotStuff (leaderless: every replica leads its own instance) falls
    back to the cluster's first member.
    """
    members = deployment.cluster_members[cluster]
    failures = deployment.network.failures
    for node in members:
        if failures.is_crashed(node):
            continue
        replica = deployment.replicas[node]
        engine = getattr(replica, "engine", None)
        if engine is not None:
            return engine.primary
        primary = getattr(replica, "primary", None)
        if primary is not None:
            return primary
        break
    return members[0]


class ChaosContext:
    """Resolution and injection surface handed to activating faults."""

    def __init__(self, deployment, rng: random.Random):
        self.deployment = deployment
        self.sim = deployment.sim
        self.network = deployment.network
        self.failures = deployment.network.failures
        #: Chaos-private randomness (loss, jitter).  Never the
        #: simulator's generator: injecting faults must not perturb the
        #: workload's random stream.
        self.rng = rng

    def members(self, cluster: int) -> List[NodeId]:
        members = self.deployment.cluster_members.get(cluster)
        if members is None:
            raise ConfigurationError(
                f"selector names unknown cluster {cluster}; deployment has "
                f"clusters {sorted(self.deployment.cluster_members)}"
            )
        return list(members)

    def live_primary(self, cluster: int) -> NodeId:
        self.members(cluster)  # validate the cluster exists
        return _live_primary(self.deployment, cluster)

    # -- selector grammar ------------------------------------------------
    def resolve(self, selector) -> List[NodeId]:
        """Resolve one selector to a list of live-deployment node ids."""
        if isinstance(selector, NodeId):
            return [selector]
        if isinstance(selector, (list, tuple)):
            return self.resolve_many(selector)
        if not isinstance(selector, str):
            raise ConfigurationError(
                f"fault target must be a selector string, got "
                f"{type(selector).__name__}"
            )
        text = selector.strip()
        if text == "all":
            out: List[NodeId] = []
            for cluster in sorted(self.deployment.cluster_members):
                out.extend(self.members(cluster))
            return out
        if text.startswith("r") and "." in text and ":" not in text:
            text = "replica:" + text[1:]
        head, _, rest = text.partition(":")
        try:
            if head == "replica":
                cluster_s, _, index_s = rest.partition(".")
                node = replica_id(int(cluster_s), int(index_s))
                if node not in dict.fromkeys(self.members(node.cluster)):
                    raise ConfigurationError(
                        f"selector {selector!r} names {node}, which is not "
                        f"deployed"
                    )
                return [node]
            if head == "cluster":
                return self.members(int(rest))
            if head == "primary":
                return [self.live_primary(int(rest))]
            if head in ("backup", "backups"):
                cluster_s, _, count_s = rest.partition(":")
                cluster = int(cluster_s)
                members = self.members(cluster)
                primary = self.live_primary(cluster)
                backups = [m for m in members if m != primary]
                if head == "backup":
                    return backups[-1:]
                if not count_s:
                    return backups
                count = (max_faulty(len(members)) if count_s == "f"
                         else int(count_s))
                return backups[len(backups) - min(count, len(backups)):]
        except ConfigurationError:
            raise
        except ValueError:
            pass
        raise ConfigurationError(
            f"unknown fault selector {selector!r}; expected 'replica:C.I', "
            f"'cluster:C', 'primary:C', 'backup:C', 'backups:C[:K]', "
            f"or 'all'"
        )

    def resolve_many(self, selectors) -> List[NodeId]:
        """Resolve several selectors, deduplicating but keeping order."""
        if isinstance(selectors, (str, NodeId)):
            selectors = [selectors]
        out: Dict[NodeId, None] = {}
        for selector in selectors:
            for node in self.resolve(selector):
                out[node] = None
        return list(out)


# ---------------------------------------------------------------------------
# Tampering helpers (Byzantine payload corruption)
# ---------------------------------------------------------------------------
def _corrupt_bytes(value: bytes) -> bytes:
    return (value[:-1] + bytes([value[-1] ^ 0xFF])) if value else b"\x00"


def _tamper_request(request):
    """Corrupt the transaction batch a request carries.

    The batch digest changes, so every honest verify path rejects the
    message: commit certificates fail their digest cross-check, signed
    requests fail signature verification, pre-prepares and HotStuff
    proposals fail their ``digest == request.digest()`` check.
    """
    from ..ledger.block import Transaction

    batch = tuple(request.batch)
    first = batch[0]
    evil = Transaction(first.txn_id, "update", first.key, "\x00chaos-tamper")
    return dataclasses.replace(request, batch=(evil,) + batch[1:])


def tamper_message(message):
    """Return a corrupted copy of ``message`` (best effort).

    Preference order: the embedded certificate's request, then a bare
    request, then any non-empty ``bytes`` field (digests).  Messages
    with nothing corruptible are returned unchanged.
    """
    if not dataclasses.is_dataclass(message):
        return message
    certificate = getattr(message, "certificate", None)
    if certificate is not None and getattr(certificate, "request", None) is not None:
        evil = dataclasses.replace(
            certificate, request=_tamper_request(certificate.request))
        return dataclasses.replace(message, certificate=evil)
    request = getattr(message, "request", None)
    if request is not None and getattr(request, "batch", None):
        return dataclasses.replace(message,
                                   request=_tamper_request(request))
    for field in dataclasses.fields(message):
        value = getattr(message, field.name)
        if isinstance(value, bytes) and value:
            return dataclasses.replace(
                message, **{field.name: _corrupt_bytes(value)})
    return message


# ---------------------------------------------------------------------------
# Fault taxonomy
# ---------------------------------------------------------------------------
class Fault:
    """One named, windowed fault.  Subclasses install/remove rules.

    ``at`` is the activation time (simulated seconds); ``until`` the
    deactivation time, or ``None`` for a fault that stays active to the
    end of the run.  ``expect_recovery`` tells the liveness checker
    whether progress must resume after this fault's window — set it to
    ``False`` for deliberately unrecoverable scenarios (e.g. crashing a
    whole cluster) so the checker does not flag them.
    """

    kind = "fault"
    _SPEC_KEYS: FrozenSet[str] = frozenset(
        {"name", "at", "until", "expect_recovery"})

    def __init__(self, name: Optional[str] = None, at: float = 0.0,
                 until: Optional[float] = None,
                 expect_recovery: bool = True):
        if at < 0:
            raise ConfigurationError(
                f"fault activation time must be >= 0, got {at}")
        if until is not None and until <= at:
            raise ConfigurationError(
                f"fault window must end after it starts "
                f"(at={at}, until={until})")
        self.name = name or f"{self.kind}@{at:g}s"
        self.at = float(at)
        self.until = None if until is None else float(until)
        self.expect_recovery = bool(expect_recovery)
        self.active = False
        #: Nodes the fault resolved to at activation (introspection).
        self.resolved_targets: List[NodeId] = []

    # -- lifecycle -------------------------------------------------------
    def activate(self, ctx: ChaosContext) -> None:
        """Install the fault's behaviour (called by the timeline)."""
        self._install(ctx)
        self.active = True

    def deactivate(self, ctx: ChaosContext) -> None:
        """Remove the fault's behaviour (called by the timeline)."""
        self._uninstall(ctx)
        self.active = False

    def _install(self, ctx: ChaosContext) -> None:
        raise NotImplementedError

    def _uninstall(self, ctx: ChaosContext) -> None:
        pass

    # -- introspection ---------------------------------------------------
    def byzantine_nodes(self) -> FrozenSet[NodeId]:
        """Nodes whose *behaviour* (not just availability) this fault
        corrupts; the safety auditor excludes them from the honest set."""
        return frozenset()

    @property
    def window(self) -> Tuple[float, Optional[float]]:
        """The ``(at, until)`` activation window."""
        return (self.at, self.until)

    def describe(self) -> str:
        """One human-readable line for fault-plan listings."""
        window = (f"[{self.at:g}s, "
                  + (f"{self.until:g}s)" if self.until is not None
                     else "end)"))
        return f"{self.name}: {self.kind} {window} {self._describe_what()}"

    def _describe_what(self) -> str:
        return ""

    def to_dict(self) -> dict:
        """Declarative form (the timeline JSON schema's fault object)."""
        out = {"kind": self.kind, "name": self.name, "at": self.at}
        if self.until is not None:
            out["until"] = self.until
        if not self.expect_recovery:
            out["expect_recovery"] = False
        out.update(self._extra_dict())
        return out

    def _extra_dict(self) -> dict:
        return {}

    @classmethod
    def from_dict(cls, spec: dict) -> "Fault":
        kwargs = {k: v for k, v in spec.items() if k != "kind"}
        unknown = set(kwargs) - cls._SPEC_KEYS
        if unknown:
            raise ConfigurationError(
                f"fault kind {cls.kind!r} does not accept "
                f"{sorted(unknown)}; accepted keys: "
                f"{sorted(cls._SPEC_KEYS)}"
            )
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid {cls.kind!r} fault spec: {exc}") from exc


def _as_selector_list(value, what: str) -> List[str]:
    if value is None:
        raise ConfigurationError(f"fault is missing required {what}")
    if isinstance(value, (str, NodeId)):
        return [value]
    if isinstance(value, (list, tuple)) and value:
        return list(value)
    raise ConfigurationError(
        f"fault {what} must be a selector or non-empty list of selectors")


class CrashFault(Fault):
    """Crash the resolved targets at ``at``; recover them at ``until``."""

    kind = "crash"
    _SPEC_KEYS = Fault._SPEC_KEYS | {"targets"}

    def __init__(self, targets, **kwargs):
        super().__init__(**kwargs)
        self.targets = _as_selector_list(targets, "targets")

    def _install(self, ctx: ChaosContext) -> None:
        self.resolved_targets = ctx.resolve_many(self.targets)
        for node in self.resolved_targets:
            ctx.failures.crash(node)

    def _uninstall(self, ctx: ChaosContext) -> None:
        for node in self.resolved_targets:
            ctx.failures.recover(node)

    def _describe_what(self) -> str:
        return f"targets={self.targets}"

    def _extra_dict(self) -> dict:
        return {"targets": [str(t) for t in self.targets]}


class PartitionFault(Fault):
    """Sever every (a, b) link between the two sides; heal at ``until``."""

    kind = "partition"
    _SPEC_KEYS = Fault._SPEC_KEYS | {"a", "b", "bidirectional"}

    def __init__(self, a, b, bidirectional: bool = True, **kwargs):
        super().__init__(**kwargs)
        self.a = _as_selector_list(a, "side 'a'")
        self.b = _as_selector_list(b, "side 'b'")
        self.bidirectional = bool(bidirectional)
        self._pairs: List[Tuple[NodeId, NodeId]] = []

    def _install(self, ctx: ChaosContext) -> None:
        side_a = ctx.resolve_many(self.a)
        side_b = ctx.resolve_many(self.b)
        self.resolved_targets = side_a + [n for n in side_b
                                          if n not in side_a]
        self._pairs = []
        for src in side_a:
            for dst in side_b:
                if src == dst:
                    continue
                self._pairs.append((src, dst))
                if self.bidirectional:
                    self._pairs.append((dst, src))
        for src, dst in self._pairs:
            ctx.failures.sever(src, dst)

    def _uninstall(self, ctx: ChaosContext) -> None:
        for src, dst in self._pairs:
            ctx.failures.heal(src, dst)

    def _describe_what(self) -> str:
        arrow = "<->" if self.bidirectional else "->"
        return f"{self.a} {arrow} {self.b}"

    def _extra_dict(self) -> dict:
        out = {"a": list(self.a), "b": list(self.b)}
        if not self.bidirectional:
            out["bidirectional"] = False
        return out


class _LinkMatchFault(Fault):
    """Shared machinery for faults that match (src, dst) link pairs."""

    _SPEC_KEYS = Fault._SPEC_KEYS | {"a", "b", "bidirectional"}

    def __init__(self, a=None, b=None, bidirectional: bool = True,
                 **kwargs):
        super().__init__(**kwargs)
        self.a = None if a is None else _as_selector_list(a, "side 'a'")
        self.b = None if b is None else _as_selector_list(b, "side 'b'")
        self.bidirectional = bool(bidirectional)
        self._side_a: Optional[FrozenSet[NodeId]] = None
        self._side_b: Optional[FrozenSet[NodeId]] = None

    def _resolve_sides(self, ctx: ChaosContext) -> None:
        self._side_a = (None if self.a is None
                        else frozenset(ctx.resolve_many(self.a)))
        self._side_b = (None if self.b is None
                        else frozenset(ctx.resolve_many(self.b)))
        resolved: List[NodeId] = []
        for side in (self._side_a, self._side_b):
            if side:
                resolved.extend(n for n in sorted(side, key=str)
                                if n not in resolved)
        self.resolved_targets = resolved

    def _matches(self, src: NodeId, dst: NodeId) -> bool:
        side_a, side_b = self._side_a, self._side_b
        forward = ((side_a is None or src in side_a)
                   and (side_b is None or dst in side_b))
        if forward:
            return True
        if not self.bidirectional:
            return False
        return ((side_a is None or dst in side_a)
                and (side_b is None or src in side_b))

    def _extra_dict(self) -> dict:
        out = {}
        if self.a is not None:
            out["a"] = list(self.a)
        if self.b is not None:
            out["b"] = list(self.b)
        if not self.bidirectional:
            out["bidirectional"] = False
        return out


class LinkDelayFault(_LinkMatchFault):
    """Add ``extra_ms`` (plus uniform jitter up to ``jitter_ms``) of
    one-way latency to matching sends while active."""

    kind = "delay"
    _SPEC_KEYS = _LinkMatchFault._SPEC_KEYS | {"extra_ms", "jitter_ms"}

    def __init__(self, extra_ms: float = 0.0, jitter_ms: float = 0.0,
                 **kwargs):
        super().__init__(**kwargs)
        if extra_ms < 0 or jitter_ms < 0:
            raise ConfigurationError("delay fault needs non-negative "
                                     "extra_ms/jitter_ms")
        if extra_ms == 0 and jitter_ms == 0:
            raise ConfigurationError(
                "delay fault needs extra_ms or jitter_ms > 0")
        self.extra_ms = float(extra_ms)
        self.jitter_ms = float(jitter_ms)
        self._rule = None

    def _install(self, ctx: ChaosContext) -> None:
        self._resolve_sides(ctx)
        extra_s = self.extra_ms / 1e3
        jitter_s = self.jitter_ms / 1e3
        rng = ctx.rng

        def rule(src, dst, message):
            if not self._matches(src, dst):
                return 0.0
            if jitter_s:
                return extra_s + rng.random() * jitter_s
            return extra_s

        self._rule = ctx.failures.add_delay_rule(rule)

    def _uninstall(self, ctx: ChaosContext) -> None:
        if self._rule is not None:
            ctx.failures.remove_delay_rule(self._rule)
            self._rule = None

    def _describe_what(self) -> str:
        return (f"+{self.extra_ms:g}ms"
                + (f"±{self.jitter_ms:g}ms" if self.jitter_ms else "")
                + f" on {self.a or 'any'} <-> {self.b or 'any'}")

    def _extra_dict(self) -> dict:
        out = super()._extra_dict()
        out["extra_ms"] = self.extra_ms
        if self.jitter_ms:
            out["jitter_ms"] = self.jitter_ms
        return out


class MessageLossFault(_LinkMatchFault):
    """Lose a fraction ``rate`` of matching messages in flight."""

    kind = "loss"
    _SPEC_KEYS = _LinkMatchFault._SPEC_KEYS | {"rate"}

    def __init__(self, rate: float = 0.0, **kwargs):
        super().__init__(**kwargs)
        if not 0.0 < rate <= 1.0:
            raise ConfigurationError(
                f"loss fault needs 0 < rate <= 1, got {rate}")
        self.rate = float(rate)
        self._rule = None

    def _install(self, ctx: ChaosContext) -> None:
        self._resolve_sides(ctx)
        rate = self.rate
        rng = ctx.rng

        def rule(src, dst, message):
            return self._matches(src, dst) and rng.random() < rate

        self._rule = ctx.failures.add_drop_rule(rule)

    def _uninstall(self, ctx: ChaosContext) -> None:
        if self._rule is not None:
            ctx.failures.remove_drop_rule(self._rule)
            self._rule = None

    def _describe_what(self) -> str:
        return (f"{self.rate:.0%} loss on "
                f"{self.a or 'any'} <-> {self.b or 'any'}")

    def _extra_dict(self) -> dict:
        out = super()._extra_dict()
        out["rate"] = self.rate
        return out


class OmissionFault(Fault):
    """Byzantine omission: the actor silently never sends matching
    message types (Example 2.4 — e.g. a primary withholding its global
    shares from a remote cluster, the remote view-change trigger)."""

    kind = "omit"
    _SPEC_KEYS = Fault._SPEC_KEYS | {"node", "messages", "to"}

    def __init__(self, node, messages=("GlobalShare",), to=None, **kwargs):
        super().__init__(**kwargs)
        self.node = _as_selector_list(node, "node")
        self.messages = tuple(_as_selector_list(messages, "messages"))
        self.to = None if to is None else _as_selector_list(to, "to")
        self._rule = None
        self._actors: FrozenSet[NodeId] = frozenset()

    def _install(self, ctx: ChaosContext) -> None:
        actors = frozenset(ctx.resolve_many(self.node))
        targets = (None if self.to is None
                   else frozenset(ctx.resolve_many(self.to)))
        kinds = frozenset(self.messages)
        self._actors = actors
        self.resolved_targets = sorted(actors, key=str)

        def rule(src, dst, message):
            return (src in actors
                    and (targets is None or dst in targets)
                    and type(message).__name__ in kinds)

        self._rule = ctx.failures.add_send_rule(rule)

    def _uninstall(self, ctx: ChaosContext) -> None:
        if self._rule is not None:
            ctx.failures.remove_send_rule(self._rule)
            self._rule = None

    def byzantine_nodes(self) -> FrozenSet[NodeId]:
        return self._actors

    def _describe_what(self) -> str:
        return (f"{self.node} omits {list(self.messages)}"
                + (f" to {self.to}" if self.to else ""))

    def _extra_dict(self) -> dict:
        out = {"node": list(self.node), "messages": list(self.messages)}
        if self.to is not None:
            out["to"] = list(self.to)
        return out


class TamperFault(Fault):
    """Byzantine tampering: matching outbound messages are replaced with
    corrupted copies.  Honest receivers must reject them through digest
    cross-checks and signature verification — a tampered certificate or
    proposal that *survives* a verify path is a protocol bug."""

    kind = "tamper"
    _SPEC_KEYS = Fault._SPEC_KEYS | {"node", "messages"}

    def __init__(self, node, messages=DEFAULT_TAMPER_KINDS, **kwargs):
        super().__init__(**kwargs)
        self.node = _as_selector_list(node, "node")
        self.messages = tuple(_as_selector_list(messages, "messages"))
        self._rule = None
        self._actors: FrozenSet[NodeId] = frozenset()

    def _install(self, ctx: ChaosContext) -> None:
        actors = frozenset(ctx.resolve_many(self.node))
        kinds = frozenset(self.messages)
        self._actors = actors
        self.resolved_targets = sorted(actors, key=str)

        def rule(src, dst, message):
            if src in actors and type(message).__name__ in kinds:
                return tamper_message(message)
            return message

        self._rule = ctx.failures.add_transform_rule(rule)

    def _uninstall(self, ctx: ChaosContext) -> None:
        if self._rule is not None:
            ctx.failures.remove_transform_rule(self._rule)
            self._rule = None

    def byzantine_nodes(self) -> FrozenSet[NodeId]:
        return self._actors

    def _describe_what(self) -> str:
        return f"{self.node} corrupts {list(self.messages)}"

    def _extra_dict(self) -> dict:
        return {"node": list(self.node), "messages": list(self.messages)}


class EquivocateFault(Fault):
    """Byzantine equivocation: the live primary of ``cluster`` proposes
    *different, individually well-formed* batches for the same slot to
    different backups (a conflicting unsigned no-op to half of them).
    Quorum intersection must keep honest replicas from diverging; the
    stalled slot recovers through the cluster's view change."""

    kind = "equivocate"
    _SPEC_KEYS = Fault._SPEC_KEYS | {"cluster"}

    def __init__(self, cluster: int, **kwargs):
        super().__init__(**kwargs)
        self.cluster = int(cluster)
        self._rule = None
        self._actors: FrozenSet[NodeId] = frozenset()

    @staticmethod
    def _conflicting_preprepare(pp):
        from ..consensus.messages import ClientRequestBatch
        from ..ledger.block import Transaction

        noop = Transaction(
            f"equiv-{pp.cluster_id}-{pp.view}-{pp.seq}", "noop", 0, "")
        evil = ClientRequestBatch(
            batch_id=f"equiv:{pp.cluster_id}:{pp.view}:{pp.seq}",
            client=pp.request.client,
            batch=(noop,),
            signature=None,
        )
        return dataclasses.replace(pp, digest=evil.digest(), request=evil)

    def _install(self, ctx: ChaosContext) -> None:
        actor = ctx.live_primary(self.cluster)
        self._actors = frozenset([actor])
        self.resolved_targets = [actor]

        def rule(src, dst, message):
            if (src == actor
                    and type(message).__name__ == "PrePrepare"
                    and getattr(message, "request", None) is not None
                    # Deterministic half-split of the backups.
                    and zlib.crc32(str(dst).encode()) & 1):
                return self._conflicting_preprepare(message)
            return message

        self._rule = ctx.failures.add_transform_rule(rule)

    def _uninstall(self, ctx: ChaosContext) -> None:
        if self._rule is not None:
            ctx.failures.remove_transform_rule(self._rule)
            self._rule = None

    def byzantine_nodes(self) -> FrozenSet[NodeId]:
        return self._actors

    def _describe_what(self) -> str:
        return f"primary of cluster {self.cluster} equivocates"

    def _extra_dict(self) -> dict:
        return {"cluster": self.cluster}


#: Declarative-spec dispatch: JSON ``kind`` -> fault class.
FAULT_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (CrashFault, PartitionFault, LinkDelayFault,
                MessageLossFault, OmissionFault, TamperFault,
                EquivocateFault)
}


def fault_from_dict(spec) -> Fault:
    """Build one fault from its declarative (JSON) form."""
    if not isinstance(spec, dict):
        raise ConfigurationError(
            f"each fault spec must be an object, got "
            f"{type(spec).__name__}")
    kind = spec.get("kind")
    if kind not in FAULT_KINDS:
        raise ConfigurationError(
            f"unknown fault kind {kind!r}; expected one of "
            f"{sorted(FAULT_KINDS)}")
    return FAULT_KINDS[kind].from_dict(spec)


# ---------------------------------------------------------------------------
# The timeline
# ---------------------------------------------------------------------------
class FaultTimeline:
    """An ordered, schedulable set of faults for one deployment run.

    Build programmatically (``timeline.add(CrashFault(...))``) or from a
    declarative JSON spec (:meth:`from_json` / :meth:`load`), then
    :meth:`install` it on a built deployment *before* ``run()``.  The
    timeline drives every (de)activation through the simulator, records
    ledger-progress snapshots around each fault window, and feeds the
    safety auditor the set of Byzantine actors to exclude.
    """

    def __init__(self, faults: Iterable[Fault] = (),
                 name: str = "timeline"):
        self.name = name
        self._faults: List[Fault] = []
        for fault in faults:
            self.add(fault)
        self._installed = False
        self._ctx: Optional[ChaosContext] = None
        # fault index -> (time, total ledger height) snapshots.
        self._activated: Dict[int, Tuple[float, int]] = {}
        self._deactivated: Dict[int, Tuple[float, int]] = {}

    # -- construction ----------------------------------------------------
    def add(self, fault: Fault) -> Fault:
        """Append one fault; returns it for chaining."""
        if not isinstance(fault, Fault):
            raise ConfigurationError(
                f"timeline entries must be Fault instances, got "
                f"{type(fault).__name__}")
        self._faults.append(fault)
        return fault

    @property
    def faults(self) -> Tuple[Fault, ...]:
        """The scheduled faults, in insertion order."""
        return tuple(self._faults)

    def __len__(self) -> int:
        return len(self._faults)

    def describe(self) -> str:
        """Multi-line fault plan (one line per fault)."""
        if not self._faults:
            return f"timeline {self.name!r}: (no faults)"
        lines = [f"timeline {self.name!r}: {len(self._faults)} faults"]
        lines.extend(f"  {fault.describe()}" for fault in self._faults)
        return "\n".join(lines)

    # -- declarative form ------------------------------------------------
    def to_dict(self) -> dict:
        return {"name": self.name,
                "faults": [fault.to_dict() for fault in self._faults]}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, spec) -> "FaultTimeline":
        if not isinstance(spec, dict):
            raise ConfigurationError(
                "timeline spec must be an object with a 'faults' list")
        faults = spec.get("faults")
        if not isinstance(faults, list):
            raise ConfigurationError(
                "timeline spec needs a 'faults' list")
        return cls((fault_from_dict(entry) for entry in faults),
                   name=spec.get("name", "timeline"))

    @classmethod
    def from_json(cls, text: str) -> "FaultTimeline":
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"timeline spec is not valid JSON: {exc}") from exc
        return cls.from_dict(spec)

    @classmethod
    def load(cls, path: str) -> "FaultTimeline":
        """Read a timeline from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read fault timeline {path!r}: {exc}") from exc
        return cls.from_json(text)

    # -- scheduling ------------------------------------------------------
    def install(self, deployment) -> "FaultTimeline":
        """Schedule every fault on the deployment's simulator.

        A timeline instance carries per-run bookkeeping, so it installs
        exactly once; build a fresh timeline (or reload the spec) for
        each deployment.
        """
        if self._installed:
            raise ConfigurationError(
                "timeline already installed; build a fresh FaultTimeline "
                "per deployment")
        if getattr(deployment, "timeline", None) is not None:
            raise ConfigurationError(
                "deployment already has a fault timeline "
                f"({deployment.timeline.name!r}); merge the faults into "
                "one timeline instead")
        seed = (deployment.config.seed * 1_000_003
                + zlib.crc32(self.name.encode("utf-8")))
        self._ctx = ChaosContext(deployment, random.Random(seed))
        self._installed = True
        deployment.timeline = self
        sim = deployment.sim
        for index, fault in enumerate(self._faults):
            sim.schedule(max(0.0, fault.at - sim.now),
                         self._activate, index, fault)
        return self

    def _progress(self) -> int:
        deployment = self._ctx.deployment
        return sum(replica.ledger.height
                   for replica in deployment.replicas.values())

    def _activate(self, index: int, fault: Fault) -> None:
        ctx = self._ctx
        fault.activate(ctx)
        self._activated[index] = (ctx.sim.now, self._progress())
        self._emit(index, fault, "fault_on")
        if fault.until is not None:
            ctx.sim.schedule(max(0.0, fault.until - ctx.sim.now),
                             self._deactivate, index, fault)

    def _deactivate(self, index: int, fault: Fault) -> None:
        ctx = self._ctx
        fault.deactivate(ctx)
        self._deactivated[index] = (ctx.sim.now, self._progress())
        self._emit(index, fault, "fault_off")

    def _emit(self, index: int, fault: Fault, phase: str) -> None:
        """Record the transition in the instrumentation hub (if any).

        Observation-only: the hub is never required, and emitting does
        not consume simulator events or randomness, so instrumented and
        bare runs stay byte-identical.
        """
        instr = self._ctx.deployment.instrumentation
        if instr is None:
            return
        node = (fault.resolved_targets[0] if fault.resolved_targets
                else fault.name)
        instr.phase(phase, node, 0, index, detail=fault.name)
        instr.count(f"chaos.{phase}")
        instr.count(f"chaos.{fault.kind}.{phase}")

    # -- post-run auditing ----------------------------------------------
    def byzantine_nodes(self) -> FrozenSet[NodeId]:
        """Every node whose behaviour a fault corrupted (post-install)."""
        out: set = set()
        for fault in self._faults:
            out |= fault.byzantine_nodes()
        return frozenset(out)

    def activation_log(self) -> List[Tuple[str, str, float]]:
        """(fault name, 'on'/'off', time) transitions that happened."""
        log: List[Tuple[str, str, float]] = []
        for index, (time, _) in self._activated.items():
            log.append((self._faults[index].name, "on", time))
        for index, (time, _) in self._deactivated.items():
            log.append((self._faults[index].name, "off", time))
        return sorted(log, key=lambda entry: (entry[2], entry[1]))

    def liveness_failures(self, deployment) -> List[str]:
        """Fault windows after which the ledgers made no progress.

        For a windowed fault the reference point is deactivation (did
        throughput resume after the heal/recovery?); for an open-ended
        fault it is activation (did the system reconfigure around the
        fault — view change, remote view change — and keep committing?).
        Faults with ``expect_recovery=False`` and windows still open at
        the end of the run are skipped.
        """
        failures: List[str] = []
        final = sum(replica.ledger.height
                    for replica in deployment.replicas.values())
        for index, fault in enumerate(self._faults):
            if index not in self._activated or not fault.expect_recovery:
                continue
            if fault.until is not None:
                if index not in self._deactivated:
                    continue  # window still open when the run ended
                when, height = self._deactivated[index]
                what = "after its window closed"
            else:
                when, height = self._activated[index]
                what = "after it activated"
            if final <= height:
                failures.append(
                    f"fault {fault.name!r}: no ledger progress {what} "
                    f"(t={when:.3f}s, total height stuck at {height})")
        return failures
