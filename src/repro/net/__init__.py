"""Geo-scale network substrate: simulator, topology, links, failures.

This package is the stand-in for the paper's Google Cloud deployment.
See ``DESIGN.md`` §2 for the substitution argument.  Scheduled fault
injection (the chaos engine) lives in :mod:`repro.net.chaos`.
"""

from .chaos import (
    ChaosContext,
    CrashFault,
    EquivocateFault,
    FAULT_KINDS,
    Fault,
    FaultTimeline,
    LinkDelayFault,
    MessageLossFault,
    OmissionFault,
    PartitionFault,
    TamperFault,
    fault_from_dict,
    tamper_message,
)
from .failures import FailureModel
from .network import Network
from .simulator import Simulation, Timer
from .topology import PAPER_REGIONS, LinkSpec, Topology

__all__ = [
    "ChaosContext",
    "CrashFault",
    "EquivocateFault",
    "FAULT_KINDS",
    "Fault",
    "FaultTimeline",
    "FailureModel",
    "LinkDelayFault",
    "LinkSpec",
    "MessageLossFault",
    "Network",
    "OmissionFault",
    "PAPER_REGIONS",
    "PartitionFault",
    "Simulation",
    "TamperFault",
    "Timer",
    "Topology",
    "fault_from_dict",
    "tamper_message",
]
