"""Geo-scale network substrate: simulator, topology, links, failures.

This package is the stand-in for the paper's Google Cloud deployment.
See ``DESIGN.md`` §2 for the substitution argument.
"""

from .failures import FailureModel
from .network import Network
from .simulator import Simulation, Timer
from .topology import PAPER_REGIONS, LinkSpec, Topology

__all__ = [
    "FailureModel",
    "Network",
    "Simulation",
    "Timer",
    "PAPER_REGIONS",
    "LinkSpec",
    "Topology",
]
