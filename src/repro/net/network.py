"""Point-to-point network model over the simulator.

The model captures the two quantities the paper's evaluation turns on
(§1.1, Table 1):

* **Propagation latency** — one-way delay from the topology matrix.
* **Uplink serialization** — every node owns one *local* transmit queue
  (intra-region traffic at the region's multi-Gbit rate) and one shared
  *WAN egress* queue: all of a node's cross-region messages serialize
  through it, each transmitting at the Table 1 rate of its destination
  pair.  A single egress pipe is what a real NIC (and the paper's
  deployment) provides — it is why a PBFT primary pushing pre-prepares
  to 59 replicas across five remote regions is bandwidth-bound and
  *plateaus* as batches grow (Figure 13), while GeoBFT's ``f + 1``
  certificates per remote cluster barely load the pipe.

Failures are injected through a :class:`repro.net.failures.FailureModel`
consulted on every send/delivery, keeping protocol code oblivious to the
failure scenario being tested.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Protocol, Tuple

from ..errors import ConfigurationError
from ..types import NodeId
from .failures import FailureModel
from .simulator import Simulation
from .topology import Topology


class NetworkNode(Protocol):
    """What the network needs from an attached node."""

    @property
    def node_id(self) -> NodeId: ...

    @property
    def region(self) -> str: ...

    def deliver(self, message, sender: NodeId) -> None: ...


class SizedMessage(Protocol):
    """Every message must know its wire size."""

    def size_bytes(self) -> int: ...


#: Observer signature: (src, dst, message, size_bytes, is_local).
SendObserver = Callable[[NodeId, NodeId, object, int, bool], None]

#: Sentinel region key for a sender's shared cross-region egress queue.
_WAN_EGRESS = "__wan__"


def _message_size(message: SizedMessage) -> int:
    """``message.size_bytes()``, memoized per message instance.

    A multicast re-queries the size once per destination and certificates
    are re-sent across phases; the wire size of an (immutable) message
    never changes, so cache it in the instance ``__dict__``.  Objects
    without a ``__dict__`` (slotted test doubles) just recompute.
    """
    try:
        cached = message.__dict__.get("_size_cache")
    except AttributeError:
        return message.size_bytes()
    if cached is None:
        cached = message.size_bytes()
        object.__setattr__(message, "_size_cache", cached)
    return cached


class Network:
    """Delivers messages between registered nodes with realistic timing."""

    def __init__(self, sim: Simulation, topology: Topology,
                 failures: Optional[FailureModel] = None):
        self._sim = sim
        self._topology = topology
        self._failures = failures or FailureModel()
        self._nodes: Dict[NodeId, NetworkNode] = {}
        # (sender, destination region) -> time the uplink frees up.
        self._uplink_free_at: Dict[Tuple[NodeId, str], float] = {}
        self._observers: list[SendObserver] = []
        # Telemetry counters (pure integers, never read by the model).
        self._sends = 0
        self._self_sends = 0
        self._suppressed_sends = 0
        self._in_flight_drops = 0
        self._receiver_drops = 0
        self._tampered_sends = 0
        self._delayed_sends = 0

    @property
    def topology(self) -> Topology:
        """The region matrix this network runs on."""
        return self._topology

    @property
    def failures(self) -> FailureModel:
        """The failure model consulted on every send."""
        return self._failures

    @property
    def simulation(self) -> Simulation:
        """The simulator driving deliveries."""
        return self._sim

    def register(self, node: NetworkNode) -> None:
        """Attach a node; its region must exist in the topology."""
        if node.region not in self._topology.regions:
            raise ConfigurationError(
                f"node {node.node_id} placed in unknown region {node.region}"
            )
        if node.node_id in self._nodes:
            raise ConfigurationError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node

    def node(self, node_id: NodeId) -> NetworkNode:
        """Look up a registered node."""
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise ConfigurationError(f"unknown node {node_id}") from exc

    def known_nodes(self) -> Iterable[NodeId]:
        """Ids of all registered nodes."""
        return self._nodes.keys()

    def add_observer(self, observer: SendObserver) -> None:
        """Register a callback invoked for every (non-dropped) send."""
        self._observers.append(observer)

    def send(self, src: NodeId, dst: NodeId, message: SizedMessage) -> None:
        """Transmit ``message`` from ``src`` to ``dst``.

        Timing: the message first serializes on the sender's uplink to
        the destination region (``size / bandwidth``, queued FIFO behind
        earlier sends), then propagates (one-way latency), then is
        delivered.  Self-sends are delivered after a negligible delay.
        Drops (crashed nodes, partitions, Byzantine omission) consume no
        uplink time when the *sender* is suppressing the send, and full
        transmit time when the network or receiver loses it.
        """
        if src == dst:
            self._self_sends += 1
            self._sim.post(0.0, self._deliver, src, dst, message)
            return
        sender = self.node(src)
        receiver = self.node(dst)
        if self._failures.suppresses_send(src, dst, message):
            self._suppressed_sends += 1
            return
        if self._failures.has_transform_rules:
            # Byzantine tampering: the sender transmits a corrupted copy
            # (honest receivers reject it in their verify paths).
            transformed = self._failures.transform(src, dst, message)
            if transformed is None:
                self._suppressed_sends += 1
                return
            if transformed is not message:
                self._tampered_sends += 1
                message = transformed
        size = _message_size(message)
        link = self._topology.link(sender.region, receiver.region)
        transmit = size / link.bandwidth_bytes_per_s
        if sender.region == receiver.region:
            key = (src, receiver.region)
        else:
            # All cross-region traffic shares one egress pipe per
            # sender; each message still transmits at its pair's rate.
            key = (src, _WAN_EGRESS)
        start = max(self._sim.now, self._uplink_free_at.get(key, 0.0))
        self._uplink_free_at[key] = start + transmit
        arrival_delay = (start - self._sim.now) + transmit + link.latency_s
        if self._failures.has_delay_rules:
            extra = self._failures.extra_delay(src, dst, message)
            if extra > 0.0:
                self._delayed_sends += 1
                arrival_delay += extra
        is_local = sender.region == receiver.region
        self._sends += 1
        for observer in self._observers:
            observer(src, dst, message, size, is_local)
        if self._failures.drops_in_flight(src, dst, message):
            self._in_flight_drops += 1
            return
        # Deliveries are never cancelled: use the allocation-free path.
        self._sim.post(arrival_delay, self._deliver, src, dst, message)

    def multicast(self, src: NodeId, dsts: Iterable[NodeId],
                  message: SizedMessage) -> None:
        """Send one copy of ``message`` to each destination.

        Copies to the same region serialize on the shared uplink, which
        is what makes "broadcast to a far region" expensive.
        """
        for dst in dsts:
            self.send(src, dst, message)

    def _deliver(self, src: NodeId, dst: NodeId, message) -> None:
        if self._failures.drops_at_receiver(src, dst, message):
            self._receiver_drops += 1
            return
        node = self._nodes.get(dst)
        if node is not None:
            node.deliver(message, src)

    def telemetry(self) -> Dict[str, int]:
        """Send/drop counters (observability only)."""
        return {
            "sends": self._sends,
            "self_sends": self._self_sends,
            "suppressed_sends": self._suppressed_sends,
            "in_flight_drops": self._in_flight_drops,
            "receiver_drops": self._receiver_drops,
            "tampered_sends": self._tampered_sends,
            "delayed_sends": self._delayed_sends,
        }

    def uplink_backlog(self, src: NodeId, dst_region: str) -> float:
        """Seconds of queued transmit time on one uplink (diagnostics).

        For a cross-region destination this reports the sender's shared
        WAN egress backlog; pass the sender's own region for the local
        queue.
        """
        sender = self.node(src)
        if dst_region == sender.region:
            key = (src, dst_region)
        else:
            key = (src, _WAN_EGRESS)
        free_at = self._uplink_free_at.get(key, 0.0)
        return max(0.0, free_at - self._sim.now)
