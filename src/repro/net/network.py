"""Point-to-point network model over the simulator.

The model captures the two quantities the paper's evaluation turns on
(§1.1, Table 1):

* **Propagation latency** — one-way delay from the topology matrix.
* **Uplink serialization** — every node owns one *local* transmit queue
  (intra-region traffic at the region's multi-Gbit rate) and one shared
  *WAN egress* queue: all of a node's cross-region messages serialize
  through it, each transmitting at the Table 1 rate of its destination
  pair.  A single egress pipe is what a real NIC (and the paper's
  deployment) provides — it is why a PBFT primary pushing pre-prepares
  to 59 replicas across five remote regions is bandwidth-bound and
  *plateaus* as batches grow (Figure 13), while GeoBFT's ``f + 1``
  certificates per remote cluster barely load the pipe.

Failures are injected through a :class:`repro.net.failures.FailureModel`
consulted on every send/delivery, keeping protocol code oblivious to the
failure scenario being tested.

Fan-out fast path
-----------------
``multicast`` is the hot entry point at paper scale (every broadcast of
every phase of every protocol).  When no failure machinery is armed it
resolves the sender, message size, and per-region link parameters once
per call instead of once per destination, dedups repeated destinations,
batches the per-destination uplink bookkeeping into one pass, and emits
a *single grouped delivery event* for each run of consecutive
destinations sharing an arrival instant.  Grouped events consume one
sequence number per destination and credit the skipped events back to
the simulator, so event counts, tie-breaking, and therefore the
deployment digest are byte-identical to the per-destination path.
"""

from __future__ import annotations

from typing import (Callable, Dict, Iterable, List, NamedTuple, Optional,
                    Protocol, Tuple)

from ..errors import ConfigurationError
from ..types import NodeId
from .failures import FailureModel
from .sanitizer import MessageSanitizer, sanitize_enabled
from .simulator import Simulation
from .topology import Topology


class NetworkNode(Protocol):
    """What the network needs from an attached node."""

    @property
    def node_id(self) -> NodeId: ...

    @property
    def region(self) -> str: ...

    def deliver(self, message, sender: NodeId) -> None: ...


class SizedMessage(Protocol):
    """Every message must know its wire size."""

    def size_bytes(self) -> int: ...


#: Observer signature: (src, dst, message, size_bytes, is_local).
SendObserver = Callable[[NodeId, NodeId, object, int, bool], None]

#: Sentinel region key for a sender's shared cross-region egress queue.
_WAN_EGRESS = "__wan__"


class ExportedSend(NamedTuple):
    """A delivery bound for a node another worker owns.

    The sending worker computes the *final* arrival time (uplink
    serialization, propagation, failure delay rules are all sender-side
    state) plus the ordering token the serial engine's sequence number
    stands for; the orchestrator routes the record to the destination
    worker, which injects it into its calendar verbatim.  ``dsts``
    holds one destination for a unicast delivery and a same-instant run
    for a grouped multicast delivery (which stands in for
    ``len(dsts)`` events, exactly like :meth:`Simulation.post_group`).
    """

    arrival: float          # absolute virtual arrival time
    tie: tuple              # ordering token minted by the source worker
    src: NodeId
    dsts: Tuple[NodeId, ...]
    message: object
    fingerprint: Optional[bytes]  # sanitizer snapshot, when armed


def _message_size(message: SizedMessage) -> int:
    """``message.size_bytes()``, memoized per message instance.

    A multicast needs the size once per call and certificates are
    re-sent across phases; the wire size of an (immutable) message never
    changes, so cache it on the instance.  Library messages declare a
    ``_size_cache`` slot on their :class:`~repro.crypto.digests.
    CachedEncodable` base, so the memo works for slotted and dict-backed
    classes alike — there is no silent per-send recompute for
    library-owned messages.  Only foreign duck-typed objects that
    reject the attribute (e.g. slotted test doubles without the slot)
    fall back to recomputing.
    """
    size = getattr(message, "_size_cache", None)
    if size is None:
        size = message.size_bytes()
        try:
            object.__setattr__(message, "_size_cache", size)
        except AttributeError:
            pass
    return size


class Network:
    """Delivers messages between registered nodes with realistic timing.

    ``sanitize`` arms the message-aliasing sanitizer (see
    :mod:`repro.net.sanitizer`): ``True``/``False`` force it, ``None``
    (the default) defers to the ``REPRO_SANITIZE=1`` environment
    variable.  Sanitized runs fingerprint every message at post time and
    re-verify at delivery; scheduling is unchanged, so deployment
    digests match the unsanitized run byte-for-byte.
    """

    __slots__ = ("_sim", "_topology", "_failures", "_nodes",
                 "_uplink_free_at", "_routes", "_local_keys", "_observers",
                 "_notify", "_group_notify", "_sanitizer", "_sends",
                 "_self_sends", "_suppressed_sends", "_in_flight_drops",
                 "_receiver_drops", "_tampered_sends", "_delayed_sends",
                 "_owned", "_exports")

    def __init__(self, sim: Simulation, topology: Topology,
                 failures: Optional[FailureModel] = None,
                 sanitize: Optional[bool] = None):
        self._sim = sim
        self._topology = topology
        self._failures = failures or FailureModel()
        self._sanitizer: Optional[MessageSanitizer] = (
            MessageSanitizer() if sanitize_enabled(sanitize) else None)
        self._nodes: Dict[NodeId, NetworkNode] = {}
        # (sender, destination region) -> time the uplink frees up.
        self._uplink_free_at: Dict[Tuple[NodeId, str], float] = {}
        # src -> dst -> (bandwidth, latency, is_local): multicast's
        # per-destination routing, resolved once per pair (topology and
        # node regions are fixed for a deployment's lifetime).
        self._routes: Dict[NodeId, Dict[NodeId, tuple]] = {}
        # src -> its local-region uplink key, resolved once.
        self._local_keys: Dict[NodeId, Tuple[NodeId, str]] = {}
        self._observers: list[SendObserver] = []
        # Precomposed observer chain: None (no observers), the single
        # observer itself, or a fan-out closure — one attribute load and
        # one None test on the hot path instead of iterating a list.
        self._notify: Optional[SendObserver] = None
        # Batched observer variant: set when the single registered
        # observer also handles whole destination groups (the bench
        # metrics sink does).  Lets multicast report one call per
        # local/remote group instead of one call per destination.
        self._group_notify = None
        # Parallel-backend partitioning: when set, deliveries to nodes
        # outside ``_owned`` are captured as ExportedSend records
        # instead of being posted locally.  ``None`` = serial (the
        # default; the hot paths pay one None test).
        self._owned: Optional[frozenset] = None
        self._exports: List[ExportedSend] = []
        # Telemetry counters (pure integers, never read by the model).
        self._sends = 0
        self._self_sends = 0
        self._suppressed_sends = 0
        self._in_flight_drops = 0
        self._receiver_drops = 0
        self._tampered_sends = 0
        self._delayed_sends = 0

    @property
    def topology(self) -> Topology:
        """The region matrix this network runs on."""
        return self._topology

    @property
    def failures(self) -> FailureModel:
        """The failure model consulted on every send."""
        return self._failures

    @property
    def simulation(self) -> Simulation:
        """The simulator driving deliveries."""
        return self._sim

    def register(self, node: NetworkNode) -> None:
        """Attach a node; its region must exist in the topology."""
        if node.region not in self._topology.regions:
            raise ConfigurationError(
                f"node {node.node_id} placed in unknown region {node.region}"
            )
        if node.node_id in self._nodes:
            raise ConfigurationError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node

    def node(self, node_id: NodeId) -> NetworkNode:
        """Look up a registered node."""
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise ConfigurationError(f"unknown node {node_id}") from exc

    def known_nodes(self) -> Iterable[NodeId]:
        """Ids of all registered nodes."""
        return self._nodes.keys()

    def add_observer(self, observer: SendObserver,
                     group_observer=None) -> None:
        """Register a callback invoked for every (non-dropped) send.

        ``group_observer``, when given, is an equivalent batched hook
        ``(src, dsts, message, size, is_local)`` that multicast may call
        once per destination group instead of calling ``observer`` per
        destination (same totals, far fewer calls).  The batched path is
        only used while it is the *sole* registered observer — as soon
        as a second observer registers, every send notifies per
        destination again so all observers see identical streams.
        """
        self._observers.append(observer)
        if len(self._observers) == 1:
            self._notify = observer
            self._group_notify = group_observer
        else:
            observers = tuple(self._observers)

            def fan_out(src, dst, message, size, is_local):
                for obs in observers:
                    obs(src, dst, message, size, is_local)

            self._notify = fan_out
            self._group_notify = None

    def send(self, src: NodeId, dst: NodeId, message: SizedMessage) -> None:
        """Transmit ``message`` from ``src`` to ``dst``.

        Timing: the message first serializes on the sender's uplink to
        the destination region (``size / bandwidth``, queued FIFO behind
        earlier sends), then propagates (one-way latency), then is
        delivered.  Self-sends are delivered after a negligible delay.
        Drops (crashed nodes, partitions, Byzantine omission) consume no
        uplink time when the *sender* is suppressing the send, and full
        transmit time when the network or receiver loses it.
        """
        sanitizer = self._sanitizer
        if src == dst:
            self._self_sends += 1
            if sanitizer is not None:
                self._sim.post(0.0, self._deliver_checked, src, dst,
                               message, sanitizer.fingerprint(message))
            else:
                self._sim.post(0.0, self._deliver, src, dst, message)
            return
        sender = self.node(src)
        receiver = self.node(dst)
        failures = self._failures
        if failures.has_send_faults and failures.suppresses_send(
                src, dst, message):
            self._suppressed_sends += 1
            return
        if failures.has_transform_rules:
            # Byzantine tampering: the sender transmits a corrupted copy
            # (honest receivers reject it in their verify paths).
            transformed = failures.transform(src, dst, message)
            if transformed is None:
                self._suppressed_sends += 1
                return
            if transformed is not message:
                self._tampered_sends += 1
                message = transformed
        size = _message_size(message)
        link = self._topology.link(sender.region, receiver.region)
        transmit = size / link.bandwidth_bytes_per_s
        if sender.region == receiver.region:
            key = (src, receiver.region)
        else:
            # All cross-region traffic shares one egress pipe per
            # sender; each message still transmits at its pair's rate.
            key = (src, _WAN_EGRESS)
        start = max(self._sim.now, self._uplink_free_at.get(key, 0.0))
        self._uplink_free_at[key] = start + transmit
        arrival_delay = (start - self._sim.now) + transmit + link.latency_s
        if failures.has_delay_rules:
            extra = failures.extra_delay(src, dst, message)
            if extra > 0.0:
                self._delayed_sends += 1
                arrival_delay += extra
        is_local = sender.region == receiver.region
        self._sends += 1
        notify = self._notify
        if notify is not None:
            notify(src, dst, message, size, is_local)
        if failures.has_flight_faults and failures.drops_in_flight(
                src, dst, message):
            self._in_flight_drops += 1
            return
        owned = self._owned
        if owned is not None and dst not in owned:
            self._exports.append(ExportedSend(
                self._sim.now + arrival_delay,
                self._sim.reserve_export_tie(), src, (dst,), message,
                sanitizer.fingerprint(message) if sanitizer is not None
                else None))
            return
        # Deliveries are never cancelled: use the allocation-free path.
        if sanitizer is not None:
            self._sim.post(arrival_delay, self._deliver_checked, src, dst,
                           message, sanitizer.fingerprint(message))
        else:
            self._sim.post(arrival_delay, self._deliver, src, dst, message)

    def multicast(self, src: NodeId, dsts: Iterable[NodeId],
                  message: SizedMessage) -> None:
        """Send one copy of ``message`` to each (distinct) destination.

        Copies to the same region serialize on the shared uplink, which
        is what makes "broadcast to a far region" expensive.  Repeated
        destinations are deduplicated — a node listed twice receives
        (and the sender transmits) exactly one copy.

        With no failure machinery armed this runs a single-pass fast
        path: sender/size/link resolution happens once, uplink clocks
        are advanced in one sweep, and consecutive destinations sharing
        an arrival instant collapse into one grouped delivery event
        (sequence numbers and processed-event counts are preserved, so
        determinism digests do not change).
        """
        self._multicast_distinct(src, list(dict.fromkeys(dsts)), message)

    def _multicast_distinct(self, src: NodeId, dsts: List[NodeId],
                            message: SizedMessage) -> None:
        """:meth:`multicast` body for an already-deduplicated ``dsts``
        list (:meth:`BaseReplica.broadcast` dedups while filtering and
        calls this directly to avoid a second pass)."""
        failures = self._failures
        if failures.any_send_path_faults:
            for dst in dsts:
                self.send(src, dst, message)
            return
        sim = self._sim
        now = sim.now
        size = None
        notify = self._notify
        group_notify = self._group_notify
        sanitizer = self._sanitizer
        # One fingerprint covers the whole fan-out: every destination
        # receives the same aliased object, so one send-time snapshot is
        # the contract they all check against.
        fingerprint = (sanitizer.fingerprint(message)
                       if sanitizer is not None else None)
        local_dsts: list = []
        wan_dsts: list = []
        routes = self._routes.get(src)
        if routes is None:
            routes = self._routes[src] = {}
        # A multicast touches at most two uplink queues — the sender's
        # local-region link and the shared WAN egress pipe — so their
        # clocks advance in two locals and write back once at the end,
        # instead of a dict get/set pair per destination.
        free_at = self._uplink_free_at
        local_free = wan_free = -1.0
        local_key = wan_key = None
        sends = 0
        # One pass: resolve, advance uplink clocks, collect arrivals.
        deliveries = []  # (arrival_delay, dst)
        append = deliveries.append
        for dst in dsts:
            if dst == src:
                self._self_sends += 1
                if fingerprint is not None:
                    sim.post(0.0, self._deliver_checked, src, dst,
                             message, fingerprint)
                else:
                    sim.post(0.0, self._deliver, src, dst, message)
                continue
            if size is None:
                size = _message_size(message)
            route = routes.get(dst)
            if route is None:
                sregion = self.node(src).region
                rregion = self.node(dst).region  # raises if unknown
                link = self._topology.link(sregion, rregion)
                # Bandwidth is kept (not inverted): ``size / bw`` must
                # stay bit-identical to the unicast path's arithmetic.
                route = routes[dst] = (link.bandwidth_bytes_per_s,
                                       link.latency_s, rregion == sregion)
            bandwidth, latency, is_local = route
            transmit = size / bandwidth
            if is_local:
                if local_key is None:
                    local_key = self._local_keys.get(src)
                    if local_key is None:
                        local_key = self._local_keys[src] = (
                            src, self.node(src).region)
                    local_free = free_at.get(local_key, 0.0)
                start = local_free if local_free > now else now
                local_free = start + transmit
            else:
                if wan_key is None:
                    wan_key = (src, _WAN_EGRESS)
                    wan_free = free_at.get(wan_key, 0.0)
                start = wan_free if wan_free > now else now
                wan_free = start + transmit
            sends += 1
            if group_notify is not None:
                (local_dsts if is_local else wan_dsts).append(dst)
            elif notify is not None:
                notify(src, dst, message, size, is_local)
            append(((start - now) + transmit + latency, dst))
        self._sends += sends
        if group_notify is not None:
            if local_dsts:
                group_notify(src, local_dsts, message, size, True)
            if wan_dsts:
                group_notify(src, wan_dsts, message, size, False)
        if local_key is not None:
            free_at[local_key] = local_free
        if wan_key is not None:
            free_at[wan_key] = wan_free
        # Emit delivery events, grouping consecutive equal-arrival runs.
        i = 0
        count = len(deliveries)
        post = sim.post
        post_group = sim.post_group
        owned = self._owned
        while i < count:
            delay, dst = deliveries[i]
            j = i + 1
            while j < count and deliveries[j][0] == delay:
                j += 1
            if owned is not None:
                self._emit_partitioned_run(sim, now, owned, deliveries,
                                           i, j, delay, src, message,
                                           fingerprint)
                i = j
                continue
            if j == i + 1:
                if fingerprint is not None:
                    post(delay, self._deliver_checked, src, dst, message,
                         fingerprint)
                else:
                    post(delay, self._deliver, src, dst, message)
            else:
                group = tuple(d for _, d in deliveries[i:j])
                if fingerprint is not None:
                    post_group(delay, len(group),
                               self._deliver_group_checked, src, group,
                               message, fingerprint)
                else:
                    post_group(delay, len(group), self._deliver_group,
                               src, group, message)
            i = j

    def _emit_partitioned_run(self, sim, now, owned, deliveries, i, j,
                              delay, src, message, fingerprint) -> None:
        """Emit one equal-arrival multicast run under partitioning.

        The run is split into maximal segments of equal ownership (and,
        for foreign segments, equal destination cluster — one export
        must route to exactly one worker), order preserved: each
        segment's tie counters stay consecutive, so the serial engine's
        grouping invariant (no foreign event can sort between grouped
        members) survives the split — owned segments post locally,
        foreign segments become one export each.
        """
        s = i
        while s < j:
            first = deliveries[s][1]
            seg_owned = first in owned
            cluster = first.cluster
            e = s + 1
            while e < j:
                dst_e = deliveries[e][1]
                if (dst_e in owned) != seg_owned:
                    break
                if not seg_owned and dst_e.cluster != cluster:
                    break
                e += 1
            seg = tuple(d for _, d in deliveries[s:e])
            if not seg_owned:
                self._exports.append(ExportedSend(
                    now + delay, sim.reserve_export_tie(len(seg)), src,
                    seg, message, fingerprint))
            elif len(seg) == 1:
                if fingerprint is not None:
                    sim.post(delay, self._deliver_checked, src, seg[0],
                             message, fingerprint)
                else:
                    sim.post(delay, self._deliver, src, seg[0], message)
            else:
                if fingerprint is not None:
                    sim.post_group(delay, len(seg),
                                   self._deliver_group_checked, src, seg,
                                   message, fingerprint)
                else:
                    sim.post_group(delay, len(seg), self._deliver_group,
                                   src, seg, message)
            s = e

    def _deliver(self, src: NodeId, dst: NodeId, message) -> None:
        failures = self._failures
        # has_receive_faults, inlined: one delivery per message makes a
        # property descriptor call here measurable at paper scale.
        if failures._crashed or failures._receive_rules:
            if failures.drops_at_receiver(src, dst, message):
                self._receiver_drops += 1
                return
        node = self._nodes.get(dst)
        if node is not None:
            node.deliver(message, src)

    def _deliver_checked(self, src: NodeId, dst: NodeId, message,
                         fingerprint: bytes) -> None:
        """Sanitized delivery: re-verify the send-time fingerprint first."""
        self._sanitizer.check(message, fingerprint, src)
        self._deliver(src, dst, message)

    def _deliver_group_checked(self, src: NodeId, dsts: Tuple[NodeId, ...],
                               message, fingerprint: bytes) -> None:
        """Sanitized grouped delivery: one check covers the whole group
        (they fire at the same instant on the same aliased object)."""
        self._sanitizer.check(message, fingerprint, src)
        self._deliver_group(src, dsts, message)

    def _deliver_group(self, src: NodeId, dsts: Tuple[NodeId, ...],
                       message) -> None:
        """Deliver one multicast copy to each of a same-instant group.

        Stands in for ``len(dsts)`` individual delivery events (their
        sequence numbers were consecutive, so no foreign event can sort
        between them); the skipped events are credited back so
        ``events_processed`` matches the per-destination schedule.
        """
        self._sim.count_extra_events(len(dsts) - 1)
        deliver = self._deliver
        for dst in dsts:
            deliver(src, dst, message)

    # ------------------------------------------------------------------
    # Parallel-backend partitioning
    # ------------------------------------------------------------------
    def enable_partition(self, owned: Iterable[NodeId]) -> None:
        """Route deliveries to nodes outside ``owned`` into the export
        buffer instead of the local event queue (parallel workers).

        All timing state (uplink queues, delay rules) stays sender-side
        and is computed exactly as in serial mode; only the final
        delivery posting is redirected.  Requires the simulator to be a
        :class:`~repro.net.simulator.WorkerSimulation` (the export tie
        keys come from it).
        """
        self._owned = frozenset(owned)

    def drain_exports(self) -> List["ExportedSend"]:
        """Return and clear the cross-worker deliveries captured since
        the last drain (called at every window barrier)."""
        exports = self._exports
        self._exports = []
        return exports

    def inject_import(self, rec: "ExportedSend") -> None:
        """Insert a delivery exported by another worker.

        The record's tie key restores the serial (deadline, seq) order;
        receiver-side failure checks still run at delivery time against
        this worker's (identical) failure model.
        """
        tie = rec.tie
        sim = self._sim
        if len(rec.dsts) == 1:
            if rec.fingerprint is not None:
                sim.inject(rec.arrival, tie, self._deliver_checked,
                           rec.src, rec.dsts[0], rec.message,
                           rec.fingerprint)
            else:
                sim.inject(rec.arrival, tie, self._deliver, rec.src,
                           rec.dsts[0], rec.message)
        else:
            if rec.fingerprint is not None:
                sim.inject(rec.arrival, tie, self._deliver_group_checked,
                           rec.src, rec.dsts, rec.message, rec.fingerprint)
            else:
                sim.inject(rec.arrival, tie, self._deliver_group,
                           rec.src, rec.dsts, rec.message)

    def telemetry(self) -> Dict[str, int]:
        """Send/drop counters (observability only).

        ``sanitizer_checks`` appears only on sanitized networks, so the
        default schema is unchanged when the sanitizer is off.
        """
        counters = {
            "sends": self._sends,
            "self_sends": self._self_sends,
            "suppressed_sends": self._suppressed_sends,
            "in_flight_drops": self._in_flight_drops,
            "receiver_drops": self._receiver_drops,
            "tampered_sends": self._tampered_sends,
            "delayed_sends": self._delayed_sends,
        }
        if self._sanitizer is not None:
            counters["sanitizer_checks"] = self._sanitizer.checks
        return counters

    def uplink_backlog(self, src: NodeId, dst_region: str) -> float:
        """Seconds of queued transmit time on one uplink (diagnostics).

        For a cross-region destination this reports the sender's shared
        WAN egress backlog; pass the sender's own region for the local
        queue.
        """
        sender = self.node(src)
        if dst_region == sender.region:
            key = (src, dst_region)
        else:
            key = (src, _WAN_EGRESS)
        free_at = self._uplink_free_at.get(key, 0.0)
        return max(0.0, free_at - self._sim.now)
