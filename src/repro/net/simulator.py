"""Deterministic discrete-event simulator.

Every moving part of the reproduction — replicas, clients, network links,
timers — runs on one :class:`Simulation` instance.  The simulator owns
virtual time; nothing in the library reads the wall clock.  Events at
equal timestamps fire in scheduling order, so a run is a pure function of
its configuration and seed, which the safety and determinism tests rely
on.

Two scheduling paths share one queue and one sequence counter:

* :meth:`Simulation.schedule` returns a cancellable :class:`Timer` —
  used for view-change timeouts and anything else that may be cancelled.
* :meth:`Simulation.post` is the fast path for the vast majority of
  events (message deliveries, deferred sends) that are never cancelled:
  no ``Timer`` object is allocated, the callback and args ride directly
  in the heap entry.

Because both paths consume the same monotonically increasing sequence
number, mixing them cannot reorder events: determinism is a property of
the (deadline, seq) pair, which is identical whichever path created the
event.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional

from ..errors import SimulationError


class Timer:
    """Handle to a scheduled event, allowing cancellation.

    Replicas use timers for failure detection (PBFT view-change timers,
    GeoBFT remote view-change timers).  Cancelling is O(1): the event
    stays in the queue but fires as a no-op.
    """

    __slots__ = ("deadline", "_fn", "_args", "_cancelled", "_fired")

    def __init__(self, deadline: float, fn: Callable[..., None], args: tuple):
        self.deadline = deadline
        self._fn = fn
        self._args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the timer from firing (idempotent)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the timer fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the timer's callback has run."""
        return self._fired

    def _fire(self) -> None:
        if self._cancelled or self._fired:
            return
        self._fired = True
        self._fn(*self._args)


class Simulation:
    """A discrete-event loop with deterministic tie-breaking.

    Usage::

        sim = Simulation(seed=7)
        sim.schedule(0.5, print, "fires at t=0.5")
        sim.run(until=10.0)
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._seq = 0
        # Heap entries are (deadline, seq, timer, fn, args): ``schedule``
        # pushes (deadline, seq, Timer, None, None); ``post`` pushes
        # (deadline, seq, None, fn, args).  ``seq`` is unique, so tuple
        # comparison never reaches the non-comparable tail.
        self._queue: list[tuple] = []
        self._events_processed = 0
        self._max_queue = 0
        self.rng = random.Random(seed)

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events fired so far (includes cancelled no-ops)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events still in the queue (including cancelled ones)."""
        return len(self._queue)

    @property
    def max_queue_depth(self) -> int:
        """High-water mark of the event queue (telemetry)."""
        return self._max_queue

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any) -> Timer:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns a :class:`Timer` that may be cancelled.  ``delay`` must be
        non-negative; zero-delay events run after all events already
        scheduled for the current instant (FIFO within a timestamp).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        timer = Timer(self._now + delay, fn, args)
        heapq.heappush(self._queue, (timer.deadline, self._seq, timer, None, None))
        self._seq += 1
        if len(self._queue) > self._max_queue:
            self._max_queue = len(self._queue)
        return timer

    def post(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Fast-path schedule for events that are never cancelled.

        Identical ordering semantics to :meth:`schedule` (same clock,
        same sequence counter) but no :class:`Timer` is allocated — the
        callback rides in the heap entry.  Use for message deliveries and
        other fire-and-forget events; use :meth:`schedule` when the
        caller needs a cancellation handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        heapq.heappush(
            self._queue, (self._now + delay, self._seq, None, fn, args)
        )
        self._seq += 1
        if len(self._queue) > self._max_queue:
            self._max_queue = len(self._queue)

    def schedule_at(self, when: float, fn: Callable[..., None],
                    *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, fn, *args)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        ``until`` stops the clock at that virtual time (events scheduled
        later stay queued and ``now`` is advanced to ``until``).
        ``max_events`` bounds the number of fired events, guarding tests
        against accidental infinite message loops.
        """
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        while queue:
            entry = queue[0]
            deadline = entry[0]
            if until is not None and deadline > until:
                self._now = until
                return
            pop(queue)
            self._now = deadline
            self._events_processed += 1
            timer = entry[2]
            if timer is None:
                entry[3](*entry[4])
            else:
                timer._fire()
                if timer.cancelled:
                    continue
            fired += 1
            if max_events is not None and fired >= max_events:
                return
        if until is not None:
            self._now = max(self._now, until)

    def step(self) -> bool:
        """Fire exactly one queued event.  Returns ``False`` if idle."""
        while self._queue:
            deadline, _seq, timer, fn, args = heapq.heappop(self._queue)
            self._now = deadline
            self._events_processed += 1
            if timer is None:
                fn(*args)
                return True
            if timer.cancelled:
                continue
            timer._fire()
            return True
        return False
