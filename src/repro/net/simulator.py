"""Deterministic discrete-event simulator.

Every moving part of the reproduction — replicas, clients, network links,
timers — runs on one :class:`Simulation` instance.  The simulator owns
virtual time; nothing in the library reads the wall clock.  Events at
equal timestamps fire in scheduling order, so a run is a pure function of
its configuration and seed, which the safety and determinism tests rely
on.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional

from ..errors import SimulationError


class Timer:
    """Handle to a scheduled event, allowing cancellation.

    Replicas use timers for failure detection (PBFT view-change timers,
    GeoBFT remote view-change timers).  Cancelling is O(1): the event
    stays in the queue but fires as a no-op.
    """

    __slots__ = ("deadline", "_fn", "_args", "_cancelled", "_fired")

    def __init__(self, deadline: float, fn: Callable[..., None], args: tuple):
        self.deadline = deadline
        self._fn = fn
        self._args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the timer from firing (idempotent)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the timer fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the timer's callback has run."""
        return self._fired

    def _fire(self) -> None:
        if self._cancelled or self._fired:
            return
        self._fired = True
        self._fn(*self._args)


class Simulation:
    """A discrete-event loop with deterministic tie-breaking.

    Usage::

        sim = Simulation(seed=7)
        sim.schedule(0.5, print, "fires at t=0.5")
        sim.run(until=10.0)
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._seq = 0
        self._queue: list[tuple[float, int, Timer]] = []
        self._events_processed = 0
        self.rng = random.Random(seed)

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events fired so far (includes cancelled no-ops)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events still in the queue (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any) -> Timer:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns a :class:`Timer` that may be cancelled.  ``delay`` must be
        non-negative; zero-delay events run after all events already
        scheduled for the current instant (FIFO within a timestamp).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        timer = Timer(self._now + delay, fn, args)
        heapq.heappush(self._queue, (timer.deadline, self._seq, timer))
        self._seq += 1
        return timer

    def schedule_at(self, when: float, fn: Callable[..., None],
                    *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, fn, *args)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        ``until`` stops the clock at that virtual time (events scheduled
        later stay queued and ``now`` is advanced to ``until``).
        ``max_events`` bounds the number of fired events, guarding tests
        against accidental infinite message loops.
        """
        fired = 0
        while self._queue:
            deadline, _seq, timer = self._queue[0]
            if until is not None and deadline > until:
                self._now = until
                return
            heapq.heappop(self._queue)
            self._now = deadline
            self._events_processed += 1
            timer._fire()
            if not timer.cancelled:
                fired += 1
                if max_events is not None and fired >= max_events:
                    return
        if until is not None:
            self._now = max(self._now, until)

    def step(self) -> bool:
        """Fire exactly one queued event.  Returns ``False`` if idle."""
        while self._queue:
            deadline, _seq, timer = heapq.heappop(self._queue)
            self._now = deadline
            self._events_processed += 1
            if timer.cancelled:
                continue
            timer._fire()
            return True
        return False
