"""Deterministic discrete-event simulator.

Every moving part of the reproduction — replicas, clients, network links,
timers — runs on one :class:`Simulation` instance.  The simulator owns
virtual time; nothing in the library reads the wall clock.  Events at
equal timestamps fire in scheduling order, so a run is a pure function of
its configuration and seed, which the safety and determinism tests rely
on.

Two scheduling paths share one queue and one sequence counter:

* :meth:`Simulation.schedule` returns a cancellable :class:`Timer` —
  used for view-change timeouts and anything else that may be cancelled.
* :meth:`Simulation.post` is the fast path for the vast majority of
  events (message deliveries, deferred sends) that are never cancelled:
  no ``Timer`` object is allocated, the callback and args ride directly
  in the queue entry.

Because both paths consume the same monotonically increasing sequence
number, mixing them cannot reorder events: determinism is a property of
the (deadline, seq) pair, which is identical whichever path created the
event.

Storage is split between two structures that together implement the
exact (deadline, seq) total order:

* a **zero-delay lane** — a plain FIFO for events posted with delay
  ``0.0``.  Such events always belong to the *current* instant, so they
  never need heap ordering; appending to a list is far cheaper than a
  heap push at paper-scale queue depths.  The lane drains before virtual
  time can advance, interleaved with same-instant calendar events in
  sequence order, so the observable order is identical to a single heap.
* a **calendar queue** (:class:`_CalendarQueue`) — the ns-3-style
  bucketed scheduler for everything else.  Events hash into fixed-width
  time buckets; inserts into future buckets are O(1) appends, and each
  bucket is sorted once when the clock reaches it.  Ties always land in
  the same bucket (same deadline ⇒ same bucket), so (deadline, seq)
  ordering is preserved exactly.
"""

from __future__ import annotations

import gc
import heapq
import random
from bisect import insort
from collections import deque
from typing import Any, Callable, Optional

from ..errors import SimulationError


class Timer:
    """Handle to a scheduled event, allowing cancellation.

    Replicas use timers for failure detection (PBFT view-change timers,
    GeoBFT remote view-change timers).  Cancelling is O(1): the event
    stays in the queue but fires as a no-op.
    """

    __slots__ = ("deadline", "_fn", "_args", "_cancelled", "_fired")

    def __init__(self, deadline: float, fn: Callable[..., None], args: tuple):
        self.deadline = deadline
        self._fn = fn
        self._args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the timer from firing (idempotent)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the timer fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the timer's callback has run."""
        return self._fired

    def _fire(self) -> None:
        if self._cancelled or self._fired:
            return
        self._fired = True
        self._fn(*self._args)


#: Width of one calendar bucket, in simulated seconds.  One millisecond
#: sits between the shortest intra-region one-way latencies (~0.25 ms)
#: and the WAN latencies (tens to hundreds of ms), so at paper scale a
#: bucket holds a few hundred events — large enough that most inserts
#: are O(1) appends into future buckets, small enough that sorting the
#: active bucket stays cheap.
_BUCKET_WIDTH = 1e-3


class _CalendarQueue:
    """Bucketed (calendar) event queue with exact (deadline, seq) order.

    Entries are ``(deadline, seq, timer, fn, args)`` tuples — the same
    shape :class:`Simulation` has always used.  Each entry hashes into
    the bucket ``int(deadline / width)``; only non-empty buckets exist
    (a dict, not a ring), so sparse far-future timers cost one dict slot
    each instead of degrading a fixed-size calendar.

    * **push** into a future bucket: ``list.append`` (unsorted) — O(1).
    * **pop**: the minimum-epoch bucket is *activated* — sorted once,
      then consumed front-to-back through an index cursor.  Inserts that
      land in the already-active bucket use ``bisect.insort`` past the
      cursor, preserving order.
    * an insert *earlier* than the active bucket (possible after the
      clock jumped over empty buckets) deactivates the current bucket
      back into the dict; the next pop re-activates the true minimum.

    Ties share a deadline and therefore a bucket, so sorting by the full
    tuple reproduces the global (deadline, seq) order exactly — the
    property the determinism suite asserts byte-for-byte.
    """

    __slots__ = ("_width", "_buckets", "_epochs", "_active", "_active_epoch",
                 "_cursor", "_size")

    def __init__(self, width: float = _BUCKET_WIDTH):
        self._width = width
        self._buckets: dict = {}     # epoch -> unsorted list of entries
        self._epochs: list = []      # min-heap of epochs present in _buckets
        self._active: Optional[list] = None   # sorted; consumed via cursor
        self._active_epoch = 0
        self._cursor = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, entry: tuple) -> None:
        epoch = int(entry[0] / self._width)
        active = self._active
        if active is not None:
            if epoch == self._active_epoch:
                insort(active, entry, self._cursor)
                self._size += 1
                return
            if epoch < self._active_epoch:
                # The clock previously jumped past this epoch; demote the
                # active bucket and let the next pop re-activate the min.
                if self._cursor < len(active):
                    self._buckets[self._active_epoch] = active[self._cursor:]
                    heapq.heappush(self._epochs, self._active_epoch)
                self._active = None
        bucket = self._buckets.get(epoch)
        if bucket is None:
            self._buckets[epoch] = [entry]
            heapq.heappush(self._epochs, epoch)
        else:
            bucket.append(entry)
        self._size += 1

    def peek(self) -> Optional[tuple]:
        """The minimum entry, or ``None`` when empty (does not remove)."""
        active = self._active
        while active is None or self._cursor >= len(active):
            if not self._epochs:
                self._active = None
                return None
            epoch = heapq.heappop(self._epochs)
            active = self._buckets.pop(epoch)
            active.sort()
            self._active = active
            self._active_epoch = epoch
            self._cursor = 0
        return active[self._cursor]

    def advance(self) -> None:
        """Consume the entry last returned by :meth:`peek`."""
        self._cursor += 1
        self._size -= 1

    def pop(self) -> Optional[tuple]:
        entry = self.peek()
        if entry is not None:
            self._cursor += 1
            self._size -= 1
        return entry


class Simulation:
    """A discrete-event loop with deterministic tie-breaking.

    Usage::

        sim = Simulation(seed=7)
        sim.schedule(0.5, print, "fires at t=0.5")
        sim.run(until=10.0)
    """

    __slots__ = ("_now", "_seq", "_calendar", "_lane", "_events_processed",
                 "_depth", "_max_queue", "rng")

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._seq = 0
        # Queue entries are (deadline, seq, timer, fn, args): ``schedule``
        # pushes (deadline, seq, Timer, None, None); ``post`` pushes
        # (deadline, seq, None, fn, args).  ``seq`` is unique, so tuple
        # comparison never reaches the non-comparable tail.
        self._calendar = _CalendarQueue()
        # Zero-delay FIFO lane: every entry's deadline equals the current
        # instant (the lane drains before time advances), so plain FIFO
        # order *is* (deadline, seq) order within the lane.
        self._lane: deque = deque()
        self._events_processed = 0
        # Queue depth is tracked incrementally (push +1 / consume -1)
        # so the hot post() path never takes two len() calls.
        self._depth = 0
        self._max_queue = 0
        self.rng = random.Random(seed)

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events fired so far (includes cancelled no-ops)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events still in the queue (including cancelled ones)."""
        return len(self._calendar) + len(self._lane)

    @property
    def max_queue_depth(self) -> int:
        """High-water mark of the event queue (telemetry)."""
        return self._max_queue

    def count_extra_events(self, extra: int) -> None:
        """Credit ``extra`` additional processed events to the loop.

        Used by batched dispatchers (e.g. the network's grouped multicast
        delivery) that fire what used to be ``k`` separate queue entries
        from a single one: crediting ``k - 1`` here keeps
        :attr:`events_processed` — and therefore the deployment digest —
        identical to the unbatched schedule.
        """
        self._events_processed += extra

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any) -> Timer:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns a :class:`Timer` that may be cancelled.  ``delay`` must be
        non-negative; zero-delay events run after all events already
        scheduled for the current instant (FIFO within a timestamp).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        timer = Timer(self._now + delay, fn, args)
        entry = (timer.deadline, self._seq, timer, None, None)
        self._seq += 1
        if delay == 0.0:
            self._lane.append(entry)
        else:
            self._calendar.push(entry)
        depth = self._depth + 1
        self._depth = depth
        if depth > self._max_queue:
            self._max_queue = depth
        return timer

    def post(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Fast-path schedule for events that are never cancelled.

        Identical ordering semantics to :meth:`schedule` (same clock,
        same sequence counter) but no :class:`Timer` is allocated — the
        callback rides in the queue entry.  Use for message deliveries
        and other fire-and-forget events; use :meth:`schedule` when the
        caller needs a cancellation handle.
        """
        if delay == 0.0:
            self._lane.append((self._now, self._seq, None, fn, args))
        elif delay > 0:
            # _CalendarQueue.push, inlined — post() carries most of the
            # schedule (message deliveries), so the bucket insert runs
            # without an extra Python frame.
            deadline = self._now + delay
            entry = (deadline, self._seq, None, fn, args)
            cal = self._calendar
            epoch = int(deadline / cal._width)
            active = cal._active
            pushed = False
            if active is not None:
                active_epoch = cal._active_epoch
                if epoch == active_epoch:
                    insort(active, entry, cal._cursor)
                    pushed = True
                elif epoch < active_epoch:
                    if cal._cursor < len(active):
                        cal._buckets[active_epoch] = active[cal._cursor:]
                        heapq.heappush(cal._epochs, active_epoch)
                    cal._active = None
            if not pushed:
                bucket = cal._buckets.get(epoch)
                if bucket is None:
                    cal._buckets[epoch] = [entry]
                    heapq.heappush(cal._epochs, epoch)
                else:
                    bucket.append(entry)
            cal._size += 1
        else:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq += 1
        depth = self._depth + 1
        self._depth = depth
        if depth > self._max_queue:
            self._max_queue = depth

    def post_group(self, delay: float, count: int, fn: Callable[..., None],
                   *args: Any) -> None:
        """Post one event standing in for ``count`` consecutive events.

        Consumes ``count`` sequence numbers but enqueues a single entry
        carrying the *first* of them.  Because the reserved numbers are
        consecutive, no other event can tie-break between the grouped
        members, so firing ``fn`` once in place of ``count`` back-to-back
        same-deadline events is observationally identical — provided the
        callback credits the skipped events via
        :meth:`count_extra_events` (the network's grouped multicast
        delivery does).  Exists for batched fan-out; everything else
        should use :meth:`post`.
        """
        if count < 1:
            raise SimulationError(f"group must cover >= 1 event: {count}")
        entry = (self._now + delay, self._seq, None, fn, args)
        if delay == 0.0:
            self._lane.append(entry)
        elif delay > 0:
            self._calendar.push(entry)
        else:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq += count
        depth = self._depth + 1
        self._depth = depth
        if depth > self._max_queue:
            self._max_queue = depth

    def schedule_at(self, when: float, fn: Callable[..., None],
                    *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, fn, *args)

    def _next_entry(self) -> Optional[tuple]:
        """Select (and remove) the next event in (deadline, seq) order.

        The lane only ever holds current-instant events, so the calendar
        head wins only when it shares that deadline with a *smaller*
        sequence number (it was scheduled before the lane entry, with a
        then-positive delay that the clock has since caught up with).
        """
        lane = self._lane
        if not lane:
            return self._calendar.pop()
        head = self._calendar.peek()
        lane_entry = lane[0]
        if head is not None and (head[0] < lane_entry[0]
                                 or (head[0] == lane_entry[0]
                                     and head[1] < lane_entry[1])):
            self._calendar.advance()
            return head
        lane.popleft()
        return lane_entry

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        ``until`` stops the clock at that virtual time (events scheduled
        later stay queued and ``now`` is advanced to ``until``).
        ``max_events`` bounds the number of fired events, guarding tests
        against accidental infinite message loops.
        """
        lane = self._lane
        calendar = self._calendar
        fired = 0
        # The loop allocates heavily (queue entries, messages) but keeps
        # almost nothing cyclic alive; generational GC passes are pure
        # overhead at paper-scale event counts.  Host-side only — the
        # simulated schedule is unaffected.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._run_loop(lane, calendar, fired, until, max_events)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_loop(self, lane, calendar, fired, until, max_events):
        # One float compare per event instead of a None test plus a
        # compare; +inf never stops the clock.
        until_f = float("inf") if until is None else until
        while True:
            # Inline next-event selection: the lane head (always at the
            # current instant) wins unless the calendar head is earlier,
            # or tied with a smaller sequence number.  The calendar's
            # peek/advance fast paths (active bucket, cursor not at the
            # end) are inlined too — two attribute reads instead of two
            # method calls per event at paper-scale rates.
            if lane:
                entry = lane[0]
                active = calendar._active
                cursor = calendar._cursor
                if active is not None and cursor < len(active):
                    head = active[cursor]
                else:
                    head = calendar.peek()
                    cursor = calendar._cursor
                if head is not None and (head[0] < entry[0]
                                         or (head[0] == entry[0]
                                             and head[1] < entry[1])):
                    entry = head
                    if entry[0] > until_f:
                        self._now = until
                        return
                    calendar._cursor = cursor + 1
                    calendar._size -= 1
                else:
                    if entry[0] > until_f:
                        self._now = until
                        return
                    lane.popleft()
            else:
                active = calendar._active
                cursor = calendar._cursor
                if active is not None and cursor < len(active):
                    entry = active[cursor]
                else:
                    entry = calendar.peek()
                    cursor = calendar._cursor
                    if entry is None:
                        break
                if entry[0] > until_f:
                    self._now = until
                    return
                calendar._cursor = cursor + 1
                calendar._size -= 1
            deadline, _seq, timer, fn, args = entry
            self._now = deadline
            self._depth -= 1
            self._events_processed += 1
            if timer is None:
                fn(*args)
            else:
                timer._fire()
                if timer.cancelled:
                    continue
            fired += 1
            if max_events is not None and fired >= max_events:
                return
        if until is not None:
            self._now = max(self._now, until)

    def step(self) -> bool:
        """Fire exactly one queued event.  Returns ``False`` if idle."""
        while True:
            entry = self._next_entry()
            if entry is None:
                return False
            deadline, _seq, timer, fn, args = entry
            self._now = deadline
            self._depth -= 1
            self._events_processed += 1
            if timer is None:
                fn(*args)
                return True
            if timer.cancelled:
                continue
            timer._fire()
            return True


class WorkerSimulation(Simulation):
    """Per-process event loop for the parallel (multi-worker) backend.

    Queue entries keep the serial engine's 5-tuple shape, but the
    integer ``seq`` slot holds a composite *tie key* instead::

        (deadline, (post_time, parent_post, rank, k), timer, fn, args)

    * ``post_time`` — virtual time the event was scheduled.  The serial
      engine assigns sequence numbers in post order, so an event posted
      earlier always wins a deadline tie; comparing post times first
      reproduces that for events posted at *different* instants, which
      is most ties the protocols generate (a calendar entry that
      reaches its deadline always ties against younger lane entries).
    * ``parent_post`` — the *posting* event's own post time (``-1.0``
      for events scheduled before the run starts).  Serial order among
      events posted at the same instant is the fire order of their
      posters at that instant, and the posters' fire order starts with
      *their* post times.  This is what orders chains of causality that
      **re-synchronize**: two messages travelling different-latency
      paths can arrive at one instant even though they were sent at
      different instants, and their same-instant consequences must fire
      in the posters' (send-time) order, which the next field — rank —
      would get wrong.
    * ``rank`` — the cluster ordinal of the chain of causality the
      event descends from: client starts are stamped with their
      cluster, deliveries inherit the posting chain's rank, and
      orchestration events installed before the run (fault timelines,
      scenario crash schedules) carry rank ``0`` — mirroring the serial
      engine, which assigns them the smallest sequence numbers.  For
      chains that have posted in lockstep since the t=0 start wave
      (equal post time *and* parent post time), serial post order is
      cluster order, so the rank breaks the tie identically —
      including across workers, where per-worker ``k`` counters are
      not comparable.
    * ``k`` — a per-worker counter striding by the worker count from
      the worker's index, so every worker mints in a disjoint residue
      class.  Within one worker it is exact serial post order for
      same-``(post_time, parent_post, rank)`` events; across workers
      it is *not* comparable, and the drain loop enforces that no
      ordering decision ever rests on a cross-worker ``k``: if two
      adjacently fired events tie on ``(deadline, post_time,
      parent_post, rank)`` but were minted by different workers, the
      run aborts with :class:`SimulationError` rather than return a
      digest the serial engine might not reproduce.  (All supported
      topologies order such pairs earlier in the key; the guard turns
      the remaining theoretical gap into a loud failure instead of a
      silent divergence.)

    The loop additionally tracks the currently firing chain's rank (so
    freshly posted events inherit it) and counts fired rank-0 events:
    orchestration events fire once *per worker*, and the orchestrator
    subtracts the duplicates to keep the merged ``events_processed`` —
    and therefore the deployment digest — identical to the serial run.

    Unlike :meth:`Simulation.run`, the windowed drains never toggle the
    garbage collector: the worker main loop disables gc once around the
    whole run (see satellite note in DESIGN.md §9) instead of toggling
    per window.
    """

    __slots__ = ("_rank", "_k", "_stride", "_parent_post",
                 "_prev_deadline", "_prev_tie", "_fire_tie", "shared_fired")

    def __init__(self, seed: int = 0, worker_index: int = 0,
                 worker_count: int = 1):
        super().__init__(seed)
        self._rank = 0       # current chain rank; 0 = orchestration
        self._k = worker_index   # tie counter; residue identifies minter
        self._stride = worker_count
        self._parent_post = -1.0  # firing event's post time; -1 = pre-run
        self._prev_deadline = -1.0
        self._prev_tie: Optional[tuple] = None
        self._fire_tie: Optional[tuple] = None  # tie of the firing event
        self.shared_fired = 0  # fired rank-0 events (duplicated per worker)

    @property
    def fire_tie(self) -> Optional[tuple]:
        """Composite tie key of the event currently firing.

        ``None`` before the first event fires (e.g. while the deployment
        is being built).  :class:`WorkerInstrumentation` stamps every
        phase event with this key so the orchestrator can merge
        per-worker event streams back into the serial emission order.
        """
        return self._fire_tie

    # ------------------------------------------------------------------
    # Scheduling (tie keys instead of sequence numbers)
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any) -> Timer:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        timer = Timer(self._now + delay, fn, args)
        k = self._k
        self._k = k + self._stride
        entry = (timer.deadline,
                 (self._now, self._parent_post, self._rank, k), timer,
                 None, None)
        if delay == 0.0:
            self._lane.append(entry)
        else:
            self._calendar.push(entry)
        depth = self._depth + 1
        self._depth = depth
        if depth > self._max_queue:
            self._max_queue = depth
        return timer

    def post(self, delay: float, fn: Callable[..., None],
             *args: Any) -> None:
        k = self._k
        self._k = k + self._stride
        tie = (self._now, self._parent_post, self._rank, k)
        if delay == 0.0:
            self._lane.append((self._now, tie, None, fn, args))
        elif delay > 0:
            self._calendar.push((self._now + delay, tie, None, fn, args))
        else:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        depth = self._depth + 1
        self._depth = depth
        if depth > self._max_queue:
            self._max_queue = depth

    def post_group(self, delay: float, count: int,
                   fn: Callable[..., None], *args: Any) -> None:
        if count < 1:
            raise SimulationError(f"group must cover >= 1 event: {count}")
        k = self._k
        self._k = k + count * self._stride
        entry = (self._now + delay,
                 (self._now, self._parent_post, self._rank, k),
                 None, fn, args)
        if delay == 0.0:
            self._lane.append(entry)
        elif delay > 0:
            self._calendar.push(entry)
        else:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        depth = self._depth + 1
        self._depth = depth
        if depth > self._max_queue:
            self._max_queue = depth

    def schedule_ranked(self, delay: float, rank: int,
                        fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule with an explicit chain rank (client start stamping)."""
        prev = self._rank
        self._rank = rank
        try:
            return self.schedule(delay, fn, *args)
        finally:
            self._rank = prev

    def reserve_export_tie(self, count: int = 1) -> tuple:
        """Mint the tie key for a cross-worker export.

        Consumes ``count`` tie counters (a grouped export stands in for
        that many consecutive deliveries, exactly like
        :meth:`post_group`) and returns the first as the export's
        ordering token.
        """
        k = self._k
        self._k = k + count * self._stride
        return (self._now, self._parent_post, self._rank, k)

    def inject(self, deadline: float, tie: tuple,
               fn: Callable[..., None], *args: Any) -> None:
        """Insert an imported cross-worker event at its absolute time.

        The tie key was minted by the *source* worker; pushing it into
        this worker's calendar restores the global (deadline, tie)
        order the serial engine would have produced.
        """
        self._calendar.push((deadline, tie, None, fn, args))
        depth = self._depth + 1
        self._depth = depth
        if depth > self._max_queue:
            self._max_queue = depth

    # ------------------------------------------------------------------
    # Windowed draining
    # ------------------------------------------------------------------
    def run_window(self, end: float) -> None:
        """Drain all events with ``deadline < end`` (exclusive bound).

        The conservative-lookahead loop advances every worker window by
        window; the bound is exclusive so an event at exactly the
        barrier time waits for the barrier's message exchange (a
        cross-cluster message can arrive at exactly ``window start +
        lookahead``).  The final window runs through
        :meth:`Simulation.run`, whose bound is inclusive like the
        serial engine's.
        """
        if self._drain(end, inclusive=False, max_events=None):
            self._now = end

    def _run_loop(self, lane, calendar, fired, until, max_events):
        # Same contract as the serial loop (inclusive bound), with rank
        # tracking and shared-event counting.  ``run()``'s gc toggling
        # is inherited but inert in workers: the worker main loop keeps
        # gc disabled for the whole run, so ``gc.isenabled()`` is False.
        stopped_at_bound = self._drain(until, inclusive=True,
                                       max_events=max_events)
        if stopped_at_bound and until is not None:
            self._now = max(self._now, until)

    def _drain(self, bound, inclusive, max_events):
        """Fire events up to ``bound``; ``True`` unless stopped by
        ``max_events`` (the one stop that must not advance the clock)."""
        lane = self._lane
        calendar = self._calendar
        bound_f = float("inf") if bound is None else bound
        fired = 0
        while True:
            if lane:
                entry = lane[0]
                active = calendar._active
                cursor = calendar._cursor
                if active is not None and cursor < len(active):
                    head = active[cursor]
                else:
                    head = calendar.peek()
                    cursor = calendar._cursor
                if head is not None and (head[0] < entry[0]
                                         or (head[0] == entry[0]
                                             and head[1] < entry[1])):
                    entry = head
                    if entry[0] > bound_f or (not inclusive
                                              and entry[0] == bound_f):
                        return True
                    calendar._cursor = cursor + 1
                    calendar._size -= 1
                else:
                    if entry[0] > bound_f or (not inclusive
                                              and entry[0] == bound_f):
                        return True
                    lane.popleft()
            else:
                active = calendar._active
                cursor = calendar._cursor
                if active is not None and cursor < len(active):
                    entry = active[cursor]
                else:
                    entry = calendar.peek()
                    cursor = calendar._cursor
                    if entry is None:
                        return True
                if entry[0] > bound_f or (not inclusive
                                          and entry[0] == bound_f):
                    return True
                calendar._cursor = cursor + 1
                calendar._size -= 1
            deadline, tie, timer, fn, args = entry
            if timer is None or not timer.cancelled:
                # Cross-worker ambiguity guard: if this fire and the
                # previous one tie on everything but k, and their ks
                # live in different workers' residue classes, their
                # relative order was decided by a comparison with no
                # serial meaning — refuse to produce a digest.
                # (Cancelled timers fire nothing; their order cannot
                # matter, so they neither check nor become ``prev``.)
                prev = self._prev_tie
                if (prev is not None and deadline == self._prev_deadline
                        and tie[0] == prev[0] and tie[1] == prev[1]
                        and tie[2] == prev[2]
                        and (tie[3] - prev[3]) % self._stride):
                    raise SimulationError(
                        f"ambiguous cross-worker event tie at "
                        f"t={deadline:.9f} (post_time={tie[0]:.9f}, "
                        f"rank={tie[2]}): events minted by different "
                        f"workers cannot be ordered as the serial "
                        f"engine would; rerun with workers=1")
                self._prev_deadline = deadline
                self._prev_tie = tie
            self._now = deadline
            self._parent_post = tie[0]
            self._rank = tie[2]
            self._fire_tie = tie
            self._depth -= 1
            self._events_processed += 1
            if tie[2] == 0:
                self.shared_fired += 1
            if timer is None:
                fn(*args)
            else:
                timer._fire()
                if timer.cancelled:
                    continue
            fired += 1
            if max_events is not None and fired >= max_events:
                return False
