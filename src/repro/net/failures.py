"""Failure and Byzantine-behaviour injection.

The paper's §4.3 evaluates three failure scenarios (one non-primary
crash, ``f`` non-primary crashes per cluster, one primary crash) and the
protocol sections reason about Byzantine primaries that selectively omit
messages (Example 2.4).  This module centralizes all of that:

* **Crashes** — a crashed node neither sends nor receives.
* **Partitions** — arbitrary directed (src, dst) pairs can be severed.
* **Send rules** — predicates suppress specific messages at the sender,
  modelling Byzantine omission (e.g. "primary of C1 never sends global
  shares to C2", the trigger for GeoBFT's remote view change).
* **Receive rules** — predicates drop messages at the receiver,
  modelling case (2) of Example 2.4 (a Byzantine receiver pretending it
  got nothing).

Rules are kept outside protocol code so a test or benchmark configures a
scenario purely through the :class:`FailureModel`.
"""

from __future__ import annotations

from typing import Callable, Set

from ..types import NodeId

#: Predicate over (src, dst, message) deciding whether to drop.
DropRule = Callable[[NodeId, NodeId, object], bool]


class FailureModel:
    """Mutable failure state consulted by :class:`repro.net.network.Network`."""

    def __init__(self) -> None:
        self._crashed: Set[NodeId] = set()
        self._severed: Set[tuple[NodeId, NodeId]] = set()
        self._send_rules: list[DropRule] = []
        self._receive_rules: list[DropRule] = []

    # ------------------------------------------------------------------
    # Crash faults
    # ------------------------------------------------------------------
    def crash(self, node: NodeId) -> None:
        """Crash ``node``: it stops sending and receiving from now on."""
        self._crashed.add(node)

    def recover(self, node: NodeId) -> None:
        """Undo a crash (the node resumes with whatever state it kept)."""
        self._crashed.discard(node)

    def is_crashed(self, node: NodeId) -> bool:
        """Whether ``node`` is currently crashed."""
        return node in self._crashed

    @property
    def crashed_nodes(self) -> frozenset[NodeId]:
        """Snapshot of currently crashed nodes."""
        return frozenset(self._crashed)

    # ------------------------------------------------------------------
    # Network partitions
    # ------------------------------------------------------------------
    def sever(self, src: NodeId, dst: NodeId) -> None:
        """Drop everything sent from ``src`` to ``dst`` (directed)."""
        self._severed.add((src, dst))

    def heal(self, src: NodeId, dst: NodeId) -> None:
        """Restore a severed directed link."""
        self._severed.discard((src, dst))

    def sever_bidirectional(self, a: NodeId, b: NodeId) -> None:
        """Drop traffic in both directions between two nodes."""
        self.sever(a, b)
        self.sever(b, a)

    # ------------------------------------------------------------------
    # Byzantine omission rules
    # ------------------------------------------------------------------
    def add_send_rule(self, rule: DropRule) -> DropRule:
        """Suppress sends matching ``rule`` (at the sender, before the
        uplink — a malicious sender spends no bandwidth on omitted
        messages).  Returns the rule so callers can remove it later."""
        self._send_rules.append(rule)
        return rule

    def remove_send_rule(self, rule: DropRule) -> None:
        """Remove a previously added send rule (idempotent)."""
        if rule in self._send_rules:
            self._send_rules.remove(rule)

    def add_receive_rule(self, rule: DropRule) -> DropRule:
        """Drop deliveries matching ``rule`` at the receiver."""
        self._receive_rules.append(rule)
        return rule

    def remove_receive_rule(self, rule: DropRule) -> None:
        """Remove a previously added receive rule (idempotent)."""
        if rule in self._receive_rules:
            self._receive_rules.remove(rule)

    # ------------------------------------------------------------------
    # Queries used by the network
    # ------------------------------------------------------------------
    def suppresses_send(self, src: NodeId, dst: NodeId, message) -> bool:
        """Whether the send never leaves ``src`` (crash or omission)."""
        if src in self._crashed:
            return True
        return any(rule(src, dst, message) for rule in self._send_rules)

    def drops_in_flight(self, src: NodeId, dst: NodeId, message) -> bool:
        """Whether the network loses the message after transmission."""
        return (src, dst) in self._severed

    def drops_at_receiver(self, src: NodeId, dst: NodeId, message) -> bool:
        """Whether the receiver never sees the delivery."""
        if dst in self._crashed:
            return True
        return any(rule(src, dst, message) for rule in self._receive_rules)
