"""Failure and Byzantine-behaviour injection.

The paper's §4.3 evaluates three failure scenarios (one non-primary
crash, ``f`` non-primary crashes per cluster, one primary crash) and the
protocol sections reason about Byzantine primaries that selectively omit
messages (Example 2.4).  This module centralizes all of that:

* **Crashes** — a crashed node neither sends nor receives.
* **Partitions** — arbitrary directed (src, dst) pairs can be severed.
* **Send rules** — predicates suppress specific messages at the sender,
  modelling Byzantine omission (e.g. "primary of C1 never sends global
  shares to C2", the trigger for GeoBFT's remote view change).
* **Receive rules** — predicates drop messages at the receiver,
  modelling case (2) of Example 2.4 (a Byzantine receiver pretending it
  got nothing).
* **Drop rules** — predicates lose a message *in flight* after the
  sender paid full transmit time (lossy links, partition bursts).
* **Delay rules** — callables adding extra one-way latency to matching
  sends (degraded links, jitter injection).
* **Transform rules** — callables that may replace a message with a
  tampered copy at the sender, modelling Byzantine equivocation and
  payload tampering; honest receivers must reject the result through
  their digest/signature verification paths.

Rules are kept outside protocol code so a test or benchmark configures a
scenario purely through the :class:`FailureModel`.  The scheduled-fault
layer on top of this module lives in :mod:`repro.net.chaos`: a
:class:`~repro.net.chaos.FaultTimeline` turns declarative, introspectable
``Fault`` objects into rule (de)installations on the simulator clock.
"""

from __future__ import annotations

from typing import Callable, Set

from ..types import NodeId

#: Predicate over (src, dst, message) deciding whether to drop.
DropRule = Callable[[NodeId, NodeId, object], bool]

#: Extra one-way delay (seconds) to add to a matching send.
DelayRule = Callable[[NodeId, NodeId, object], float]

#: Returns a replacement message (tampered copy), the original (no-op),
#: or ``None`` to swallow the send entirely.
TransformRule = Callable[[NodeId, NodeId, object], object]


class FailureModel:
    """Mutable failure state consulted by :class:`repro.net.network.Network`."""

    def __init__(self) -> None:
        self._crashed: Set[NodeId] = set()
        self._severed: Set[tuple[NodeId, NodeId]] = set()
        self._send_rules: list[DropRule] = []
        self._receive_rules: list[DropRule] = []
        self._drop_rules: list[DropRule] = []
        self._delay_rules: list[DelayRule] = []
        self._transform_rules: list[TransformRule] = []

    # ------------------------------------------------------------------
    # Crash faults
    # ------------------------------------------------------------------
    def crash(self, node: NodeId) -> None:
        """Crash ``node``: it stops sending and receiving from now on."""
        self._crashed.add(node)

    def recover(self, node: NodeId) -> None:
        """Undo a crash (the node resumes with whatever state it kept)."""
        self._crashed.discard(node)

    def is_crashed(self, node: NodeId) -> bool:
        """Whether ``node`` is currently crashed."""
        return node in self._crashed

    @property
    def crashed_nodes(self) -> frozenset[NodeId]:
        """Snapshot of currently crashed nodes."""
        return frozenset(self._crashed)

    # ------------------------------------------------------------------
    # Network partitions
    # ------------------------------------------------------------------
    def sever(self, src: NodeId, dst: NodeId) -> None:
        """Drop everything sent from ``src`` to ``dst`` (directed)."""
        self._severed.add((src, dst))

    def heal(self, src: NodeId, dst: NodeId) -> None:
        """Restore a severed directed link."""
        self._severed.discard((src, dst))

    def sever_bidirectional(self, a: NodeId, b: NodeId) -> None:
        """Drop traffic in both directions between two nodes."""
        self.sever(a, b)
        self.sever(b, a)

    # ------------------------------------------------------------------
    # Byzantine omission rules
    # ------------------------------------------------------------------
    def add_send_rule(self, rule: DropRule) -> DropRule:
        """Suppress sends matching ``rule`` (at the sender, before the
        uplink — a malicious sender spends no bandwidth on omitted
        messages).  Returns the rule so callers can remove it later."""
        self._send_rules.append(rule)
        return rule

    def remove_send_rule(self, rule: DropRule) -> None:
        """Remove a previously added send rule (idempotent)."""
        if rule in self._send_rules:
            self._send_rules.remove(rule)

    def add_receive_rule(self, rule: DropRule) -> DropRule:
        """Drop deliveries matching ``rule`` at the receiver."""
        self._receive_rules.append(rule)
        return rule

    def remove_receive_rule(self, rule: DropRule) -> None:
        """Remove a previously added receive rule (idempotent)."""
        if rule in self._receive_rules:
            self._receive_rules.remove(rule)

    # ------------------------------------------------------------------
    # Link-quality and Byzantine-tampering rules (chaos engine)
    # ------------------------------------------------------------------
    def add_drop_rule(self, rule: DropRule) -> DropRule:
        """Lose matching messages in flight (full transmit time paid)."""
        self._drop_rules.append(rule)
        return rule

    def remove_drop_rule(self, rule: DropRule) -> None:
        """Remove a previously added in-flight drop rule (idempotent)."""
        if rule in self._drop_rules:
            self._drop_rules.remove(rule)

    def add_delay_rule(self, rule: DelayRule) -> DelayRule:
        """Add extra one-way latency to matching sends."""
        self._delay_rules.append(rule)
        return rule

    def remove_delay_rule(self, rule: DelayRule) -> None:
        """Remove a previously added delay rule (idempotent)."""
        if rule in self._delay_rules:
            self._delay_rules.remove(rule)

    def add_transform_rule(self, rule: TransformRule) -> TransformRule:
        """Let ``rule`` replace matching outbound messages (tampering)."""
        self._transform_rules.append(rule)
        return rule

    def remove_transform_rule(self, rule: TransformRule) -> None:
        """Remove a previously added transform rule (idempotent)."""
        if rule in self._transform_rules:
            self._transform_rules.remove(rule)

    @property
    def has_delay_rules(self) -> bool:
        """Fast guard for the network hot path."""
        return bool(self._delay_rules)

    @property
    def has_transform_rules(self) -> bool:
        """Fast guard for the network hot path."""
        return bool(self._transform_rules)

    @property
    def has_send_faults(self) -> bool:
        """Whether any fault could suppress a send at the sender."""
        return bool(self._crashed or self._send_rules)

    @property
    def has_flight_faults(self) -> bool:
        """Whether any fault could lose a message in flight."""
        return bool(self._severed or self._drop_rules)

    @property
    def has_receive_faults(self) -> bool:
        """Whether any fault could drop a delivery at the receiver."""
        return bool(self._crashed or self._receive_rules)

    @property
    def any_send_path_faults(self) -> bool:
        """Whether anything on the *send* path (suppression, tampering,
        partitions, in-flight loss, extra delay) is armed.  Receive-side
        rules are excluded: they are evaluated at delivery time, so the
        multicast fast path remains valid while they are installed."""
        return bool(self._crashed or self._send_rules
                    or self._transform_rules or self._severed
                    or self._drop_rules or self._delay_rules)

    # ------------------------------------------------------------------
    # Queries used by the network
    # ------------------------------------------------------------------
    def suppresses_send(self, src: NodeId, dst: NodeId, message) -> bool:
        """Whether the send never leaves ``src`` (crash or omission)."""
        if src in self._crashed:
            return True
        return any(rule(src, dst, message) for rule in self._send_rules)

    def transform(self, src: NodeId, dst: NodeId, message):
        """Apply transform rules in order; ``None`` swallows the send."""
        for rule in self._transform_rules:
            message = rule(src, dst, message)
            if message is None:
                return None
        return message

    def extra_delay(self, src: NodeId, dst: NodeId, message) -> float:
        """Sum of extra one-way latency from all delay rules."""
        total = 0.0
        for rule in self._delay_rules:
            total += rule(src, dst, message)
        return total

    def drops_in_flight(self, src: NodeId, dst: NodeId, message) -> bool:
        """Whether the network loses the message after transmission."""
        if (src, dst) in self._severed:
            return True
        return any(rule(src, dst, message) for rule in self._drop_rules)

    def drops_at_receiver(self, src: NodeId, dst: NodeId, message) -> bool:
        """Whether the receiver never sees the delivery."""
        if dst in self._crashed:
            return True
        return any(rule(src, dst, message) for rule in self._receive_rules)
