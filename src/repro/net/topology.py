"""Geo-scale network topology seeded with the paper's Table 1.

Table 1 of the paper reports ping round-trip times (ms) and iperf
bandwidth (Mbit/s) between Google Cloud ``n1`` machines in six regions:
Oregon, Iowa, Montreal, Belgium, Taiwan, and Sydney.  Those measurements
drive every geo-scale experiment, so this module reproduces the matrix
verbatim and exposes it as a :class:`Topology` the network model
consumes.

Custom topologies (different regions, latencies, bandwidths) can be
built with :meth:`Topology.custom` for tests and what-if experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from ..errors import ConfigurationError

#: The six regions of the paper's evaluation, in the order experiments
#: add them (paper §4.1): Oregon, Iowa, Montreal, Belgium, Taiwan, Sydney.
PAPER_REGIONS: tuple[str, ...] = (
    "oregon", "iowa", "montreal", "belgium", "taiwan", "sydney",
)

# Upper-triangular entries of Table 1 (row, column follow PAPER_REGIONS).
# RTT in milliseconds; the diagonal "<= 1 ms" is modelled as 1 ms.
_PAPER_RTT_MS: dict[tuple[str, str], float] = {
    ("oregon", "oregon"): 1.0,
    ("oregon", "iowa"): 38.0,
    ("oregon", "montreal"): 65.0,
    ("oregon", "belgium"): 136.0,
    ("oregon", "taiwan"): 118.0,
    ("oregon", "sydney"): 161.0,
    ("iowa", "iowa"): 1.0,
    ("iowa", "montreal"): 33.0,
    ("iowa", "belgium"): 98.0,
    ("iowa", "taiwan"): 153.0,
    ("iowa", "sydney"): 172.0,
    ("montreal", "montreal"): 1.0,
    ("montreal", "belgium"): 82.0,
    ("montreal", "taiwan"): 186.0,
    ("montreal", "sydney"): 202.0,
    ("belgium", "belgium"): 1.0,
    ("belgium", "taiwan"): 252.0,
    ("belgium", "sydney"): 270.0,
    ("taiwan", "taiwan"): 1.0,
    ("taiwan", "sydney"): 137.0,
    ("sydney", "sydney"): 1.0,
}

# Bandwidth in Mbit/s (Table 1, right half).
_PAPER_BANDWIDTH_MBIT: dict[tuple[str, str], float] = {
    ("oregon", "oregon"): 7998.0,
    ("oregon", "iowa"): 669.0,
    ("oregon", "montreal"): 371.0,
    ("oregon", "belgium"): 194.0,
    ("oregon", "taiwan"): 188.0,
    ("oregon", "sydney"): 136.0,
    ("iowa", "iowa"): 10004.0,
    ("iowa", "montreal"): 752.0,
    ("iowa", "belgium"): 243.0,
    ("iowa", "taiwan"): 144.0,
    ("iowa", "sydney"): 120.0,
    ("montreal", "montreal"): 7977.0,
    ("montreal", "belgium"): 283.0,
    ("montreal", "taiwan"): 111.0,
    ("montreal", "sydney"): 102.0,
    ("belgium", "belgium"): 9728.0,
    ("belgium", "taiwan"): 79.0,
    ("belgium", "sydney"): 66.0,
    ("taiwan", "taiwan"): 7998.0,
    ("taiwan", "sydney"): 160.0,
    ("sydney", "sydney"): 7977.0,
}


def _symmetrize(
    entries: Mapping[Tuple[str, str], float],
) -> Dict[Tuple[str, str], float]:
    full: Dict[Tuple[str, str], float] = {}
    for (a, b), value in entries.items():
        full[(a, b)] = value
        full[(b, a)] = value
    return full


@dataclass(frozen=True)
class LinkSpec:
    """One directed region-to-region link: latency and bandwidth."""

    latency_s: float
    bandwidth_bytes_per_s: float


class Topology:
    """Region set plus the pairwise latency/bandwidth matrix.

    Latency here is *one-way* propagation delay, i.e. half the measured
    ping round-trip time.  Bandwidth is the per-machine-pair iperf rate
    from Table 1, converted to bytes/second.
    """

    def __init__(self, regions: Iterable[str],
                 rtt_ms: Mapping[Tuple[str, str], float],
                 bandwidth_mbit: Mapping[Tuple[str, str], float]):
        self._regions = tuple(regions)
        if len(set(self._regions)) != len(self._regions):
            raise ConfigurationError("duplicate region names in topology")
        rtt = _symmetrize(rtt_ms)
        bw = _symmetrize(bandwidth_mbit)
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        for a in self._regions:
            for b in self._regions:
                try:
                    latency = rtt[(a, b)] / 2.0 / 1000.0
                    bandwidth = bw[(a, b)] * 1e6 / 8.0
                except KeyError as exc:
                    raise ConfigurationError(
                        f"topology missing link data for {a} <-> {b}"
                    ) from exc
                if latency < 0 or bandwidth <= 0:
                    raise ConfigurationError(
                        f"invalid link {a} <-> {b}: latency={latency}, "
                        f"bandwidth={bandwidth}"
                    )
                self._links[(a, b)] = LinkSpec(latency, bandwidth)

    @classmethod
    def paper(cls, num_regions: int = 6) -> "Topology":
        """The paper's six-region Google Cloud topology (Table 1).

        ``num_regions`` selects a prefix in the paper's deployment order
        (Oregon, Iowa, Montreal, Belgium, Taiwan, Sydney) — exactly how
        §4.1 scales from one to six regions.
        """
        if not 1 <= num_regions <= len(PAPER_REGIONS):
            raise ConfigurationError(
                f"num_regions must be in 1..{len(PAPER_REGIONS)}, "
                f"got {num_regions}"
            )
        regions = PAPER_REGIONS[:num_regions]
        return cls(regions, _PAPER_RTT_MS, _PAPER_BANDWIDTH_MBIT)

    @classmethod
    def custom(cls, regions: Iterable[str],
               rtt_ms: Mapping[Tuple[str, str], float],
               bandwidth_mbit: Mapping[Tuple[str, str], float]) -> "Topology":
        """Build a topology from explicit matrices (symmetric input)."""
        return cls(regions, rtt_ms, bandwidth_mbit)

    @classmethod
    def uniform(cls, regions: Iterable[str], rtt_ms: float = 1.0,
                bandwidth_mbit: float = 8000.0) -> "Topology":
        """A flat topology where every pair has the same link — handy for
        unit tests that should not depend on geography."""
        regions = tuple(regions)
        rtt = {(a, b): rtt_ms for a in regions for b in regions}
        bw = {(a, b): bandwidth_mbit for a in regions for b in regions}
        return cls(regions, rtt, bw)

    @property
    def regions(self) -> tuple[str, ...]:
        """The regions of this topology, in deployment order."""
        return self._regions

    def link(self, src_region: str, dst_region: str) -> LinkSpec:
        """The directed link spec between two regions."""
        try:
            return self._links[(src_region, dst_region)]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown region pair ({src_region}, {dst_region})"
            ) from exc

    def latency(self, src_region: str, dst_region: str) -> float:
        """One-way latency in seconds."""
        return self.link(src_region, dst_region).latency_s

    def rtt_ms(self, src_region: str, dst_region: str) -> float:
        """Round-trip time in milliseconds (as Table 1 reports it)."""
        return self.link(src_region, dst_region).latency_s * 2 * 1000.0

    def bandwidth_mbit(self, src_region: str, dst_region: str) -> float:
        """Bandwidth in Mbit/s (as Table 1 reports it)."""
        return self.link(src_region, dst_region).bandwidth_bytes_per_s * 8 / 1e6

    def is_local(self, src_region: str, dst_region: str) -> bool:
        """Whether the two endpoints share a region (intra-cluster)."""
        return src_region == dst_region
