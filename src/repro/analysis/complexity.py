"""Normal-case complexity analysis (paper Table 2).

Table 2 compares, per consensus decision, the number of local and global
messages each protocol exchanges in a system of ``z`` clusters with
``n`` replicas each (``f`` faulty tolerated per cluster).  This module
provides the analytic formulas and a helper that extracts the *measured*
per-decision counts from an experiment run so the benchmark can print
them side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError
from ..types import max_faulty


@dataclass(frozen=True)
class ComplexityRow:
    """One protocol's Table 2 row."""

    protocol: str
    decisions_per_round: int
    local_messages: float
    global_messages: float
    centralized: str

    def per_decision_local(self) -> float:
        """Local messages normalized per consensus decision."""
        return self.local_messages / self.decisions_per_round

    def per_decision_global(self) -> float:
        """Global messages normalized per consensus decision."""
        return self.global_messages / self.decisions_per_round


def analytic_complexity(protocol: str, z: int, n: int) -> ComplexityRow:
    """Table 2's analytic formulas for ``z`` clusters of ``n`` replicas.

    Counts are *leading order* message totals per GeoBFT-equivalent
    round, matching the O(.) entries the paper reports:

    * GeoBFT: ``z`` decisions; each cluster runs PBFT locally
      (two all-to-all phases, ``2n^2``) and sends ``f + 1`` messages to
      every other cluster, re-broadcast locally.
    * PBFT: one decision per round over all ``zn`` replicas; the two
      all-to-all phases cost ``2(zn)^2``, nearly all of it global.
    * Zyzzyva: one decision, one ordered-request broadcast: ``zn``.
    * HotStuff: one decision, 4 phases of linear leader traffic:
      ``8 zn``.
    * Steward: ``2zn^2`` local site agreement plus inter-site traffic
      quadratic in the number of sites: ``z^2``.
    """
    f = max_faulty(n)
    big_n = z * n
    if protocol == "geobft":
        local = 2 * z * n * n + z * (z - 1) * (f + 1) * n
        global_ = z * (z - 1) * (f + 1)
        return ComplexityRow("geobft", z, local, global_, "no")
    if protocol == "pbft":
        return ComplexityRow("pbft", 1, 0, 2 * big_n * big_n, "yes")
    if protocol == "zyzzyva":
        return ComplexityRow("zyzzyva", 1, 0, big_n, "yes")
    if protocol == "hotstuff":
        return ComplexityRow("hotstuff", 1, 0, 8 * big_n, "partly")
    if protocol == "steward":
        return ComplexityRow("steward", 1, 2 * z * n * n, z * z, "yes")
    raise ConfigurationError(f"unknown protocol {protocol!r}")


def measured_complexity(local_messages: int, global_messages: int,
                        decisions: int) -> Dict[str, float]:
    """Per-decision measured message counts from an experiment."""
    if decisions <= 0:
        return {"local_per_decision": 0.0, "global_per_decision": 0.0}
    return {
        "local_per_decision": local_messages / decisions,
        "global_per_decision": global_messages / decisions,
    }
