"""Analysis helpers: Table 2 complexity formulas and traffic reports."""

from .complexity import ComplexityRow, analytic_complexity, measured_complexity
from .traffic import (
    LinkUsage,
    busiest_sender_region,
    cross_region_totals,
    format_link_report,
    link_usage,
)

__all__ = [
    "ComplexityRow",
    "analytic_complexity",
    "measured_complexity",
    "LinkUsage",
    "busiest_sender_region",
    "cross_region_totals",
    "format_link_report",
    "link_usage",
]
