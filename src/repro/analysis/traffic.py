"""WAN traffic analysis: where the bytes went and how close each link
came to saturation.

The paper's central argument (§1.1) is that inter-region bandwidth is
the scarce resource.  This module turns an experiment's per-region-pair
byte counts into a utilization report against the Table 1 link rates,
making "PBFT saturates the primary's uplinks, GeoBFT barely touches
them" directly visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..bench.metrics import Metrics
from ..net.topology import Topology


@dataclass(frozen=True)
class LinkUsage:
    """Traffic on one directed region pair over the measured window."""

    src_region: str
    dst_region: str
    bytes_sent: int
    throughput_mbit: float
    capacity_mbit: float

    @property
    def utilization(self) -> float:
        """Achieved throughput over the per-pair capacity (0..1+).

        Values above 1 are possible: several senders in a region each
        own an independent uplink at the per-pair rate.
        """
        if self.capacity_mbit <= 0:
            return 0.0
        return self.throughput_mbit / self.capacity_mbit


def link_usage(metrics: Metrics, topology: Topology,
               window: float) -> List[LinkUsage]:
    """Per-pair usage rows, heaviest first.

    ``window`` is the duration (simulated seconds) the byte counts were
    accumulated over — typically ``result.duration``.
    """
    if window <= 0:
        return []
    rows = []
    for (src, dst), sent in metrics.pair_bytes().items():
        throughput = sent * 8 / window / 1e6
        rows.append(LinkUsage(
            src_region=src,
            dst_region=dst,
            bytes_sent=sent,
            throughput_mbit=throughput,
            capacity_mbit=topology.bandwidth_mbit(src, dst),
        ))
    rows.sort(key=lambda r: r.bytes_sent, reverse=True)
    return rows


def cross_region_totals(metrics: Metrics) -> Dict[Tuple[str, str], int]:
    """Only the inter-region pairs (the expensive traffic)."""
    return {
        pair: sent
        for pair, sent in metrics.pair_bytes().items()
        if pair[0] != pair[1]
    }


def busiest_sender_region(metrics: Metrics) -> Tuple[str, int]:
    """The region emitting the most cross-region bytes.

    For a single-primary protocol this is the primary's region (the
    bottleneck the paper identifies); for GeoBFT the load spreads.
    """
    per_region: Dict[str, int] = {}
    for (src, dst), sent in metrics.pair_bytes().items():
        if src != dst:
            per_region[src] = per_region.get(src, 0) + sent
    if not per_region:
        return ("", 0)
    region = max(per_region, key=per_region.get)
    return (region, per_region[region])


def format_link_report(rows: List[LinkUsage], limit: int = 12) -> str:
    """Readable per-link report, heaviest links first."""
    lines = [f"{'src':>10} -> {'dst':<10} {'MB':>9} {'Mbit/s':>9} "
             f"{'cap':>8} {'util':>6}"]
    for row in rows[:limit]:
        lines.append(
            f"{row.src_region:>10} -> {row.dst_region:<10} "
            f"{row.bytes_sent / 1e6:>9.2f} {row.throughput_mbit:>9.1f} "
            f"{row.capacity_mbit:>8.0f} {row.utilization:>5.0%}"
        )
    return "\n".join(lines)
