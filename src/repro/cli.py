"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``      — run one experiment and print its result line (or the
  full result object with ``--json``).
* ``trace``    — run one instrumented experiment, print phase/latency
  tables, and export Chrome trace_event + JSONL phase traces.
* ``compare``  — run several protocols on the same deployment and print
  a comparison table.
* ``sweep``    — run an experiment *campaign* (a DAG of runs) against a
  digest-keyed result store, fanning ready runs across a process pool;
  without ``--campaign`` the shared experiment flags define an ad-hoc
  single-run campaign.
* ``table1``   — print the Table 1 topology matrix the simulator uses.
* ``table2``   — print the Table 2 analytic complexity comparison.

All experiment commands share the same knobs: ``--scenario`` selects a
named failure scenario from the open registry (paper scenarios plus
anything added via :func:`repro.register_scenario`), and ``--faults``
installs a scheduled :class:`~repro.net.chaos.FaultTimeline` from a
JSON spec.  All output is plain text; every run is deterministic per
``--seed``.

Set ``REPRO_PROFILE=1`` to run the command under :mod:`cProfile` and
print the 20 hottest functions (by internal time) afterwards — the
quickest way to see where *host* CPU goes.  On a parallel run each
worker process additionally dumps its own profile to
``<REPRO_PROFILE_OUT or 'repro-profile'>-w<rank>.pstats`` (load with
:mod:`pstats`).  Profiling never affects simulated results: the
simulator runs on virtual time.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis.complexity import analytic_complexity
from .bench.deployment import (
    PROTOCOLS,
    ExperimentConfig,
    deployment_digest,
)
from .bench.reporting import (
    format_cache_report,
    format_engine_stats,
    format_latency_percentiles,
    format_phase_durations,
    format_queue_samples,
    format_runtime_telemetry,
    format_share_latency,
    format_table,
    summarize_results,
)
from .bench.scenarios import scenario_names
from .net.topology import PAPER_REGIONS, Topology


def _add_experiment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clusters", "-z", type=int, default=2,
                        help="number of regions/clusters (1-6)")
    parser.add_argument("--replicas", "-n", type=int, default=4,
                        help="replicas per cluster (>= 4)")
    parser.add_argument("--batch", "-b", type=int, default=100,
                        help="transactions per batch")
    parser.add_argument("--duration", "-d", type=float, default=3.0,
                        help="simulated seconds")
    parser.add_argument("--warmup", "-w", type=float, default=0.5,
                        help="simulated warmup excluded from rates")
    parser.add_argument("--clients", type=int, default=4,
                        help="clients per cluster (closed-loop; ignored "
                             "when --traffic is set)")
    parser.add_argument("--traffic", default="", metavar="SPEC",
                        help="open-loop aggregate traffic spec "
                             "('process:key=value,...', e.g. "
                             "'poisson:users=1000000,rate=0.002'); "
                             "replaces the closed-loop clients with one "
                             "arrival source per region (see "
                             "docs/workloads.md)")
    parser.add_argument("--seed", type=int, default=1,
                        help="deterministic experiment seed")
    # Registry names, not a closed choices= tuple: scenarios registered
    # by embedding code (register_scenario) stay selectable, and unknown
    # names produce the registry's own error listing what exists.
    parser.add_argument("--scenario", default="none", metavar="NAME",
                        help="failure scenario to apply; one of "
                             f"{', '.join(scenario_names())} or any "
                             "name added via register_scenario()")
    parser.add_argument("--fail-at", type=float, default=0.0,
                        help="schedule scenario crashes at this "
                             "simulated time")
    parser.add_argument("--faults", default="", metavar="FILE",
                        help="install a fault timeline from a JSON spec "
                             "(see docs/fault_injection.md)")
    parser.add_argument("--real-crypto", action="store_true",
                        help="verify real HMAC signatures (slower host "
                             "run, identical simulated results)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the parallel engine "
                             "(1 = serial; capped at the cluster count; "
                             "results are byte-identical either way)")


def _add_output_args(parser: argparse.ArgumentParser, trace: bool = True,
                     trace_aliases: bool = False,
                     trace_default: str = "") -> None:
    """The shared output surface: ``--json`` and the trace-export flags.

    Defined once so ``run``, ``trace``, ``compare``, and ``sweep`` stay
    flag-compatible.  ``trace_aliases`` keeps the ``trace`` command's
    historical ``--out``/``--jsonl`` spellings working (same dests).
    """
    parser.add_argument("--json", action="store_true",
                        help="print a machine-readable JSON document "
                             "instead of the human-readable report")
    if not trace:
        return
    out_flags = ["--trace-out"] + (["--out"] if trace_aliases else [])
    parser.add_argument(*out_flags, dest="trace_out",
                        default=trace_default,
                        help="write a Chrome trace_event JSON file "
                             "of consensus phase spans")
    jsonl_flags = ["--trace-jsonl"] + (["--jsonl"] if trace_aliases else [])
    parser.add_argument(*jsonl_flags, dest="trace_jsonl", default="",
                        help="write raw phase events as JSON lines")


def _arrange_faults(deployment, args, quiet: bool = False) -> None:
    """Apply ``--scenario`` and/or ``--faults`` to a built deployment."""
    from .bench.scenarios import apply_scenario

    if args.scenario != "none":
        victims = apply_scenario(deployment, args.scenario,
                                 fail_at=args.fail_at)
        if not quiet:
            if victims:
                print(f"scenario {args.scenario}: crashing "
                      f"{', '.join(str(v) for v in victims)}"
                      + (f" at t={args.fail_at}s" if args.fail_at else ""))
            else:
                print(f"scenario {args.scenario}: installed")
    if args.faults:
        from .net.chaos import FaultTimeline

        timeline = FaultTimeline.load(args.faults)
        timeline.install(deployment)
        if not quiet:
            print(f"fault timeline {timeline.name!r}: "
                  f"{len(timeline)} faults scheduled")


def _result_ok(deployment, result) -> bool:
    report = deployment.invariants
    if report is not None:
        return report.ok
    return result.safety_ok and result.liveness_ok


def _config_from_args(args, protocol: str,
                      instrument: bool = False) -> ExperimentConfig:
    return ExperimentConfig(
        protocol=protocol,
        num_clusters=args.clusters,
        replicas_per_cluster=args.replicas,
        batch_size=args.batch,
        clients_per_cluster=args.clients,
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
        fast_crypto=not args.real_crypto,
        instrument=instrument,
        workers=getattr(args, "workers", 1),
        traffic=getattr(args, "traffic", "") or None,
    )


def _export_traces(instr, trace_out: str, trace_jsonl: str,
                   quiet: bool = False) -> None:
    if trace_out:
        spans = instr.export_chrome_trace(trace_out)
        if not quiet:
            print(f"  wrote {spans} trace events to {trace_out} "
                  f"(open with chrome://tracing or ui.perfetto.dev)")
    if trace_jsonl:
        lines = instr.export_jsonl(trace_jsonl)
        if not quiet:
            print(f"  wrote {lines} phase events to {trace_jsonl}")


def _print_observability(instr) -> None:
    print()
    print(format_phase_durations(instr))
    share = format_share_latency(instr)
    if not share.startswith("("):
        print()
        print(share)
    print()
    print(format_queue_samples(instr))


def _cmd_parallel_run(args, config) -> Optional[int]:
    """The ``run`` command on the parallel engine.

    Returns ``None`` when the configuration needs the serial engine
    (the caller falls back), otherwise the process exit code.  The
    printed result, counters, and JSON are deployment-wide merges — a
    parallel run is byte-identical to its serial twin.
    """
    from .bench.parallel import parallel_unsupported_reason, run_parallel
    from .net.chaos import FaultTimeline

    timeline = FaultTimeline.load(args.faults) if args.faults else None
    scenario = args.scenario if args.scenario != "none" else None
    reason = parallel_unsupported_reason(config, timeline=timeline,
                                         scenario=scenario)
    if reason is not None:
        if not args.json:
            print(f"workers={config.workers}: serial fallback ({reason})")
        return None
    if not args.json:
        if scenario:
            print(f"scenario {scenario}: installed in every worker")
        if timeline is not None:
            print(f"fault timeline {timeline.name!r}: "
                  f"{len(timeline)} faults scheduled in every worker")
    run = run_parallel(config, timeline=timeline, scenario=scenario,
                       fail_at=args.fail_at)
    result = run.result
    if args.json:
        import json

        # The result row itself is byte-identical to the serial
        # engine's; engine telemetry rides alongside under its own key.
        doc = result.to_dict()
        doc["engine"] = run.engine.to_dict()
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0 if run.invariants.ok else 1
    print(result.describe())
    print(format_latency_percentiles(result))
    print(f"  global: {result.global_messages} msgs / "
          f"{result.global_bytes / 1e6:.2f} MB   "
          f"local: {result.local_messages} msgs / "
          f"{result.local_bytes / 1e6:.2f} MB")
    telemetry = run.telemetry
    print(f"  parallel: {run.workers} workers, lookahead "
          f"{run.lookahead * 1e3:.1f} ms, {run.windows} windows, "
          f"{run.events_processed} events, "
          f"max queue depth {run.max_queue_depth}")
    print(f"  network (merged): {telemetry.get('sends', 0)} sends, "
          f"{telemetry.get('in_flight_drops', 0)} in-flight drops, "
          f"{telemetry.get('receiver_drops', 0)} receiver drops, "
          f"{telemetry.get('tampered_sends', 0)} tampered")
    print()
    print(format_engine_stats(run.engine.per_worker,
                              lookahead=run.engine.lookahead,
                              windows=run.engine.windows))
    if run.instrumentation is not None:
        _print_observability(run.instrumentation)
        _export_traces(run.instrumentation, args.trace_out,
                       args.trace_jsonl)
    if args.link_report:
        from .analysis.traffic import format_link_report, link_usage
        rows = link_usage(run.metrics, config.resolved_topology(),
                          window=result.duration)
        print("\nper-link traffic (heaviest first):")
        print(format_link_report(rows))
    if timeline is not None or scenario:
        print()
        print(run.invariants.describe())
    return 0 if run.invariants.ok else 1


def _cmd_run(args) -> int:
    from .bench.deployment import Deployment

    instrument = bool(args.trace_out or args.trace_jsonl)
    config = _config_from_args(args, args.protocol, instrument=instrument)
    if config.workers > 1:
        outcome = _cmd_parallel_run(args, config)
        if outcome is not None:
            return outcome
    deployment = Deployment(config)
    _arrange_faults(deployment, args, quiet=args.json)
    result = deployment.run()
    if args.json:
        print(result.to_json())
        return 0 if _result_ok(deployment, result) else 1
    print(result.describe())
    print(format_latency_percentiles(result))
    print(f"  global: {result.global_messages} msgs / "
          f"{result.global_bytes / 1e6:.2f} MB   "
          f"local: {result.local_messages} msgs / "
          f"{result.local_bytes / 1e6:.2f} MB")
    print()
    print(format_cache_report(deployment))
    if instrument:
        _print_observability(deployment.instrumentation)
        _export_traces(deployment.instrumentation, args.trace_out,
                       args.trace_jsonl)
    if args.link_report:
        from .analysis.traffic import format_link_report, link_usage
        rows = link_usage(deployment.metrics, deployment.topology,
                          window=result.duration)
        print("\nper-link traffic (heaviest first):")
        print(format_link_report(rows))
    if deployment.invariants is not None and deployment.timeline is not None:
        print()
        print(deployment.invariants.describe())
    return 0 if _result_ok(deployment, result) else 1


def _cmd_trace_summary(args) -> int:
    """``repro trace --summary FILE``: offline analysis of a JSONL
    trace — no experiment is re-run."""
    from .bench.tracing import load_trace_jsonl

    try:
        hub = load_trace_jsonl(args.summary)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {args.summary}: {exc}",
              file=sys.stderr)
        return 2
    print(f"trace summary of {args.summary}:")
    print(hub.summary())
    print()
    print(format_phase_durations(hub))
    share = format_share_latency(hub)
    if not share.startswith("("):
        print()
        print(share)
    if hub.engine_workers:
        print()
        print(format_engine_stats(hub.engine_workers))
    return 0


def _cmd_trace(args) -> int:
    from .bench.deployment import Deployment

    if args.summary:
        return _cmd_trace_summary(args)

    def _run(instrument: bool):
        deployment = Deployment(
            _config_from_args(args, args.protocol, instrument=instrument))
        _arrange_faults(deployment, args,
                        quiet=(instrument is False) or args.json)
        result = deployment.run()
        return deployment, result

    deployment, result = _run(instrument=True)
    instr = deployment.instrumentation
    if args.json:
        import json

        _export_traces(instr, args.trace_out, args.trace_jsonl, quiet=True)
        doc = result.to_dict()
        doc["digest"] = deployment_digest(deployment, result)
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0 if _result_ok(deployment, result) else 1
    print(result.describe())
    print(format_latency_percentiles(result))
    print()
    print(instr.summary())
    _print_observability(instr)
    print()
    print(format_cache_report(deployment))
    print()
    print(format_runtime_telemetry(deployment))
    print()
    _export_traces(instr, args.trace_out, args.trace_jsonl)
    if deployment.invariants is not None and deployment.timeline is not None:
        print()
        print(deployment.invariants.describe())

    ok = _result_ok(deployment, result)
    if args.assert_determinism:
        digest_on = deployment_digest(deployment, result)
        baseline, baseline_result = _run(instrument=False)
        digest_off = deployment_digest(baseline, baseline_result)
        if digest_on == digest_off:
            print(f"  determinism: ok (digest {digest_on[:16]}..., "
                  f"trace on == trace off)")
        else:
            print("  determinism: VIOLATED — instrumentation perturbed "
                  "the simulation")
            print(f"    trace on:  {digest_on}")
            print(f"    trace off: {digest_off}")
            ok = False
    return 0 if ok else 1


def _cmd_compare(args) -> int:
    from .bench.deployment import Deployment

    results, ok = [], True
    for protocol in args.protocols:
        deployment = Deployment(_config_from_args(args, protocol))
        # A fresh deployment per protocol needs fresh fault objects, so
        # scenarios/timeline specs are re-resolved for each one.
        _arrange_faults(deployment, args, quiet=True)
        result = deployment.run()
        results.append(result)
        ok = ok and _result_ok(deployment, result)
    if args.json:
        import json

        print(json.dumps([r.to_dict() for r in results],
                         indent=2, sort_keys=True))
        return 0 if ok else 1
    print(summarize_results(results))
    return 0 if ok else 1


def _cmd_sweep(args) -> int:
    """``repro sweep``: run a campaign DAG against the result store."""
    import json

    from .sweep import (Campaign, ResultStore, RunSpec, campaign_names,
                        get_campaign, run_campaign)
    from .sweep.reports import chaos_audit_failures, figure_records
    from .sweep.store import (compare_overload_baseline,
                              compare_scale_baseline,
                              overload_digest_parity, scale_digest_parity)

    if args.list_campaigns:
        rows = []
        for name in campaign_names():
            campaign = get_campaign(name)
            rows.append([name, len(campaign.runs), len(campaign.reports),
                         campaign.description])
        print(format_table(["campaign", "runs", "reports", "description"],
                           rows, title="registered campaigns"))
        return 0

    if args.campaign:
        campaign = get_campaign(args.campaign)
    else:
        # Ad-hoc mode: the shared experiment flags define a single-run
        # campaign, so one-off runs still land in the store.
        faults = None
        if args.faults:
            from .net.chaos import FaultTimeline

            faults = FaultTimeline.load(args.faults).to_dict()
        spec = RunSpec(
            run_id=f"adhoc/{args.protocol}",
            config=_config_from_args(args, args.protocol),
            scenario=args.scenario,
            fail_at=args.fail_at,
            faults=faults,
            tags={"figure": "adhoc", "protocol": args.protocol})
        campaign = Campaign(
            name="adhoc",
            description="single run built from the CLI experiment flags",
            runs=(spec,))
    if args.filter:
        campaign = campaign.filtered(args.filter)

    if args.list_runs:
        for spec in campaign.toposort():
            print(spec.describe())
        return 0

    store = ResultStore(args.store or None)
    progress = None if args.json else print
    with store:
        outcome = run_campaign(campaign, store=store, jobs=args.jobs,
                               cpu_budget=args.cpu_budget,
                               rerun=args.rerun, progress=progress,
                               partial=bool(args.filter))
        failures: List[str] = []
        if args.budget_s is not None:
            for record in outcome.executed:
                if (record["status"] == "ok"
                        and record["wall_s"] > args.budget_s):
                    failures.append(
                        f"{record['run_id']}: wall {record['wall_s']:.1f}s "
                        f"exceeds budget {args.budget_s:.1f}s")
        scale_records = figure_records(outcome.records, "scale")
        if scale_records:
            failures += scale_digest_parity(scale_records)
        if args.baseline:
            if not scale_records:
                failures.append(
                    f"--baseline {args.baseline}: no scale-tagged records "
                    "in this campaign to compare")
            else:
                with open(args.baseline, "r", encoding="utf-8") as fh:
                    baseline = json.load(fh)
                calibration = outcome.host.get("calibration_ops_per_s", 0)
                failures += compare_scale_baseline(
                    scale_records, calibration, baseline)
        overload_records = figure_records(outcome.records, "overload")
        if overload_records:
            failures += overload_digest_parity(overload_records)
        if args.overload_baseline:
            if not overload_records:
                failures.append(
                    f"--overload-baseline {args.overload_baseline}: no "
                    "overload-tagged records in this campaign to compare")
            else:
                with open(args.overload_baseline, "r",
                          encoding="utf-8") as fh:
                    baseline = json.load(fh)
                calibration = outcome.host.get("calibration_ops_per_s", 0)
                failures += compare_overload_baseline(
                    overload_records, calibration, baseline)
        failures += chaos_audit_failures(outcome.records)

    if args.artifacts:
        os.makedirs(args.artifacts, exist_ok=True)
        for name, content in sorted(outcome.artifacts.items()):
            path = os.path.join(args.artifacts,
                                outcome.artifact_names[name])
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(content)
            if not args.json:
                print(f"  wrote {path}")

    if args.json:
        doc = outcome.to_dict()
        doc["failures"] = failures
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(outcome.summary())
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
    return 0 if outcome.ok and not failures else 1


def _cmd_table1(_args) -> int:
    topology = Topology.paper(6)
    header = ["region"] + [r[:3].upper() for r in PAPER_REGIONS]
    rtt_rows, bw_rows = [], []
    for i, a in enumerate(PAPER_REGIONS):
        rtt_row, bw_row = [a], [a]
        for j, b in enumerate(PAPER_REGIONS):
            if j < i:
                rtt_row.append("")
                bw_row.append("")
            else:
                rtt_row.append(round(topology.rtt_ms(a, b), 1))
                bw_row.append(round(topology.bandwidth_mbit(a, b)))
        rtt_rows.append(rtt_row)
        bw_rows.append(bw_row)
    print(format_table(header, rtt_rows,
                       title="Table 1 — ping round-trip times (ms)"))
    print()
    print(format_table(header, bw_rows,
                       title="Table 1 — bandwidth (Mbit/s)"))
    return 0


def _cmd_table2(args) -> int:
    rows = []
    for protocol in PROTOCOLS:
        row = analytic_complexity(protocol, args.clusters, args.replicas)
        rows.append([
            protocol,
            row.decisions_per_round,
            round(row.per_decision_local()),
            round(row.per_decision_global()),
            row.centralized,
        ])
    print(format_table(
        ["protocol", "decisions/round", "local msgs/decision",
         "global msgs/decision", "centralized"],
        rows,
        title=f"Table 2 — analytic complexity, z={args.clusters}, "
              f"n={args.replicas}",
    ))
    return 0


def _changed_files(ref: str) -> Optional[List[str]]:
    """Python files changed vs ``ref`` (``None`` if git fails)."""
    import subprocess

    proc = subprocess.run(
        ["git", "diff", "--name-only", ref, "--", "*.py"],
        capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        print(f"repro lint: git diff against {ref!r} failed: "
              f"{proc.stderr.strip()}", file=sys.stderr)
        return None
    return [path for path in proc.stdout.splitlines()
            if path.endswith(".py") and os.path.isfile(path)]


def _write_flow_artifacts(args, package_dir: str) -> None:
    """Emit ``--flow-report`` / ``--flow-dot`` from the package tree.

    The flow graph is a whole-package artifact, so it is always
    extracted from the installed package source — a ``--changed`` run
    narrows the *findings*, never the graph.
    """
    import ast
    import json

    from .lint.engine import discover_files
    from .lint.msgflow import extract_flows, flow_dot, flow_report
    from .lint.symbols import build_index

    parsed = []
    for file_path in discover_files([package_dir]):
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=file_path)
        except SyntaxError:
            continue  # the lint run itself reports parse errors
        parsed.append((file_path.replace(os.sep, "/"), tree))
    flows = extract_flows(build_index(parsed))
    if args.flow_report:
        with open(args.flow_report, "w", encoding="utf-8") as handle:
            json.dump(flow_report(flows), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    if args.flow_dot:
        with open(args.flow_dot, "w", encoding="utf-8") as handle:
            handle.write(flow_dot(flows))


def _cmd_lint(args) -> int:
    """``repro lint``: exit 0 on a clean tree, 1 on findings."""
    import json

    from .lint import default_rules, run_lint
    from .lint.rules import iter_rule_docs

    if args.list_rules:
        for doc in iter_rule_docs():
            print(f"{doc['id']}: {doc['summary']}")
        return 0
    package_dir = os.path.dirname(os.path.abspath(__file__))
    paths = args.paths
    project_scope = None
    if args.changed is not None:
        changed = _changed_files(args.changed)
        if changed is None:
            return 2
        # Findings are restricted to the changed files, but the
        # whole-program passes still parse the full package so
        # interprocedural resolution does not lose edges.
        paths = changed
        project_scope = [package_dir]
    elif not paths:
        # Default target: the installed package's own source tree, so
        # ``repro lint`` self-checks from any working directory.
        paths = [package_dir]
    rules = default_rules(args.rules) if args.rules else None
    if paths:
        report = run_lint(paths, rules=rules,
                          project_scope=project_scope)
    else:
        from .lint import LintReport
        report = LintReport(rules_run=tuple(
            rule.id for rule in (rules or default_rules())))
    if args.flow_report or args.flow_dot:
        _write_flow_artifacts(args, package_dir)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format_text())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ResilientDB/GeoBFT (VLDB 2020) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run one experiment")
    run_parser.add_argument("--protocol", "-p", choices=PROTOCOLS,
                            default="geobft")
    run_parser.add_argument("--link-report", action="store_true",
                            help="print per-region-link traffic report")
    _add_experiment_args(run_parser)
    _add_output_args(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    trace_parser = commands.add_parser(
        "trace", help="run one instrumented experiment and export "
                      "consensus-phase traces")
    trace_parser.add_argument("--protocol", "-p", choices=PROTOCOLS,
                              default="geobft")
    trace_parser.add_argument("--assert-determinism", action="store_true",
                              help="re-run without instrumentation and "
                                   "fail unless results are identical")
    trace_parser.add_argument("--summary", default="", metavar="JSONL",
                              help="print phase p50/p95/p99 tables and "
                                   "per-worker engine stats from an "
                                   "existing JSONL trace instead of "
                                   "running an experiment")
    _add_experiment_args(trace_parser)
    _add_output_args(trace_parser, trace_aliases=True,
                     trace_default="trace.json")
    trace_parser.set_defaults(handler=_cmd_trace)

    compare_parser = commands.add_parser(
        "compare", help="run several protocols on one deployment")
    compare_parser.add_argument(
        "--protocols", type=lambda s: s.split(","),
        default=list(PROTOCOLS),
        help="comma-separated protocol list")
    _add_experiment_args(compare_parser)
    _add_output_args(compare_parser, trace=False)
    compare_parser.set_defaults(handler=_cmd_compare)

    sweep_parser = commands.add_parser(
        "sweep", help="run an experiment campaign (a DAG of runs) "
                      "against the digest-keyed result store")
    sweep_parser.add_argument("--campaign", "-c", default="",
                              metavar="NAME",
                              help="registered campaign to run "
                                   "(see --list-campaigns); omit to run "
                                   "an ad-hoc single-run campaign from "
                                   "the experiment flags")
    sweep_parser.add_argument("--filter", default="", metavar="SUBSTR",
                              help="keep only runs whose id contains "
                                   "this substring (dependencies are "
                                   "pulled in automatically)")
    sweep_parser.add_argument("--jobs", "-j", type=int, default=1,
                              help="worker processes for the campaign "
                                   "pool (1 = run inline)")
    sweep_parser.add_argument("--store", default="", metavar="DIR",
                              help="result-store directory (JSONL + "
                                   "SQLite index); empty = in-memory, "
                                   "nothing cached across invocations")
    sweep_parser.add_argument("--artifacts", default="", metavar="DIR",
                              help="write the campaign's report "
                                   "artifacts (figures, tables, "
                                   "BENCH_scale.json) here")
    sweep_parser.add_argument("--rerun", action="store_true",
                              help="execute every run even when the "
                                   "store already has its record")
    sweep_parser.add_argument("--cpu-budget", type=int, default=None,
                              help="cap on concurrently-used engine "
                                   "workers across the pool (default: "
                                   "host CPU count)")
    sweep_parser.add_argument("--budget-s", type=float, default=None,
                              help="absolute wall-time budget per "
                                   "executed run (seconds)")
    sweep_parser.add_argument("--baseline", default="", metavar="FILE",
                              help="compare scale-tagged records "
                                   "against this BENCH_scale.json "
                                   "(digest drift + calibrated rate)")
    sweep_parser.add_argument("--overload-baseline", default="",
                              metavar="FILE",
                              help="compare overload-tagged records "
                                   "against this BENCH_overload.json "
                                   "(digest drift + calibrated rate)")
    sweep_parser.add_argument("--list-campaigns", action="store_true",
                              help="print the campaign registry and "
                                   "exit")
    sweep_parser.add_argument("--list-runs", action="store_true",
                              help="print the campaign's runs in "
                                   "schedule order and exit")
    sweep_parser.add_argument("--protocol", "-p", choices=PROTOCOLS,
                              default="geobft",
                              help="protocol for the ad-hoc single-run "
                                   "mode")
    _add_experiment_args(sweep_parser)
    _add_output_args(sweep_parser, trace=False)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    table1_parser = commands.add_parser(
        "table1", help="print the Table 1 WAN matrix")
    table1_parser.set_defaults(handler=_cmd_table1)

    table2_parser = commands.add_parser(
        "table2", help="print the Table 2 complexity comparison")
    table2_parser.add_argument("--clusters", "-z", type=int, default=4)
    table2_parser.add_argument("--replicas", "-n", type=int, default=7)
    table2_parser.set_defaults(handler=_cmd_table2)

    lint_parser = commands.add_parser(
        "lint", help="run the determinism/protocol static-analysis "
                     "rules (see docs/static_analysis.md)")
    lint_parser.add_argument("paths", nargs="*", metavar="PATH",
                             help="files or directories to lint "
                                  "(default: the installed repro "
                                  "package source)")
    lint_parser.add_argument("--json", action="store_true",
                             help="emit the machine-readable report "
                                  "(schema version 2)")
    lint_parser.add_argument("--rule", action="append", default=None,
                             metavar="RULE-ID", dest="rules",
                             help="run only this rule (repeatable)")
    lint_parser.add_argument("--list-rules", action="store_true",
                             help="print the rule catalogue and exit")
    lint_parser.add_argument("--changed", nargs="?", const="HEAD",
                             default=None, metavar="REF",
                             help="lint only files changed vs REF "
                                  "(default HEAD); the whole-program "
                                  "passes still see the full package")
    lint_parser.add_argument("--flow-report", default="", metavar="JSON",
                             help="write the per-protocol message-flow "
                                  "graph as JSON")
    lint_parser.add_argument("--flow-dot", default="", metavar="DOT",
                             help="write the message-flow graph as "
                                  "GraphViz DOT")
    lint_parser.set_defaults(handler=_cmd_lint)
    return parser


def _run_profiled(handler, args) -> int:
    """Run ``handler`` under cProfile and print the top-20 hot spots."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return handler(args)
    finally:
        profiler.disable()
        print("\nREPRO_PROFILE=1 — top 20 functions by internal time:")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.strip_dirs().sort_stats("tottime").print_stats(20)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from .errors import ConfigurationError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if os.environ.get("REPRO_PROFILE") == "1":
            return _run_profiled(args.handler, args)
        return args.handler(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
