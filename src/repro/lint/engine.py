"""The lint engine: file discovery, suppressions, allowlist, reporting.

The engine is deliberately small: it parses each Python file once,
computes the scope map (which class/function encloses each line), runs
every rule's AST visitor over the tree, and then filters the raw
findings through two escape hatches:

* **inline suppressions** — ``# repro: allow[rule-id] reason`` on the
  flagged line, or on a comment line directly above it;
* **the committed allowlist** — :mod:`repro.lint.allowlist` entries that
  name a rule, a file, and (optionally) the enclosing ``Class.method``
  symbol, each with a mandatory justification.

Findings are reported in a stable order (path, line, column, rule) so
lint output is diffable and the ``--json`` schema is deterministic.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from .allowlist import ALLOWLIST, AllowlistEntry
from .rules import ProjectRule, Rule, default_rules

#: Inline suppression syntax: ``# repro: allow[rule-id]`` or
#: ``# repro: allow[rule-a, rule-b] optional free-text reason``.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-, ]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Qualified name of the enclosing scope (``Class.method``), or
    #: ``"<module>"`` for module-level code.  Allowlist entries match on
    #: this, so they survive line-number churn.
    symbol: str = "<module>"

    def format(self) -> str:
        """``path:line:col: rule-id: message`` (editor-clickable)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule}: {self.message}")

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }


class FileContext:
    """Everything a rule may need about the file under analysis."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        #: Normalized forward-slash path, used for module-scoped rules
        #: (``ctx.module_is("repro/net/network.py")``) so scoping works
        #: on every platform and from any checkout root.
        self.norm_path = path.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._scopes = _scope_spans(tree)

    def module_is(self, *suffixes: str) -> bool:
        """Whether this file is one of the named modules (by suffix)."""
        return any(self.norm_path.endswith(suffix) for suffix in suffixes)

    def symbol_at(self, line: int) -> str:
        """Qualified name of the innermost scope containing ``line``."""
        best = "<module>"
        best_span = None
        for start, end, qualname in self._scopes:
            if start <= line <= end:
                if best_span is None or (start, -end) > best_span:
                    best = qualname
                    best_span = (start, -end)
        return best


def _scope_spans(tree: ast.Module) -> List[Tuple[int, int, str]]:
    """``(start_line, end_line, qualname)`` for every class/function."""
    spans: List[Tuple[int, int, str]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                qualname = f"{prefix}{child.name}"
                end = getattr(child, "end_lineno", child.lineno)
                spans.append((child.lineno, end or child.lineno, qualname))
                visit(child, f"{qualname}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return spans


def _suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Per-line suppressed rule ids.

    A trailing ``# repro: allow[...]`` suppresses findings on its own
    line; a comment-only suppression line also covers the next line, so
    long flagged statements can keep the annotation above them.
    """
    by_line: Dict[int, Set[str]] = {}
    for idx, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        by_line.setdefault(idx, set()).update(rules)
        if text.lstrip().startswith("#"):
            by_line.setdefault(idx + 1, set()).update(rules)
    return by_line


def _allowlisted(finding: Finding, entries: Sequence[AllowlistEntry]) -> bool:
    for entry in entries:
        if entry.rule != finding.rule:
            continue
        if not finding.path.replace(os.sep, "/").endswith(entry.path):
            continue
        if entry.symbol is not None:
            if (finding.symbol != entry.symbol
                    and not finding.symbol.startswith(entry.symbol + ".")):
                continue
        return True
    return False


def _validate_allowlist(entries: Sequence[AllowlistEntry]) -> None:
    for entry in entries:
        if not entry.justification.strip():
            raise ConfigurationError(
                f"allowlist entry {entry.rule} @ {entry.path} has no "
                "justification; every exception must explain itself"
            )


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()
    #: Findings removed by inline suppressions or the allowlist (kept so
    #: tooling can audit what the escape hatches are hiding).
    waived: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        """The stable ``--json`` schema (version 2).

        Version 2 is a strict superset of version 1: every v1 key keeps
        its meaning, and a ``counts`` object (total and per-rule
        finding/waiver counts) is added so dashboards do not have to
        re-aggregate.  :meth:`from_dict` accepts both versions.
        """
        by_rule: Dict[str, int] = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return {
            "version": 2,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": list(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "waived": [f.to_dict() for f in self.waived],
            "counts": {
                "findings": len(self.findings),
                "waived": len(self.waived),
                "by_rule": {rule: by_rule[rule]
                            for rule in sorted(by_rule)},
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LintReport":
        """Rebuild a report from a ``--json`` document (v1 or v2)."""
        version = payload.get("version")
        if version not in (1, 2):
            raise ConfigurationError(
                f"unsupported lint report version {version!r}; "
                "expected 1 or 2")
        def _finding(entry: dict) -> Finding:
            return Finding(rule=entry["rule"], path=entry["path"],
                           line=entry["line"], col=entry["col"],
                           message=entry["message"],
                           symbol=entry.get("symbol", "<module>"))
        return cls(
            findings=[_finding(e) for e in payload.get("findings", [])],
            files_checked=payload.get("files_checked", 0),
            rules_run=tuple(payload.get("rules", ())),
            waived=[_finding(e) for e in payload.get("waived", [])],
        )

    def format_text(self) -> str:
        out = [finding.format() for finding in self.findings]
        summary = (f"{len(self.findings)} finding"
                   f"{'s' if len(self.findings) != 1 else ''} "
                   f"({len(self.waived)} waived) in "
                   f"{self.files_checked} files")
        out.append(summary)
        return "\n".join(out)


def discover_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs
                           if d not in ("__pycache__", ".git")]
                for name in sorted(names):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        elif path.endswith(".py") and os.path.isfile(path):
            found.append(path)
        else:
            raise ConfigurationError(
                f"lint target {path!r} is neither a directory nor a "
                ".py file")
    return sorted(dict.fromkeys(found))


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence[Rule]] = None,
                allowlist: Optional[Sequence[AllowlistEntry]] = None,
                ) -> LintReport:
    """Lint one in-memory source blob (the unit-test entry point).

    Whole-program rules see a one-file program, which is exactly what
    the planted-defect fixtures want.
    """
    active = list(rules) if rules is not None else default_rules()
    entries = ALLOWLIST if allowlist is None else list(allowlist)
    _validate_allowlist(entries)
    report = LintReport(rules_run=tuple(rule.id for rule in active))
    ctx = _lint_one(source, path, active, entries, report)
    if ctx is not None:
        _run_project_rules([ctx], active, entries, report,
                           {ctx.norm_path: _suppressions(ctx.lines)},
                           {ctx.norm_path})
    report.files_checked = 1
    _finish(report)
    return report


def run_lint(paths: Iterable[str],
             rules: Optional[Sequence[Rule]] = None,
             allowlist: Optional[Sequence[AllowlistEntry]] = None,
             project_scope: Optional[Iterable[str]] = None,
             ) -> LintReport:
    """Lint files and directories; returns a :class:`LintReport`.

    ``project_scope`` names extra files/directories the whole-program
    rules should parse *in addition to* ``paths`` (so ``--changed`` can
    lint a handful of files while the interprocedural passes still see
    the full package).  Findings are only ever reported against
    ``paths``.
    """
    active = list(rules) if rules is not None else default_rules()
    entries = ALLOWLIST if allowlist is None else list(allowlist)
    _validate_allowlist(entries)
    files = discover_files(paths)
    report = LintReport(rules_run=tuple(rule.id for rule in active))
    contexts: List[FileContext] = []
    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    for file_path in files:
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        ctx = _lint_one(source, file_path, active, entries, report)
        if ctx is not None:
            contexts.append(ctx)
            suppressions[ctx.norm_path] = _suppressions(ctx.lines)
    linted = {ctx.norm_path for ctx in contexts}
    if project_scope is not None:
        for file_path in discover_files(project_scope):
            norm = file_path.replace(os.sep, "/")
            if norm in linted:
                continue
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
            try:
                tree = ast.parse(source, filename=file_path)
            except SyntaxError:
                continue  # per-file linting of that file will report it
            ctx = FileContext(file_path, source, tree)
            contexts.append(ctx)
            suppressions[ctx.norm_path] = _suppressions(ctx.lines)
    _run_project_rules(contexts, active, entries, report, suppressions,
                       linted)
    report.files_checked = len(files)
    _finish(report)
    return report


def _lint_one(source: str, path: str, rules: Sequence[Rule],
              allowlist: Sequence[AllowlistEntry],
              report: LintReport) -> Optional[FileContext]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(Finding(
            rule="parse-error", path=path, line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}"))
        return None
    ctx = FileContext(path, source, tree)
    suppressed = _suppressions(ctx.lines)
    for rule in rules:
        if isinstance(rule, ProjectRule):
            continue
        if not rule.applies_to(ctx):
            continue
        for finding in rule.run(ctx):
            if finding.rule in suppressed.get(finding.line, ()):
                report.waived.append(finding)
            elif _allowlisted(finding, allowlist):
                report.waived.append(finding)
            else:
                report.findings.append(finding)
    return ctx


def _run_project_rules(contexts: Sequence[FileContext],
                       rules: Sequence[Rule],
                       allowlist: Sequence[AllowlistEntry],
                       report: LintReport,
                       suppressions: Dict[str, Dict[int, Set[str]]],
                       linted: Set[str]) -> None:
    """Run whole-program rules over every parsed file at once.

    Findings flow through the same per-line suppressions and allowlist
    as per-file findings, and are dropped unless they land in a file
    that was actually linted (``linted`` holds normalized paths) — a
    ``--changed`` run must not resurface findings in untouched files.
    """
    project_rules = [rule for rule in rules
                     if isinstance(rule, ProjectRule)]
    if not project_rules or not contexts:
        return
    from .symbols import build_index

    index = build_index((ctx.norm_path, ctx.tree) for ctx in contexts)
    for rule in project_rules:
        for finding in rule.run_project(index):
            norm = finding.path.replace(os.sep, "/")
            if norm not in linted:
                continue
            if finding.rule in suppressions.get(norm, {}).get(
                    finding.line, ()):
                report.waived.append(finding)
            elif _allowlisted(finding, allowlist):
                report.waived.append(finding)
            else:
                report.findings.append(finding)


def _finish(report: LintReport) -> None:
    key = lambda f: (f.path, f.line, f.col, f.rule)  # noqa: E731
    report.findings.sort(key=key)
    report.waived.sort(key=key)
