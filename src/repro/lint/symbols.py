"""Project-wide symbol table and call graph.

The per-file rules in :mod:`repro.lint.rules` see one module at a time;
the protocol-conformance passes (:mod:`repro.lint.msgflow`,
:mod:`repro.lint.taint`, :mod:`repro.lint.quorum`) need to see all of
``src/repro`` as *one program*: which class defines which method, which
helper a ``self._slot(...)`` call lands in, and where a message class
constructed in one module is dispatched in another.

:class:`ProjectIndex` is that view.  It is built once per lint run from
the already-parsed file contexts, and deliberately stays *syntactic*:
resolution follows the same precise-over-complete philosophy as the
rules — a ``self.m()`` call resolves through the lexical class hierarchy
(by base-class simple name within the project), a bare ``f()`` call
resolves to a module-level function of the same module, and anything
else (``self._owner.m()``, library calls) resolves to nothing rather
than to a guess.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_index",
]


class CallSite:
    """One call expression inside a function body."""

    __slots__ = ("name", "kind", "lineno", "node")

    def __init__(self, name: str, kind: str, lineno: int,
                 node: ast.Call) -> None:
        #: Trailing identifier of the callee (``a.b.c()`` -> ``c``).
        self.name = name
        #: ``"self"`` for ``self.m()``, ``"bare"`` for ``f()``,
        #: ``"attr"`` for any longer attribute chain (``self._owner.m()``).
        self.kind = kind
        self.lineno = lineno
        self.node = node


class FunctionInfo:
    """One function or method definition."""

    __slots__ = ("path", "qualname", "name", "class_name", "node",
                 "lineno", "calls")

    def __init__(self, path: str, qualname: str, name: str,
                 class_name: Optional[str], node: ast.FunctionDef) -> None:
        #: Normalized forward-slash path of the defining module.
        self.path = path
        #: ``Class.method`` or bare function name (matches the
        #: ``Finding.symbol`` convention used by the allowlist).
        self.qualname = qualname
        self.name = name
        self.class_name = class_name
        self.node = node
        self.lineno = node.lineno
        self.calls: List[CallSite] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.path}::{self.qualname}>"


class ClassInfo:
    """One class definition with its direct methods and base names."""

    __slots__ = ("path", "name", "bases", "methods", "node")

    def __init__(self, path: str, name: str, bases: Tuple[str, ...],
                 node: ast.ClassDef) -> None:
        self.path = path
        self.name = name
        #: Simple names of the declared bases (``BaseReplica``, not the
        #: full dotted path) — resolved against the project by name.
        self.bases = bases
        self.node = node
        self.methods: Dict[str, FunctionInfo] = {}


class ModuleInfo:
    """One parsed module."""

    __slots__ = ("path", "tree", "classes", "functions")

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        #: Classes defined at module level, in definition order.
        self.classes: Dict[str, ClassInfo] = {}
        #: Module-level functions, in definition order.
        self.functions: Dict[str, FunctionInfo] = {}


def _call_site(node: ast.Call) -> Optional[CallSite]:
    func = node.func
    if isinstance(func, ast.Name):
        return CallSite(func.id, "bare", node.lineno, node)
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name) and value.id == "self":
            return CallSite(func.attr, "self", node.lineno, node)
        return CallSite(func.attr, "attr", node.lineno, node)
    return None


def _collect_calls(fn: FunctionInfo) -> None:
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            site = _call_site(node)
            if site is not None:
                fn.calls.append(site)


def _base_name(base: ast.expr) -> Optional[str]:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Subscript):  # Generic[...] style bases
        return _base_name(base.value)
    return None


class ProjectIndex:
    """Whole-program symbol table over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: Class simple name -> definitions (definition order; protocol
        #: code never reuses a class name, but we keep all of them).
        self.classes: Dict[str, List[ClassInfo]] = {}
        #: ``(path, qualname)`` -> function.
        self.functions: Dict[Tuple[str, str], FunctionInfo] = {}
        #: Every identifier that appears in a *load* position anywhere
        #: in the project (names and attribute accesses).  A function
        #: whose name never appears here is unreachable.
        self.referenced_names: Set[str] = set()

    # -- construction --------------------------------------------------
    def add_module(self, path: str, tree: ast.Module) -> None:
        module = ModuleInfo(path, tree)
        self.modules[path] = module
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                bases = tuple(
                    name for name in
                    (_base_name(base) for base in stmt.bases)
                    if name is not None
                )
                cls = ClassInfo(path, stmt.name, bases, stmt)
                module.classes[stmt.name] = cls
                self.classes.setdefault(stmt.name, []).append(cls)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        fn = FunctionInfo(path, f"{stmt.name}.{sub.name}",
                                          sub.name, stmt.name, sub)
                        cls.methods[sub.name] = fn
                        self.functions[(path, fn.qualname)] = fn
                        _collect_calls(fn)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(path, stmt.name, stmt.name, None, stmt)
                module.functions[stmt.name] = fn
                self.functions[(path, stmt.name)] = fn
                _collect_calls(fn)
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                self.referenced_names.add(node.attr)
            elif isinstance(node, ast.Name) and isinstance(node.ctx,
                                                           ast.Load):
                self.referenced_names.add(node.id)

    # -- queries -------------------------------------------------------
    def modules_matching(self, suffixes: Iterable[str]) -> List[ModuleInfo]:
        """Modules whose normalized path ends with one of ``suffixes``,
        in sorted path order."""
        wanted = tuple(suffixes)
        return [self.modules[path] for path in sorted(self.modules)
                if any(path.endswith(suffix) for suffix in wanted)]

    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.class_name is None:
            return None
        module = self.modules.get(fn.path)
        if module is not None and fn.class_name in module.classes:
            return module.classes[fn.class_name]
        return None

    def resolve_self_call(self, caller: FunctionInfo,
                          method: str) -> Optional[FunctionInfo]:
        """``self.method()`` inside ``caller`` -> the method definition,
        following lexical bases by simple name within the project."""
        cls = self.class_of(caller)
        seen: Set[str] = set()
        while cls is not None:
            if method in cls.methods:
                return cls.methods[method]
            seen.add(cls.name)
            parent: Optional[ClassInfo] = None
            for base in cls.bases:
                if base in seen:
                    continue
                candidates = self.classes.get(base)
                if candidates:
                    parent = candidates[0]
                    break
            cls = parent
        return None

    def resolve_bare_call(self, caller: FunctionInfo,
                          name: str) -> Optional[FunctionInfo]:
        """``name()`` inside ``caller`` -> a module-level function of the
        same module, if one exists."""
        module = self.modules.get(caller.path)
        if module is not None:
            return module.functions.get(name)
        return None

    def iter_functions(self, suffixes: Iterable[str]
                       ) -> Iterable[FunctionInfo]:
        """All functions of the modules matching ``suffixes``, in
        (path, line) order."""
        for module in self.modules_matching(suffixes):
            infos = [fn for (path, _), fn in self.functions.items()
                     if path == module.path]
            for fn in sorted(infos, key=lambda f: f.lineno):
                yield fn


def build_index(files: Iterable[Tuple[str, ast.Module]]) -> ProjectIndex:
    """Build a :class:`ProjectIndex` from ``(norm_path, tree)`` pairs."""
    index = ProjectIndex()
    for path, tree in files:
        index.add_module(path, tree)
    return index
