"""Message-flow graph extraction and conformance rules.

For each protocol named in :mod:`repro.lint.specs` this module builds
the **message-flow graph**: message class → construction sites (with
their fan-out classification) → dispatch sites (``isinstance`` ladders)
→ annotated ``_on_*``/``handle*`` consumers.  Three whole-program rules
check the graph:

* ``flow-orphan-message`` — a message is constructed and put on the
  wire inside a protocol's scope but nothing in that scope dispatches
  or handles it;
* ``flow-dead-handler`` — a message-annotated handler exists but its
  name is never referenced anywhere in the program;
* ``flow-spec-divergence`` — the extracted producers/consumers/fan-out
  of a message differ from the declarative spec table.

The same graph powers ``repro lint --flow-report`` / ``--flow-dot`` and
the committed per-protocol goldens in ``tests/golden/``.
"""

from __future__ import annotations

import ast
from typing import (TYPE_CHECKING, Dict, List, Optional, Sequence, Set,
                    Tuple)

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Finding

from .rules import ProjectRule
from .specs import (MESSAGE_MODULES, PROTOCOL_SPECS, MessageSpec,
                    ProtocolSpec)
from .symbols import ClassInfo, FunctionInfo, ProjectIndex

__all__ = [
    "FlowDeadHandler",
    "FlowOrphanMessage",
    "FlowSpecDivergence",
    "MessageFlow",
    "ProtocolFlow",
    "extract_flows",
    "flow_dot",
    "flow_report",
]

#: Base class marking a wire message.
_MESSAGE_BASE = "CachedEncodable"

#: Fan-out kinds that mean the message actually leaves the replica.
WIRE_KINDS = frozenset({"broadcast", "multi-unicast", "unicast",
                        "scheduled"})

_BROADCASTERS = {"broadcast", "multicast", "_multicast_distinct"}
_SENDERS = {"send", "send_at"}
_SCHEDULERS = {"post", "post_group", "schedule", "schedule_at"}


class MessageFlow:
    """Extracted flow of one message class within one protocol scope."""

    __slots__ = ("name", "constructed_in", "fanout", "dispatched_in",
                 "handled_in", "sites", "handler_sites")

    def __init__(self, name: str) -> None:
        self.name = name
        self.constructed_in: Set[str] = set()
        self.fanout: Set[str] = set()
        self.dispatched_in: Set[str] = set()
        self.handled_in: Set[str] = set()
        #: qualname -> (path, first construction line) for findings.
        self.sites: Dict[str, Tuple[str, int]] = {}
        #: handler qualname -> (path, def line).
        self.handler_sites: Dict[str, Tuple[str, int]] = {}

    def to_dict(self) -> Dict[str, List[str]]:
        """Golden/JSON shape: stable names only, no line numbers."""
        return {
            "constructed_in": sorted(self.constructed_in),
            "fanout": sorted(self.fanout),
            "dispatched_in": sorted(self.dispatched_in),
            "handled_in": sorted(self.handled_in),
        }

    def first_site(self) -> Optional[Tuple[str, int, str]]:
        """``(path, line, qualname)`` of the earliest construction."""
        best: Optional[Tuple[str, int, str]] = None
        for qualname, (path, line) in self.sites.items():
            key = (path, line, qualname)
            if best is None or key < best:
                best = key
        return best


class ProtocolFlow:
    """The per-protocol message-flow graph."""

    __slots__ = ("spec", "messages")

    def __init__(self, spec: ProtocolSpec) -> None:
        self.spec = spec
        self.messages: Dict[str, MessageFlow] = {}

    def flow(self, name: str) -> MessageFlow:
        entry = self.messages.get(name)
        if entry is None:
            entry = self.messages[name] = MessageFlow(name)
        return entry

    def to_dict(self) -> Dict[str, object]:
        return {
            "phases": list(self.spec.phases),
            "messages": {name: self.messages[name].to_dict()
                         for name in sorted(self.messages)},
        }


def message_classes(index: ProjectIndex,
                    message_modules: Sequence[str]) -> Dict[str, ClassInfo]:
    """Wire message classes (CachedEncodable subclasses) by name."""
    found: Dict[str, ClassInfo] = {}
    for module in index.modules_matching(message_modules):
        for name, cls in module.classes.items():
            if _MESSAGE_BASE in cls.bases:
                found[name] = cls
    return found


def _parent_map(root: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _in_loop(node: ast.AST, parents: Dict[int, ast.AST]) -> bool:
    current: Optional[ast.AST] = parents.get(id(node))
    while current is not None and not isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef)):
        if isinstance(current, (ast.For, ast.While)):
            return True
        current = parents.get(id(current))
    return False


def _classify_call(call: ast.Call, parents: Dict[int, ast.AST],
                   messages: Dict[str, ClassInfo]) -> str:
    name = _call_name(call)
    if name in _BROADCASTERS:
        return "broadcast"
    if name in _SENDERS:
        return "multi-unicast" if _in_loop(call, parents) else "unicast"
    if name in _SCHEDULERS:
        return "scheduled"
    if name in messages:
        return "embedded"
    return "local"


def _enclosing_call(node: ast.AST, parents: Dict[int, ast.AST]
                    ) -> Optional[ast.Call]:
    """The call this expression is an argument of, seen through
    keywords, starred args, and container literals."""
    current = parents.get(id(node))
    child: ast.AST = node
    while isinstance(current, (ast.keyword, ast.Starred, ast.Tuple,
                               ast.List)):
        child = current
        current = parents.get(id(current))
    if isinstance(current, ast.Call) and current.func is not child:
        return current
    return None


def _uses_of_name(fn_node: ast.AST, name: str,
                  parents: Dict[int, ast.AST]) -> List[ast.AST]:
    """Calls (and returns) that take the local ``name`` as an argument."""
    uses: List[ast.AST] = []
    for node in ast.walk(fn_node):
        if (isinstance(node, ast.Name) and node.id == name
                and isinstance(node.ctx, ast.Load)):
            call = _enclosing_call(node, parents)
            if call is not None:
                uses.append(call)
                continue
            current = parents.get(id(node))
            if isinstance(current, ast.Return):
                uses.append(current)
    return uses


def _fanout_kinds(construction: ast.Call, fn: FunctionInfo,
                  parents: Dict[int, ast.AST],
                  messages: Dict[str, ClassInfo]) -> Set[str]:
    """How one constructed message leaves (or doesn't) its function."""
    kinds: Set[str] = set()
    call = _enclosing_call(construction, parents)
    if call is not None:
        kinds.add(_classify_call(call, parents, messages))
        return kinds
    parent = parents.get(id(construction))
    if isinstance(parent, ast.Return):
        return {"returned"}
    target: Optional[str] = None
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        if isinstance(parent.targets[0], ast.Name):
            target = parent.targets[0].id
    elif isinstance(parent, ast.AnnAssign):
        if isinstance(parent.target, ast.Name):
            target = parent.target.id
    if target is not None:
        for use in _uses_of_name(fn.node, target, parents):
            if isinstance(use, ast.Call):
                kinds.add(_classify_call(use, parents, messages))
            elif isinstance(use, ast.Return):
                kinds.add("returned")
    if not kinds:
        kinds.add("local")
    return kinds


def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str):
        return annotation.value.rsplit(".", 1)[-1]
    return None


def _is_handler(fn: FunctionInfo) -> bool:
    return fn.name.startswith("_on_") or fn.name.startswith("handle")


def _handler_message(fn: FunctionInfo,
                     messages: Dict[str, ClassInfo]) -> Optional[str]:
    """Message class named by the handler's first annotated parameter."""
    for arg in fn.node.args.args:
        if arg.arg == "self":
            continue
        name = _annotation_name(arg.annotation)
        if name in messages:
            return name
    return None


def _isinstance_targets(fn: FunctionInfo,
                        messages: Dict[str, ClassInfo]) -> Set[str]:
    """Message classes this function type-tests (dispatch site)."""
    found: Set[str] = set()
    for node in ast.walk(fn.node):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2):
            check = node.args[1]
            names = check.elts if isinstance(check, ast.Tuple) else [check]
            for name_node in names:
                if (isinstance(name_node, ast.Name)
                        and name_node.id in messages):
                    found.add(name_node.id)
        elif isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Is, ast.Eq)):
                    for cand in (node.left, comparator):
                        if (isinstance(cand, ast.Name)
                                and cand.id in messages):
                            found.add(cand.id)
    return found


def extract_flows(index: ProjectIndex,
                  protocol_specs: Sequence[ProtocolSpec] = PROTOCOL_SPECS,
                  message_modules: Sequence[str] = MESSAGE_MODULES,
                  ) -> Dict[str, ProtocolFlow]:
    """Build the per-protocol message-flow graphs."""
    messages = message_classes(index, message_modules)
    flows: Dict[str, ProtocolFlow] = {}
    for spec in protocol_specs:
        flow = flows[spec.name] = ProtocolFlow(spec)
        for fn in index.iter_functions(spec.modules):
            parents = _parent_map(fn.node)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                if name not in messages:
                    continue
                # Only direct constructions: Name or Attribute callee
                # whose trailing identifier is the class.
                entry = flow.flow(name)
                entry.constructed_in.add(fn.qualname)
                entry.sites.setdefault(fn.qualname, (fn.path, node.lineno))
                entry.fanout.update(
                    _fanout_kinds(node, fn, parents, messages))
            handled = _handler_message(fn, messages)
            if handled is not None and _is_handler(fn):
                entry = flow.flow(handled)
                entry.handled_in.add(fn.qualname)
                entry.handler_sites.setdefault(
                    fn.qualname, (fn.path, fn.lineno))
            for dispatched in _isinstance_targets(fn, messages):
                flow.flow(dispatched).dispatched_in.add(fn.qualname)
    return flows


def flow_report(flows: Dict[str, ProtocolFlow]) -> Dict[str, object]:
    """The ``--flow-report`` JSON document (schema version 1)."""
    return {
        "version": 1,
        "protocols": {name: flows[name].to_dict()
                      for name in sorted(flows)},
    }


def flow_dot(flows: Dict[str, ProtocolFlow]) -> str:
    """GraphViz DOT rendering: one cluster per protocol, message nodes
    between producer and consumer function nodes."""
    out: List[str] = ["digraph msgflow {", "  rankdir=LR;",
                      '  node [fontsize=10, fontname="Helvetica"];']
    for p_idx, name in enumerate(sorted(flows)):
        flow = flows[name]
        out.append(f"  subgraph cluster_{p_idx} {{")
        out.append(f'    label="{name}";')
        seen_nodes: Set[str] = set()

        def node_id(kind: str, label: str, idx: int = p_idx) -> str:
            ident = (f"{kind}_{idx}_"
                     + "".join(c if c.isalnum() else "_" for c in label))
            if ident not in seen_nodes:
                seen_nodes.add(ident)
                shape = "box" if kind == "m" else "ellipse"
                out.append(f'    {ident} [label="{label}", shape={shape}];')
            return ident

        for msg_name in sorted(flow.messages):
            entry = flow.messages[msg_name]
            msg_node = node_id("m", msg_name)
            for producer in sorted(entry.constructed_in):
                src = node_id("f", producer)
                fanout = ",".join(sorted(entry.fanout & WIRE_KINDS))
                label = f' [label="{fanout}"]' if fanout else ""
                out.append(f"    {src} -> {msg_node}{label};")
            for consumer in sorted(entry.handled_in):
                dst = node_id("f", consumer)
                out.append(f"    {msg_node} -> {dst};")
        out.append("  }")
    out.append("}")
    return "\n".join(out) + "\n"


class _FlowRule(ProjectRule):
    """Shared constructor: spec tables are injectable for fixtures."""

    def __init__(self,
                 protocol_specs: Optional[Sequence[ProtocolSpec]] = None,
                 message_modules: Optional[Sequence[str]] = None) -> None:
        super().__init__()
        self._specs = (tuple(protocol_specs) if protocol_specs is not None
                       else PROTOCOL_SPECS)
        self._message_modules = (tuple(message_modules)
                                 if message_modules is not None
                                 else MESSAGE_MODULES)


class FlowOrphanMessage(_FlowRule):
    """Wire messages without a consumer are protocol dead ends."""

    id = "flow-orphan-message"
    summary = "every message put on the wire needs a dispatch/handler edge"
    rationale = (
        "A message class that is constructed and sent inside a "
        "protocol's scope but never dispatched or handled there is "
        "either dead weight on the network or — worse — a protocol "
        "step whose receiving half was never wired up, which no "
        "single-file rule can see.  Each protocol's flow graph must "
        "route every wire message to at least one consumer."
    )

    def run_project(self, project: ProjectIndex) -> List["Finding"]:
        self._findings = []
        flows = extract_flows(project, self._specs, self._message_modules)
        for name in sorted(flows):
            flow = flows[name]
            for msg_name in sorted(flow.messages):
                entry = flow.messages[msg_name]
                if not entry.constructed_in:
                    continue
                if not entry.fanout & WIRE_KINDS:
                    continue
                if entry.handled_in or entry.dispatched_in:
                    continue
                declared = flow.spec.message(msg_name)
                if declared is not None and declared.external:
                    # Mode-gated: the consumer exists outside this
                    # protocol's static scope (see MessageSpec.external).
                    continue
                site = entry.first_site()
                assert site is not None
                path, line, qualname = site
                self.emit(path, line, 0, qualname,
                          f"message {msg_name} is sent in protocol "
                          f"{name} (fan-out "
                          f"{', '.join(sorted(entry.fanout & WIRE_KINDS))})"
                          " but nothing in the protocol's scope "
                          "dispatches or handles it")
        return self._findings


class FlowDeadHandler(_FlowRule):
    """Handlers nobody can reach guard nothing."""

    id = "flow-dead-handler"
    summary = "message handlers must be reachable from a dispatch site"
    rationale = (
        "An _on_*/handle* method annotated with a message class but "
        "never referenced anywhere in the program is dead protocol "
        "surface: the dispatch ladder was edited without it, so the "
        "messages it was written for are silently dropped.  Either "
        "wire it into the dispatcher or delete it."
    )

    def run_project(self, project: ProjectIndex) -> List["Finding"]:
        self._findings = []
        messages = message_classes(project, self._message_modules)
        scopes: List[str] = []
        for spec in self._specs:
            for suffix in spec.modules:
                if suffix not in scopes:
                    scopes.append(suffix)
        for fn in project.iter_functions(scopes):
            if not _is_handler(fn):
                continue
            if _handler_message(fn, messages) is None:
                continue
            if fn.name in project.referenced_names:
                continue
            self.emit(fn.path, fn.lineno, 0, fn.qualname,
                      f"handler {fn.qualname} is annotated for "
                      f"{_handler_message(fn, messages)} but its name is "
                      "never referenced; no dispatcher can reach it")
        return self._findings


def _divergence(expected: Sequence[str], actual: Set[str],
                what: str) -> Optional[str]:
    missing = sorted(set(expected) - actual)
    extra = sorted(actual - set(expected))
    parts = []
    if missing:
        parts.append(f"missing {what}: {', '.join(missing)}")
    if extra:
        parts.append(f"undeclared {what}: {', '.join(extra)}")
    return "; ".join(parts) if parts else None


class FlowSpecDivergence(_FlowRule):
    """The extracted flow graph must match the declared spec table."""

    id = "flow-spec-divergence"
    summary = "message producers/consumers/fan-out must match specs.py"
    rationale = (
        "The spec table in repro/lint/specs.py is the reviewed, "
        "per-protocol contract: which sites may construct each "
        "message, who must consume it, and how it fans out (e.g. "
        "GlobalShare goes to f+1 replicas per remote cluster).  Any "
        "edge the extractor sees that the table does not declare — or "
        "vice versa — is implementation drift from the protocol spec "
        "and must be either fixed or re-declared in review."
    )

    def run_project(self, project: ProjectIndex) -> List["Finding"]:
        self._findings = []
        flows = extract_flows(project, self._specs, self._message_modules)
        for spec in self._specs:
            flow = flows[spec.name]
            anchor = self._anchor(project, spec)
            for msg_spec in spec.messages:
                entry = flow.messages.get(msg_spec.name)
                if entry is None or not (entry.constructed_in
                                         or entry.handled_in
                                         or entry.dispatched_in):
                    self.emit(anchor[0], anchor[1], 0, "<module>",
                              f"protocol {spec.name}: spec declares "
                              f"message {msg_spec.name} "
                              f"({msg_spec.phase}) but it never appears "
                              "in the protocol's scope")
                    continue
                self._check_entry(spec, msg_spec, entry, anchor)
            declared = {m.name for m in spec.messages}
            for msg_name in sorted(flow.messages):
                if msg_name in declared:
                    continue
                entry = flow.messages[msg_name]
                site = entry.first_site()
                if site is not None:
                    path, line, qualname = site
                elif entry.handler_sites:
                    qualname = sorted(entry.handler_sites)[0]
                    path, line = entry.handler_sites[qualname]
                else:
                    continue  # dispatch-only sighting: no stable anchor
                self.emit(path, line, 0, qualname,
                          f"protocol {spec.name}: message {msg_name} "
                          "appears in the protocol's scope but is not "
                          "declared in its spec table")
        return self._findings

    def _anchor(self, project: ProjectIndex,
                spec: ProtocolSpec) -> Tuple[str, int]:
        modules = project.modules_matching(spec.modules)
        if modules:
            return modules[0].path, 1
        return f"<{spec.name}>", 1

    def _check_entry(self, spec: ProtocolSpec, msg_spec: MessageSpec,
                     entry: MessageFlow, anchor: Tuple[str, int]) -> None:
        site = entry.first_site()
        if site is not None:
            path, line, symbol = site
        else:
            path, line = anchor
            symbol = "<module>"
        problems = [
            _divergence(msg_spec.producers, entry.constructed_in,
                        "producers"),
            _divergence(msg_spec.consumers, entry.handled_in, "consumers"),
            _divergence(msg_spec.fanout, entry.fanout, "fan-out"),
        ]
        for problem in problems:
            if problem is not None:
                self.emit(path, line, 0, symbol,
                          f"protocol {spec.name}: message {msg_spec.name} "
                          f"diverges from its spec — {problem}")

