"""``repro lint`` — static analysis for the repo's determinism contracts.

Every guarantee this reproduction makes — byte-identical
``deployment_digest`` values across seeds and engine overhauls, GeoBFT
safety under chaos timelines — rests on contracts that no unit test
states explicitly: simulated code never reads the wall clock, all
randomness flows through injected seeded generators, nothing unordered
feeds the event queue, hot-path message classes stay slotted, and
protocol handlers verify before they mutate.  This package turns those
contracts into machine-checked rules, the way deterministic-simulation
shops (FoundationDB and descendants) lint their sim code.

On top of the per-file rules, the interprocedural layer parses the
whole package as one program (:mod:`repro.lint.symbols`) and checks it
against the declarative per-protocol tables in
:mod:`repro.lint.specs`: the message-flow graph
(:mod:`repro.lint.msgflow`), helper-delegated verify ordering
(:mod:`repro.lint.taint`), and quorum arithmetic
(:mod:`repro.lint.quorum`).

Public surface:

* :func:`run_lint` / :class:`LintReport` — run the rule engine over
  files or directories and collect :class:`Finding` objects.
* :data:`~repro.lint.rules.RULES` / :func:`default_rules` — the rule
  catalogue (see ``docs/static_analysis.md``).
* :data:`~repro.lint.allowlist.ALLOWLIST` — the committed allowlist of
  justified exceptions.
* :func:`~repro.lint.msgflow.extract_flows` /
  :func:`~repro.lint.msgflow.flow_report` /
  :func:`~repro.lint.msgflow.flow_dot` — the message-flow graph behind
  ``repro lint --flow-report`` / ``--flow-dot`` and the committed
  goldens in ``tests/golden/``.

Suppressions: append ``# repro: allow[rule-id] <reason>`` to the
flagged line (or put it on its own line directly above).  Allowlist
entries live in :mod:`repro.lint.allowlist` and must carry a
justification; an empty justification is a configuration error.
"""

from __future__ import annotations

from .allowlist import ALLOWLIST, AllowlistEntry
from .engine import Finding, LintReport, run_lint
from .msgflow import extract_flows, flow_dot, flow_report
from .rules import RULES, ProjectRule, Rule, default_rules, rule_ids
from .specs import PROTOCOL_SPECS, MessageSpec, ProtocolSpec
from .symbols import ProjectIndex, build_index

__all__ = [
    "ALLOWLIST",
    "AllowlistEntry",
    "Finding",
    "LintReport",
    "MessageSpec",
    "PROTOCOL_SPECS",
    "ProjectIndex",
    "ProjectRule",
    "ProtocolSpec",
    "RULES",
    "Rule",
    "build_index",
    "default_rules",
    "extract_flows",
    "flow_dot",
    "flow_report",
    "rule_ids",
    "run_lint",
]
