"""``repro lint`` — static analysis for the repo's determinism contracts.

Every guarantee this reproduction makes — byte-identical
``deployment_digest`` values across seeds and engine overhauls, GeoBFT
safety under chaos timelines — rests on contracts that no unit test
states explicitly: simulated code never reads the wall clock, all
randomness flows through injected seeded generators, nothing unordered
feeds the event queue, hot-path message classes stay slotted, and
protocol handlers verify before they mutate.  This package turns those
contracts into machine-checked rules, the way deterministic-simulation
shops (FoundationDB and descendants) lint their sim code.

Public surface:

* :func:`run_lint` / :class:`LintReport` — run the rule engine over
  files or directories and collect :class:`Finding` objects.
* :data:`~repro.lint.rules.RULES` / :func:`default_rules` — the rule
  catalogue (see ``docs/static_analysis.md``).
* :data:`~repro.lint.allowlist.ALLOWLIST` — the committed allowlist of
  justified exceptions.

Suppressions: append ``# repro: allow[rule-id] <reason>`` to the
flagged line (or put it on its own line directly above).  Allowlist
entries live in :mod:`repro.lint.allowlist` and must carry a
justification; an empty justification is a configuration error.
"""

from __future__ import annotations

from .allowlist import ALLOWLIST, AllowlistEntry
from .engine import Finding, LintReport, run_lint
from .rules import RULES, Rule, default_rules, rule_ids

__all__ = [
    "ALLOWLIST",
    "AllowlistEntry",
    "Finding",
    "LintReport",
    "RULES",
    "Rule",
    "default_rules",
    "rule_ids",
    "run_lint",
]
