"""Quorum-arithmetic checking: thresholds must reduce to declared forms.

Every safety argument in the five protocols hangs on three numbers —
``n - f`` (intersection quorums), ``2f + 1`` (Zyzzyva commit
certificates), and ``f + 1`` (at-least-one-honest) — plus the bounded
``all-n`` fast path and the threshold-scheme parameter ``k``.  This
pass finds every comparison whose one side counts votes (a ``len(...)``
of a vote-ish collection, or a vote counter such as
``slot.prepared_count``) and requires the other side to *reduce* to one
of the quorum classes its module declares in
:data:`repro.lint.specs.QUORUM_MODULE_CLASSES`.

Reduction follows local assignments (``need = 2 * self._f + 1``) and
``self._quorum``-style attribute declarations to their defining
expression, recognizes ``max_faulty(...)``/``self._remote_f(...)`` as
``f``-terms and ``len(members)``/``self._n`` as ``n``-terms, and treats
formal parameters named ``*quorum*`` as caller-declared.  Two findings
fall out: a comparison against a magic number or unreducible
expression, and an off-by-one ``f`` comparison (``>= f`` admits ``f``
votes where the join rule needs ``f + 1``).
"""

from __future__ import annotations

import ast
from typing import (TYPE_CHECKING, Dict, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from .rules import ProjectRule
from .specs import QUORUM_MODULE_CLASSES
from .symbols import FunctionInfo, ProjectIndex

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Finding

__all__ = ["QuorumArithmetic"]

#: Collections whose length is a vote/signer count.
_VOTE_COLLECTIONS = frozenset({
    "commits", "prepares", "prepared_by", "votes", "voters", "signers",
    "signatures", "responses", "acks", "shares", "replies", "best",
    "group", "matching", "view_change_replicas",
})

#: Attribute/name counters holding an already-counted quorum.
_VOTE_COUNTERS = frozenset({
    "prepared_count", "commit_count", "verified", "_verified_quorum",
})

_N_NAMES = frozenset({"n", "_n"})
_F_NAMES = frozenset({"f", "_f", "f_remote", "remote_f"})
_F_CALLS = frozenset({"max_faulty", "_remote_f"})
_QUORUM_NAME_MARKER = "quorum"


def _trailing_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_count_expr(node: ast.expr) -> bool:
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "len" and len(node.args) == 1):
        name = _trailing_name(node.args[0])
        return name in _VOTE_COLLECTIONS
    name = _trailing_name(node)
    return name in _VOTE_COUNTERS


class _Env:
    """Name-resolution context for one function."""

    __slots__ = ("locals", "params", "attrs")

    def __init__(self, locals_: Mapping[str, ast.expr],
                 params: Set[str],
                 attrs: Mapping[str, ast.expr]) -> None:
        #: Local name -> assigned expression.
        self.locals = dict(locals_)
        #: Formal parameter names.
        self.params = set(params)
        #: ``self.X`` attribute -> expression from the enclosing class.
        self.attrs = dict(attrs)


def _is_f_term(node: ast.expr, env: _Env, depth: int = 0) -> bool:
    name = _trailing_name(node)
    if name in _F_NAMES:
        return True
    if isinstance(node, ast.Call):
        call_name = _trailing_name(node.func)
        if call_name in _F_CALLS:
            return True
    if (isinstance(node, ast.Name) and depth < 4
            and node.id in env.locals):
        return _is_f_term(env.locals[node.id], env, depth + 1)
    return False


def _is_n_term(node: ast.expr, env: _Env, depth: int = 0) -> bool:
    name = _trailing_name(node)
    if name in _N_NAMES:
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "len" and len(node.args) == 1):
        return True
    if (isinstance(node, ast.Name) and depth < 4
            and node.id in env.locals):
        return _is_n_term(env.locals[node.id], env, depth + 1)
    return False


def _classify(node: ast.expr, env: _Env,
              depth: int = 0) -> Optional[str]:
    """Reduce an expression to a quorum class, or ``None``."""
    if depth > 6:
        return None
    # Declared aliases: self._quorum / quorum locals / quorum params.
    name = _trailing_name(node)
    if name is not None and _QUORUM_NAME_MARKER in name:
        if isinstance(node, ast.Attribute) and name in env.attrs:
            return _classify(env.attrs[name], env, depth + 1)
        if isinstance(node, ast.Name):
            if node.id in env.locals:
                return _classify(env.locals[node.id], env, depth + 1)
            if node.id in env.params:
                return "param"
        # A quorum-named expression we cannot see the declaration of:
        # trust it only if a declaration exists somewhere in the class.
        return None
    if isinstance(node, ast.Name):
        if node.id in env.locals and depth < 6:
            return _classify(env.locals[node.id], env, depth + 1)
        if node.id in env.params and _QUORUM_NAME_MARKER in node.id:
            return "param"
    if _is_f_term(node, env):
        return "f"
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Sub):
            if (_is_n_term(node.left, env)
                    and _is_f_term(node.right, env)):
                return "n-f"
        elif isinstance(node.op, ast.Add):
            left, right = node.left, node.right
            for a, b in ((left, right), (right, left)):
                if isinstance(b, ast.Constant) and b.value == 1:
                    if _is_f_term(a, env):
                        return "f+1"
                    if _is_two_f(a, env):
                        return "2f+1"
    if _trailing_name(node) in _N_NAMES:
        return "all-n"
    if isinstance(node, ast.Attribute) and node.attr == "k":
        return "k"
    return None


def _is_two_f(node: ast.expr, env: _Env) -> bool:
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        left, right = node.left, node.right
        for a, b in ((left, right), (right, left)):
            if (isinstance(a, ast.Constant) and a.value == 2
                    and _is_f_term(b, env)):
                return True
    return False


def _mirror(op: ast.cmpop) -> ast.cmpop:
    table = {ast.Gt: ast.Lt, ast.Lt: ast.Gt,
             ast.GtE: ast.LtE, ast.LtE: ast.GtE}
    for src, dst in table.items():
        if isinstance(op, src):
            return dst()
    return op


def _collect_class_attrs(project: ProjectIndex,
                         fn: FunctionInfo) -> Dict[str, ast.expr]:
    """``self.X = expr`` bindings across the enclosing class (quorum
    declarations usually live in ``__init__``)."""
    cls = project.class_of(fn)
    attrs: Dict[str, ast.expr] = {}
    if cls is None:
        return attrs
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr not in attrs):
                    attrs[target.attr] = node.value
    return attrs


def _collect_locals(fn: FunctionInfo) -> Dict[str, ast.expr]:
    env: Dict[str, ast.expr] = {}
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id not in env:
                env[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if (isinstance(node.target, ast.Name)
                    and node.target.id not in env):
                env[node.target.id] = node.value
    return env


class QuorumArithmetic(ProjectRule):
    """Threshold comparisons must reduce to declared quorum forms."""

    id = "quorum-arithmetic"
    summary = ("vote-count comparisons must reduce to n-f / 2f+1 / f+1 "
               "for their protocol")
    rationale = (
        "PBFT-family safety is quorum arithmetic: n-f intersection "
        "quorums, 2f+1 commit certificates, f+1 at-least-one-honest "
        "sets.  A threshold written as a magic number (or drifted to "
        "the wrong class for its protocol layer — RCanopus shows how "
        "fast hierarchical designs diverge here) silently weakens the "
        "fault bound.  Every comparison against a vote count must "
        "reduce to a quorum expression its module declares, and bare-f "
        "comparisons must be strict (>= f admits f votes where the "
        "join rule needs f+1)."
    )

    def __init__(self,
                 module_classes: Optional[Mapping[str, Tuple[str, ...]]]
                 = None) -> None:
        super().__init__()
        self._module_classes = (dict(module_classes)
                                if module_classes is not None
                                else dict(QUORUM_MODULE_CLASSES))

    def _allowed_for(self, path: str) -> Optional[Tuple[str, ...]]:
        for suffix, allowed in self._module_classes.items():
            if path.endswith(suffix):
                return allowed
        return None

    def run_project(self, project: ProjectIndex) -> List["Finding"]:
        self._findings = []
        suffixes = tuple(self._module_classes)
        for fn in project.iter_functions(suffixes):
            allowed = self._allowed_for(fn.path)
            if allowed is None:  # pragma: no cover - defensive
                continue
            env = _Env(_collect_locals(fn),
                       {arg.arg for arg in fn.node.args.args},
                       _collect_class_attrs(project, fn))
            self._check_declarations(fn, env, allowed)
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Compare) and len(node.ops) == 1:
                    self._check_compare(fn, node, env, allowed)
        return self._findings

    def _check_declarations(self, fn: FunctionInfo, env: _Env,
                            allowed: Sequence[str]) -> None:
        """Assignments to quorum-named targets must themselves reduce."""
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1):
                continue
            name = _trailing_name(node.targets[0])
            if name is None or _QUORUM_NAME_MARKER not in name:
                continue
            cls = _classify(node.value, env)
            if cls is None and isinstance(node.value, ast.Name) \
                    and node.value.id in env.params:
                cls = "param"
            if cls is None:
                self.emit(fn.path, node.lineno, node.col_offset,
                          fn.qualname,
                          f"quorum declaration {name!r} does not reduce "
                          "to a declared quorum expression "
                          "(n-f, 2f+1, f+1, all-n, k)")
            elif cls not in allowed and not (cls == "f"
                                             and "f+1" in allowed):
                self.emit(fn.path, node.lineno, node.col_offset,
                          fn.qualname,
                          f"quorum declaration {name!r} has class "
                          f"{cls!r}, but this module declares only "
                          f"{', '.join(allowed)}")

    def _check_compare(self, fn: FunctionInfo, node: ast.Compare,
                       env: _Env, allowed: Sequence[str]) -> None:
        left, right = node.left, node.comparators[0]
        op = node.ops[0]
        if _is_count_expr(left):
            count, other = left, right
        elif _is_count_expr(right):
            count, other = right, left
            op = _mirror(op)
        else:
            return
        if _is_count_expr(other):
            return  # count-vs-count (e.g. monotonic memo update)
        cls = _classify(other, env)
        if cls is None:
            rendered = ast.unparse(other)
            self.emit(fn.path, node.lineno, node.col_offset, fn.qualname,
                      f"threshold comparison against {rendered!r} does "
                      "not reduce to a declared quorum expression "
                      "(n-f, 2f+1, f+1, all-n, k)")
            return
        if cls == "f":
            # Bare-f comparisons encode the f+1 class; they must be
            # strict so that exactly f votes never pass the join rule.
            if isinstance(op, (ast.Gt, ast.LtE)):
                cls = "f+1"
            else:
                self.emit(fn.path, node.lineno, node.col_offset,
                          fn.qualname,
                          "off-by-one threshold: comparing a vote count "
                          "non-strictly against f admits f votes where "
                          "the join rule needs f+1 (use > f or <= f)")
                return
        if cls == "param":
            if "param" in allowed:
                return
            self.emit(fn.path, node.lineno, node.col_offset, fn.qualname,
                      "threshold compares against a caller-supplied "
                      "quorum parameter, but this module does not "
                      "declare the 'param' quorum class")
            return
        if cls not in allowed:
            self.emit(fn.path, node.lineno, node.col_offset, fn.qualname,
                      f"threshold comparison has quorum class {cls!r}, "
                      f"but this module declares only "
                      f"{', '.join(allowed)}")
