"""The rule catalogue: one visitor class per contract.

Each rule is an :class:`ast.NodeVisitor` with an ``id``, a one-line
``summary``, and a ``rationale`` tying it to the determinism or protocol
contract it guards (see ``docs/static_analysis.md`` for the full
catalogue).  Rules collect :class:`~repro.lint.engine.Finding` objects
via :meth:`Rule.report`; the engine handles suppressions and the
allowlist, so rules themselves stay escape-hatch-free.

Adding a rule: subclass :class:`Rule`, implement ``visit_*`` methods,
and append the class to :data:`RULES`.  Keep rules *precise* over
*complete* — a rule that cries wolf gets suppressed wholesale and then
guards nothing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Type

# Imported lazily-typed to avoid an import cycle with engine.py (engine
# imports default_rules from here; Finding lives there).
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .engine import FileContext, Finding
    from .symbols import ProjectIndex


class Rule(ast.NodeVisitor):
    """Base class for lint rules.

    Subclasses set ``id``/``summary``/``rationale`` and implement
    ``visit_*`` methods that call :meth:`report`.  A fresh instance is
    used per engine run; per-file state must be reset in :meth:`run`.
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""

    def __init__(self) -> None:
        self._ctx: Optional["FileContext"] = None
        self._findings: List["Finding"] = []

    def applies_to(self, ctx: "FileContext") -> bool:
        """Whether this rule should run on ``ctx`` (default: every file)."""
        return True

    def run(self, ctx: "FileContext") -> List["Finding"]:
        """Visit the file's AST and return this rule's findings."""
        self._ctx = ctx
        self._findings = []
        self.begin_file(ctx)
        self.visit(ctx.tree)
        return self._findings

    def begin_file(self, ctx: "FileContext") -> None:
        """Per-file state reset hook (default: nothing)."""

    def report(self, node: ast.AST, message: str) -> None:
        from .engine import Finding

        ctx = self._ctx
        assert ctx is not None
        line = getattr(node, "lineno", 1)
        self._findings.append(Finding(
            rule=self.id, path=ctx.path, line=line,
            col=getattr(node, "col_offset", 0), message=message,
            symbol=ctx.symbol_at(line)))


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Unlike per-file rules, a :class:`ProjectRule` runs once per lint
    run against the :class:`~repro.lint.symbols.ProjectIndex` built
    from every parsed file, so it can follow call edges and message
    flows across modules.  Findings still pass through the same inline
    suppression and allowlist filters, keyed by the file each finding
    lands in.
    """

    def applies_to(self, ctx: "FileContext") -> bool:
        return False  # never runs in the per-file loop

    def run_project(self, project: "ProjectIndex") -> List["Finding"]:
        """Analyze the whole program; return findings."""
        raise NotImplementedError

    def emit(self, path: str, line: int, col: int, symbol: str,
             message: str) -> None:
        from .engine import Finding

        self._findings.append(Finding(
            rule=self.id, path=path, line=line, col=col,
            message=message, symbol=symbol))


def _root_name(node: ast.AST) -> Optional[str]:
    """The leftmost ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    """Trailing identifier of the called function (``a.b.c()`` -> c)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class _ImportTracker(Rule):
    """Shared machinery: resolve module aliases per file.

    ``import time as t`` and ``from time import monotonic as mono`` both
    need to be seen through, or a rename defeats the rule.  Tracks
    aliases for the modules each subclass cares about.
    """

    #: Module names the subclass wants aliases for.
    modules: Sequence[str] = ()

    def begin_file(self, ctx: "FileContext") -> None:
        #: local alias -> module name ("t" -> "time").
        self.module_aliases: Dict[str, str] = {}
        #: local name -> "module.attr" for from-imports.
        self.from_imports: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in self.modules:
                self.module_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in self.modules:
            for alias in node.names:
                local = alias.asname or alias.name
                self.from_imports[local] = f"{node.module}.{alias.name}"
            self.on_from_import(node)
        self.generic_visit(node)

    def on_from_import(self, node: ast.ImportFrom) -> None:
        """Hook for subclasses that flag from-imports themselves."""


class NoWallclock(_ImportTracker):
    """Ban host wall-clock reads inside simulated code."""

    id = "no-wallclock"
    summary = "no time.time()/monotonic()/datetime.now() in simulated code"
    rationale = (
        "The simulator owns virtual time; a wall-clock read inside "
        "simulated code makes results depend on host speed and breaks "
        "byte-identical replay.  Host-side calibration belongs in "
        "bench harnesses, behind an allowlist entry."
    )

    modules = ("time", "datetime")
    _TIME_FUNCS = {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
        "clock_gettime", "clock_gettime_ns",
    }
    _DATETIME_FUNCS = {"now", "utcnow", "today"}

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            # time.<func>() through a module alias.
            if (isinstance(value, ast.Name)
                    and self.module_aliases.get(value.id) == "time"
                    and func.attr in self._TIME_FUNCS):
                self.report(node, f"wall-clock read time.{func.attr}(); "
                                  "simulated code must use Simulation.now")
            # datetime.datetime.now() / datetime.date.today().
            elif func.attr in self._DATETIME_FUNCS:
                if (isinstance(value, ast.Attribute)
                        and isinstance(value.value, ast.Name)
                        and self.module_aliases.get(value.value.id)
                        == "datetime"
                        and value.attr in ("datetime", "date")):
                    self.report(node,
                                f"wall-clock read datetime.{value.attr}."
                                f"{func.attr}(); simulated code must use "
                                "Simulation.now")
                elif (isinstance(value, ast.Name)
                      and self.from_imports.get(value.id)
                      in ("datetime.datetime", "datetime.date")):
                    self.report(node,
                                f"wall-clock read "
                                f"{self.from_imports[value.id]}."
                                f"{func.attr}(); simulated code must use "
                                "Simulation.now")
        elif isinstance(func, ast.Name):
            target = self.from_imports.get(func.id)
            if (target is not None and target.startswith("time.")
                    and target.split(".", 1)[1] in self._TIME_FUNCS):
                self.report(node, f"wall-clock read {target}(); simulated "
                                  "code must use Simulation.now")
        self.generic_visit(node)


class NoUnseededRandom(_ImportTracker):
    """All randomness must flow through an injected seeded generator."""

    id = "no-unseeded-random"
    summary = "randomness must come from an injected, seeded random.Random"
    rationale = (
        "Module-level random functions share interpreter-global state "
        "seeded from the OS; secrets/uuid4/os.urandom are nondeterministic "
        "by design.  A run must be a pure function of its seed, so every "
        "draw goes through a random.Random constructed from the "
        "experiment seed and passed in."
    )

    modules = ("random", "secrets", "uuid", "os")
    #: The only attributes allowed on the random module: the seedable
    #: generator class itself.
    _RANDOM_OK = {"Random"}
    _UUID_BAD = {"uuid1", "uuid4"}

    def on_from_import(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in self._RANDOM_OK:
                    self.report(node,
                                f"from random import {alias.name} binds the "
                                "unseeded module-level generator; inject a "
                                "seeded random.Random instead")
        elif node.module == "secrets":
            self.report(node, "secrets is nondeterministic by design; "
                              "inject a seeded random.Random instead")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            module = self.module_aliases.get(func.value.id)
            if module == "random":
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        self.report(node,
                                    "random.Random() without a seed draws "
                                    "from OS entropy; pass the experiment "
                                    "seed")
                elif func.attr == "SystemRandom":
                    self.report(node, "random.SystemRandom is OS entropy; "
                                      "inject a seeded random.Random")
                else:
                    self.report(node,
                                f"random.{func.attr}() uses the unseeded "
                                "module-level generator; use an injected "
                                "seeded random.Random")
            elif module == "secrets":
                self.report(node, f"secrets.{func.attr}() is "
                                  "nondeterministic; use an injected "
                                  "seeded random.Random")
            elif module == "uuid" and func.attr in self._UUID_BAD:
                self.report(node, f"uuid.{func.attr}() is "
                                  "nondeterministic; derive ids from the "
                                  "experiment seed and a counter")
            elif module == "os" and func.attr == "urandom":
                self.report(node, "os.urandom() is OS entropy; use an "
                                  "injected seeded random.Random")
        elif isinstance(func, ast.Name):
            target = self.from_imports.get(func.id)
            if (target is not None and target.startswith("random.")
                    and target != "random.Random"):
                self.report(node, f"{target}() uses the unseeded "
                                  "module-level generator; use an injected "
                                  "seeded random.Random")
            elif target == "random.Random" and not node.args \
                    and not node.keywords:
                self.report(node, "Random() without a seed draws from OS "
                                  "entropy; pass the experiment seed")
        self.generic_visit(node)


#: Calls that feed the event queue or the network — the sinks whose
#: argument/iteration order becomes part of the simulated schedule.
_EVENT_SINKS = {
    "send", "multicast", "broadcast", "_multicast_distinct",
    "post", "post_group", "schedule", "schedule_at", "send_at",
}

#: Methods whose result has no deterministic cross-run order.
_FS_SOURCES = {"listdir", "scandir", "iterdir", "glob", "iglob", "rglob"}


class DeterministicIteration(Rule):
    """No unordered iteration may reach the event queue."""

    id = "deterministic-iteration"
    summary = "set iteration feeding sends/scheduling must be sorted()"
    rationale = (
        "Set iteration order depends on element hashes (and, for "
        "strings, on PYTHONHASHSEED); events posted from such a loop "
        "acquire hash-dependent sequence numbers and the deployment "
        "digest drifts between hosts.  Dict iteration is insertion-"
        "ordered and therefore deterministic — only genuinely unordered "
        "sources are flagged.  Wrap the iterable in sorted() with a "
        "stable key."
    )

    def _is_unordered(self, node: ast.AST,
                      local_sets: Dict[str, ast.AST]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in _FS_SOURCES:
                    return True
                # set algebra via methods: a.union(b), a.difference(b)...
                if func.attr in ("union", "intersection", "difference",
                                 "symmetric_difference"):
                    return self._is_unordered(func.value, local_sets)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (self._is_unordered(node.left, local_sets)
                    or self._is_unordered(node.right, local_sets))
        if isinstance(node, ast.Name):
            assigned = local_sets.get(node.id)
            if assigned is not None:
                return True
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def _check_function(self, func: ast.AST) -> None:
        # Pass 1: local names bound to set-valued expressions.
        local_sets: Dict[str, ast.AST] = {}
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if (isinstance(target, ast.Name)
                        and self._is_unordered(stmt.value, {})):
                    local_sets[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if (isinstance(stmt.target, ast.Name)
                        and self._is_unordered(stmt.value, {})):
                    local_sets[stmt.target.id] = stmt.value
        # Pass 2: loops over unordered iterables whose body hits a sink.
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.For):
                if (self._is_unordered(stmt.iter, local_sets)
                        and self._body_hits_sink(stmt.body)):
                    self.report(stmt.iter,
                                "iterating an unordered collection into "
                                "the event queue; wrap the iterable in "
                                "sorted() with a stable key")
            elif isinstance(stmt, ast.Call):
                name = _call_name(stmt)
                if name in ("multicast", "broadcast",
                            "_multicast_distinct"):
                    for arg in stmt.args:
                        if self._is_unordered(arg, local_sets):
                            self.report(arg,
                                        f"passing an unordered collection "
                                        f"to {name}(); destination order "
                                        "becomes part of the schedule — "
                                        "sort it first")

    def _body_hits_sink(self, body: List[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and _call_name(node) \
                        in _EVENT_SINKS:
                    return True
        return False


class NoIdentityOrdering(Rule):
    """``id()``/``hash()`` must not decide an order or a comparison."""

    id = "no-identity-ordering"
    summary = "no id()/hash() in sort keys or comparisons"
    rationale = (
        "id() is a heap address and hash() of an object defaults to a "
        "function of it; both vary per process, so any order derived "
        "from them is nondeterministic across runs.  Sort by a stable "
        "protocol key (node id string, sequence number) instead.  "
        "Identity used as a *memo key* (never ordered) is fine."
    )

    _SORTERS = {"sorted", "min", "max"}
    _IDENTITY = {"id", "hash"}

    def _uses_identity(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name) and node.id in self._IDENTITY:
            return node.id
        for child in ast.walk(node):
            if (isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Name)
                    and child.func.id in self._IDENTITY):
                return child.func.id
        return None

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        is_sorter = ((isinstance(node.func, ast.Name)
                      and name in self._SORTERS)
                     or (isinstance(node.func, ast.Attribute)
                         and name == "sort"))
        if is_sorter:
            for keyword in node.keywords:
                if keyword.arg == "key":
                    used = self._uses_identity(keyword.value)
                    if used is not None:
                        self.report(keyword.value,
                                    f"sort key uses {used}(); object "
                                    "identity varies per process — sort "
                                    "by a stable protocol key")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        for operand in [node.left, *node.comparators]:
            if (isinstance(operand, ast.Call)
                    and isinstance(operand.func, ast.Name)
                    and operand.func.id == "id"):
                self.report(node, "comparison on id(); object identity "
                                  "varies per process — compare stable "
                                  "protocol keys")
        self.generic_visit(node)


#: Modules whose classes carry the PR-4 slots contract: message objects
#: and simulator hot-loop state must never grow a __dict__.
_SLOTS_MODULES = (
    "repro/consensus/messages.py",
    "repro/net/simulator.py",
    "repro/net/network.py",
)


class SlotsCoverage(Rule):
    """Hot-path classes must declare ``__slots__``."""

    id = "slots-coverage"
    summary = "hot-path classes (messages, simulator, network) need __slots__"
    rationale = (
        "Paper-scale runs allocate millions of message and event "
        "objects; a __dict__ per instance costs memory and defeats the "
        "attribute-cache layout the PR-4 fast path relies on.  Every "
        "class in the message and simulator-core modules declares "
        "__slots__ (Protocol/Exception/NamedTuple classes excepted)."
    )

    _EXEMPT_BASES = {"Protocol", "NamedTuple", "Enum", "IntEnum",
                     "Exception", "BaseException"}

    def applies_to(self, ctx: "FileContext") -> bool:
        return ctx.module_is(*_SLOTS_MODULES)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for base in node.bases:
            base_name = base.attr if isinstance(base, ast.Attribute) else \
                getattr(base, "id", None)
            if base_name in self._EXEMPT_BASES or (
                    base_name is not None and base_name.endswith("Error")):
                self.generic_visit(node)
                return
        has_slots = False
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                if any(isinstance(t, ast.Name) and t.id == "__slots__"
                       for t in stmt.targets):
                    has_slots = True
            elif isinstance(stmt, ast.AnnAssign):
                if (isinstance(stmt.target, ast.Name)
                        and stmt.target.id == "__slots__"):
                    has_slots = True
        if not has_slots:
            self.report(node, f"class {node.name} in a hot-path module "
                              "does not declare __slots__")
        self.generic_visit(node)


#: Protocol modules under the verify-before-mutate contract (shared
#: with the interprocedural passes; declared once in specs.py).
from .specs import PROTOCOL_MODULES as _PROTOCOL_MODULES  # noqa: E402

#: Method names that mutate their receiver in place.
_MUTATORS = {"add", "append", "extend", "insert", "update", "setdefault",
             "pop", "popleft", "remove", "discard", "clear"}

#: Substrings identifying a verification call.
_VERIFY_NAMES = ("verify", "require_valid")


class VerifyBeforeMutate(Rule):
    """Handlers that verify a message must do so before mutating state."""

    id = "verify-before-mutate"
    summary = "protocol handlers verify messages before touching slot state"
    rationale = (
        "PBFT-family safety arguments assume a replica's state reflects "
        "only verified messages (Castro & Liskov §4); a handler that "
        "first records and then verifies leaves poisoned state behind "
        "when verification fails.  In any handler (_on_* / handle*) "
        "that performs a verification, every mutation of self state "
        "must come after the first verify call.  Handlers with no "
        "verify call are exempt: their messages are MAC-authenticated "
        "by the transport layer in consensus/replica.py."
    )

    def applies_to(self, ctx: "FileContext") -> bool:
        return ctx.module_is(*_PROTOCOL_MODULES)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name.startswith("_on_") or node.name.startswith("handle"):
            first_verify = self._first_verify_line(node)
            if first_verify is not None:
                mutation = self._first_mutation_before(node, first_verify)
                if mutation is not None:
                    self.report(mutation,
                                f"handler {node.name} mutates self state "
                                f"on line {mutation.lineno} before its "
                                f"first verification on line "
                                f"{first_verify}; verify, then mutate")
        self.generic_visit(node)

    def _first_verify_line(self, func: ast.FunctionDef) -> Optional[int]:
        best: Optional[int] = None
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name is not None and any(v in name
                                            for v in _VERIFY_NAMES):
                    if best is None or node.lineno < best:
                        best = node.lineno
        return best

    def _first_mutation_before(self, func: ast.FunctionDef,
                               line: int) -> Optional[ast.AST]:
        best: Optional[ast.AST] = None
        for node in ast.walk(func):
            candidate: Optional[ast.AST] = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, (ast.Attribute, ast.Subscript))
                            and _root_name(target) == "self"):
                        candidate = node
            elif isinstance(node, ast.Call):
                f = node.func
                if (isinstance(f, ast.Attribute) and f.attr in _MUTATORS
                        and _root_name(f.value) == "self"):
                    candidate = node
            if candidate is not None and candidate.lineno < line:
                if best is None or candidate.lineno < best.lineno:
                    best = candidate
        return best


class NoSilentExcept(Rule):
    """No broad exception handler may swallow errors silently."""

    id = "no-silent-except"
    summary = "bare/broad except clauses must not swallow silently"
    rationale = (
        "except Exception: pass hides protocol violations and crypto "
        "failures that the determinism and safety gates exist to "
        "surface.  Catch the narrow repro.errors type the operation "
        "actually raises; genuinely-expected failures should route "
        "through the repro.errors hierarchy, not vanish."
    )

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, node: Optional[ast.expr]) -> bool:
        if node is None:
            return True  # bare except:
        if isinstance(node, ast.Name):
            return node.id in self._BROAD
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(el) for el in node.elts)
        return False

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._is_broad(node.type):
            reraises = any(isinstance(child, ast.Raise)
                           for child in ast.walk(node))
            if not reraises:
                what = ("bare except:" if node.type is None
                        else "except Exception")
                self.report(node, f"{what} swallows errors silently; "
                                  "catch the narrow repro.errors type "
                                  "the operation raises")
        self.generic_visit(node)


#: Directories whose module-level state is reachable from replica
#: handlers — the code the parallel engine replicates into per-cluster
#: worker processes.
_WORKER_STATE_DIRS = ("repro/consensus/", "repro/core/")

#: Constructors whose result is a mutable container.
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "deque",
                         "defaultdict", "Counter", "OrderedDict"}


class NoCrossWorkerSharedState(Rule):
    """Protocol modules must not keep written module-level state."""

    id = "no-cross-worker-shared-state"
    summary = ("no written module-level state in consensus/ or core/ "
               "(parallel workers cannot share it)")
    rationale = (
        "The parallel engine runs each cluster's replicas in separate "
        "worker processes; module-level state that replica code writes "
        "is process-local, so workers silently diverge from the serial "
        "engine (and from each other) the moment it influences "
        "behaviour.  Per-run state belongs on the replica or an "
        "injected collaborator built from the picklable "
        "ExperimentConfig.  Read-only lookup tables are fine — only "
        "mutations (and ``global`` rebinding) are flagged."
    )

    def applies_to(self, ctx: "FileContext") -> bool:
        return any(part in ctx.norm_path for part in _WORKER_STATE_DIRS)

    def begin_file(self, ctx: "FileContext") -> None:
        #: Module-level names bound to mutable containers.
        self._module_mutables: Set[str] = set()
        #: All module-level bindings (for the ``global`` check).
        self._module_names: Set[str] = set()

    def _is_mutable_value(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            name = _call_name(value)
            return name in _MUTABLE_CONSTRUCTORS
        return False

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                self._module_names.add(name)
                if (value is not None and self._is_mutable_value(value)
                        and not name.startswith("__")):
                    self._module_mutables.add(name)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.report(node,
                        f"function rebinds module-level name {name!r} "
                        "via global; parallel workers each get their "
                        "own copy — keep per-run state on the replica")
        self.generic_visit(node)

    def _flag(self, node: ast.AST, name: str, how: str) -> None:
        self.report(node,
                    f"module-level mutable {name!r} is {how} here; "
                    "each parallel worker process has its own copy, so "
                    "replica behaviour diverges between the serial and "
                    "parallel engines — keep per-run state on the "
                    "replica or an injected collaborator")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                root = _root_name(target)
                if root in self._module_mutables:
                    self._flag(node, root, "written")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, (ast.Subscript, ast.Attribute)):
            root = _root_name(node.target)
            if root in self._module_mutables:
                self._flag(node, root, "written")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                root = _root_name(target)
                if root in self._module_mutables:
                    self._flag(node, root, "written")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            root = _root_name(func.value)
            if root in self._module_mutables:
                self._flag(node, root, "mutated")
        self.generic_visit(node)


# The whole-program rules live in their own modules (they need the
# project index and the spec tables); imported here, after ProjectRule
# is defined, so the catalogue below stays the single registry.
from .msgflow import (FlowDeadHandler, FlowOrphanMessage,  # noqa: E402
                      FlowSpecDivergence)
from .quorum import QuorumArithmetic  # noqa: E402
from .taint import VerifyTaint  # noqa: E402

#: The catalogue, in documentation order.
RULES: List[Type[Rule]] = [
    NoWallclock,
    NoUnseededRandom,
    DeterministicIteration,
    NoIdentityOrdering,
    SlotsCoverage,
    VerifyBeforeMutate,
    NoSilentExcept,
    NoCrossWorkerSharedState,
    VerifyTaint,
    QuorumArithmetic,
    FlowOrphanMessage,
    FlowDeadHandler,
    FlowSpecDivergence,
]


def rule_ids() -> List[str]:
    """All registered rule ids, in catalogue order."""
    return [cls.id for cls in RULES]


def default_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Fresh instances of the registered rules.

    ``only`` restricts to the named ids; unknown ids raise so typos in
    ``--rule`` fail loudly instead of silently linting nothing.
    """
    from ..errors import ConfigurationError

    if only is None:
        return [cls() for cls in RULES]
    known = {cls.id: cls for cls in RULES}
    missing = [rule_id for rule_id in only if rule_id not in known]
    if missing:
        raise ConfigurationError(
            f"unknown lint rule(s) {', '.join(missing)}; expected one of "
            f"{', '.join(known)}")
    return [known[rule_id]() for rule_id in only]


def iter_rule_docs() -> Iterator[Dict[str, str]]:
    """``{id, summary, rationale}`` per rule (CLI --list-rules, docs)."""
    for cls in RULES:
        yield {"id": cls.id, "summary": cls.summary,
               "rationale": " ".join(cls.rationale.split())}
