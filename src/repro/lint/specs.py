"""Declarative per-protocol message-flow and quorum specs.

This module is the *contract* side of the interprocedural passes: for
each protocol it names the message classes that may appear on the wire,
who is allowed to construct them, who must consume them, how they fan
out, and which quorum-arithmetic classes its threshold comparisons may
use.  The extraction side (:mod:`repro.lint.msgflow`,
:mod:`repro.lint.quorum`) checks the code against these tables, so a
protocol edit that changes an edge shows up as a reviewable spec/golden
diff instead of a silent drift.

Fan-out kinds (see ``msgflow._classify_use``):

* ``broadcast`` — handed to ``broadcast``/``multicast``/
  ``_multicast_distinct`` (all members, one schedule entry each);
* ``multi-unicast`` — ``send``/``send_at`` inside a loop (e.g. the
  ``f + 1`` GlobalShare fan-out per remote cluster);
* ``unicast`` — a single targeted ``send``/``send_at``;
* ``embedded`` — constructed to ride inside another message;
* ``returned`` / ``local`` — never leaves the constructing replica
  directly (templates for sign-then-rebuild, loopback handling).

Quorum classes (see ``quorum._classify``): ``n-f``, ``2f+1``, ``f+1``,
``all-n``, ``k`` (threshold-scheme parameter), ``param`` (a formal
parameter named ``*quorum*`` — the caller declared it), ``declared`` is
resolved to the class of its declaration site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "MESSAGE_MODULES",
    "PROTOCOL_MODULES",
    "PROTOCOL_SPECS",
    "QUORUM_MODULE_CLASSES",
    "MessageSpec",
    "ProtocolSpec",
    "protocol_for_module",
]

#: Modules defining the wire message classes (CachedEncodable subclasses).
MESSAGE_MODULES: Tuple[str, ...] = ("repro/consensus/messages.py",)

#: Protocol modules under the interprocedural verify-taint and
#: quorum-arithmetic contracts (the per-file verify-before-mutate rule
#: shares this scope via ``repro.lint.rules``).
PROTOCOL_MODULES: Tuple[str, ...] = (
    "repro/consensus/pbft.py",
    "repro/consensus/zyzzyva.py",
    "repro/consensus/hotstuff.py",
    "repro/consensus/steward.py",
    "repro/core/geobft.py",
    "repro/core/remote_view_change.py",
)

#: Client-side modules that drive every protocol: they construct
#: ClientRequestBatch and consume the reply-side messages, so they are
#: part of each protocol's flow scope.
CLIENT_MODULES: Tuple[str, ...] = (
    "repro/workload/client.py",
    "repro/workload/traffic.py",
)


@dataclass(frozen=True)
class MessageSpec:
    """Expected flow of one message class within one protocol."""

    name: str
    #: Human-readable protocol phase the message belongs to.
    phase: str
    #: Exact ``Class.method`` qualnames allowed to construct it (within
    #: the protocol's module scope).
    producers: Tuple[str, ...]
    #: Exact ``Class.method`` qualnames of the annotated handlers that
    #: consume it (dispatch sites are graph metadata, not spec-checked).
    consumers: Tuple[str, ...]
    #: The full fan-out kind set extraction must observe.
    fanout: Tuple[str, ...]
    #: The consuming half lives outside this protocol's static scope or
    #: behind a runtime mode switch — e.g. the open-loop traffic
    #: engine's Zyzzyva commit-certificate fallback is present in every
    #: protocol's scope but only ever runs in zyzzyva mode.  Exempt
    #: from the orphan check; still spec-checked for drift.
    external: bool = False


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol's declared message-flow scope and quorum classes."""

    name: str
    #: Normalized path suffixes forming the protocol's program scope.
    modules: Tuple[str, ...]
    #: Protocol phases, in order (documentation + flow-report metadata).
    phases: Tuple[str, ...]
    #: Quorum-arithmetic classes its threshold comparisons may use.
    quorum_classes: Tuple[str, ...]
    messages: Tuple[MessageSpec, ...] = field(default=())

    def message(self, name: str) -> Optional[MessageSpec]:
        for spec in self.messages:
            if spec.name == name:
                return spec
        return None


def protocol_for_module(path: str,
                        protocol_specs: Tuple[ProtocolSpec, ...],
                        ) -> Optional[ProtocolSpec]:
    """The first protocol spec whose scope contains ``path``."""
    for spec in protocol_specs:
        if any(path.endswith(suffix) for suffix in spec.modules):
            return spec
    return None


#: Allowed quorum classes per module (threshold comparisons in a module
#: must reduce to one of these).  ``messages.py`` verifies certificates
#: on behalf of every protocol, so it takes the caller's word for the
#: quorum (``param``).
QUORUM_MODULE_CLASSES: Mapping[str, Tuple[str, ...]] = {
    "repro/consensus/pbft.py": ("n-f", "f+1"),
    "repro/consensus/zyzzyva.py": ("2f+1", "all-n", "f+1"),
    "repro/consensus/hotstuff.py": ("n-f",),
    "repro/consensus/steward.py": ("n-f", "f+1"),
    "repro/core/geobft.py": ("n-f", "f+1", "k"),
    "repro/core/remote_view_change.py": ("n-f", "f+1"),
    "repro/consensus/messages.py": ("n-f", "2f+1", "f+1", "k", "param"),
}


#: The PBFT engine's own messages.  Steward and GeoBFT embed the
#: engine (``repro/consensus/pbft.py`` is in their scope), so these
#: entries are shared verbatim by all three tables — dispatch sites
#: differ per protocol, but dispatch is graph metadata, not
#: spec-checked.
_PBFT_ENGINE_MESSAGES: Tuple[MessageSpec, ...] = (
    MessageSpec(
        "PrePrepare", "pre-prepare",
        producers=("PbftEngine._install_new_view", "PbftEngine._propose"),
        consumers=("PbftEngine._on_preprepare",),
        fanout=("broadcast", "local"),
    ),
    MessageSpec(
        "Prepare", "prepare",
        producers=("PbftEngine._on_preprepare",),
        consumers=("PbftEngine._on_prepare",),
        fanout=("broadcast",),
    ),
    MessageSpec(
        "Commit", "commit",
        producers=("PbftEngine._maybe_send_commit",
                   "PbftEngine._on_preprepare"),
        consumers=("PbftEngine._on_commit",),
        fanout=("broadcast", "local"),
    ),
    MessageSpec(
        "CommitCertificate", "commit",
        producers=("PbftEngine._maybe_decide",),
        consumers=(),
        fanout=("local",),
    ),
    MessageSpec(
        "Checkpoint", "checkpoint",
        producers=("PbftEngine._emit_checkpoint",),
        consumers=("PbftEngine._on_checkpoint",),
        fanout=("broadcast", "local"),
    ),
    MessageSpec(
        "ViewChange", "view-change",
        producers=("PbftEngine.start_view_change",),
        consumers=("PbftEngine._on_view_change_msg",),
        fanout=("broadcast", "local"),
    ),
    MessageSpec(
        "NewView", "view-change",
        producers=("PbftEngine._install_new_view",),
        consumers=("PbftEngine._on_new_view",),
        fanout=("broadcast", "local"),
    ),
    MessageSpec(
        "PreparedEntry", "view-change",
        producers=("PbftEngine._prepared_entries",),
        consumers=(),
        fanout=("local",),
    ),
    MessageSpec(
        "FetchDecision", "catch-up",
        producers=("PbftEngine._catch_up_to_stable",),
        consumers=("PbftEngine._on_fetch_decision",),
        fanout=("multi-unicast",),
    ),
    MessageSpec(
        "DecisionTransfer", "catch-up",
        producers=("PbftEngine._on_fetch_decision",),
        consumers=("PbftEngine._on_decision_transfer",),
        fanout=("unicast",),
    ),
)

#: The open-loop traffic engine handles every protocol's reply shapes
#: and carries Zyzzyva's client-side commit-certificate fallback, so
#: these sightings exist in every protocol scope that includes
#: ``repro/workload/traffic.py``.  In non-zyzzyva scopes the
#: certificate's consumer is mode-gated away — hence ``external``.
_CLIENT_FALLBACK_MESSAGES: Tuple[MessageSpec, ...] = (
    MessageSpec(
        "SpecResponse", "client",
        producers=(),
        consumers=("OpenLoopSource._on_spec_response",),
        fanout=(),
    ),
    MessageSpec(
        "LocalCommit", "client",
        producers=(),
        consumers=("OpenLoopSource._on_local_commit",),
        fanout=(),
    ),
    MessageSpec(
        "ZyzzyvaCommitCert", "client",
        producers=("OpenLoopSource._zyzzyva_timeout",),
        consumers=(),
        fanout=("multi-unicast",),
        external=True,
    ),
)


PROTOCOL_SPECS: Tuple[ProtocolSpec, ...] = (
    ProtocolSpec(
        name="pbft",
        modules=("repro/consensus/pbft.py",) + CLIENT_MODULES,
        phases=("request", "pre-prepare", "prepare", "commit", "reply",
                "checkpoint", "view-change", "catch-up"),
        quorum_classes=("n-f", "f+1"),
        messages=_PBFT_ENGINE_MESSAGES + _CLIENT_FALLBACK_MESSAGES + (
            MessageSpec(
                "ClientRequestBatch", "request",
                producers=("OpenLoopSource._inject",
                           "PbftEngine._install_new_view",
                           "PbftEngine.submit_noop",
                           "QuorumClient._submit_next"),
                consumers=("PbftReplica._on_client_request",
                           "PbftReplica._on_decide"),
                fanout=("embedded", "local", "multi-unicast", "returned"),
            ),
            MessageSpec(
                "ClientReply", "reply",
                producers=("PbftReplica._on_decide",),
                consumers=("OpenLoopSource._on_reply",
                           "QuorumClient._on_reply"),
                fanout=("unicast",),
            ),
        ),
    ),
    ProtocolSpec(
        name="zyzzyva",
        modules=("repro/consensus/zyzzyva.py",) + CLIENT_MODULES,
        phases=("request", "order", "spec-response", "commit-cert",
                "local-commit"),
        quorum_classes=("2f+1", "all-n", "f+1"),
        messages=(
            MessageSpec(
                "ClientRequestBatch", "request",
                producers=("OpenLoopSource._inject",
                           "QuorumClient._submit_next",
                           "ZyzzyvaClient._submit_next"),
                consumers=("ZyzzyvaReplica._on_client_request",),
                fanout=("local", "multi-unicast", "unicast"),
            ),
            MessageSpec(
                "OrderedRequest", "order",
                producers=("ZyzzyvaReplica._on_client_request",),
                consumers=("ZyzzyvaReplica._on_ordered_request",),
                fanout=("broadcast", "local"),
            ),
            MessageSpec(
                "SpecResponse", "spec-response",
                producers=("ZyzzyvaReplica._on_commit_cert",
                           "ZyzzyvaReplica._speculative_execute"),
                consumers=("OpenLoopSource._on_spec_response",
                           "ZyzzyvaClient._on_spec_response"),
                fanout=("local", "unicast"),
            ),
            MessageSpec(
                "ZyzzyvaCommitCert", "commit-cert",
                producers=("OpenLoopSource._zyzzyva_timeout",
                           "ZyzzyvaClient._on_spec_timeout"),
                consumers=("ZyzzyvaReplica._on_commit_cert",),
                fanout=("multi-unicast",),
            ),
            MessageSpec(
                "LocalCommit", "local-commit",
                producers=("ZyzzyvaReplica._on_commit_cert",),
                consumers=("OpenLoopSource._on_local_commit",
                           "ZyzzyvaClient._on_local_commit"),
                fanout=("unicast",),
            ),
            MessageSpec(
                "ClientReply", "request",
                producers=(),
                consumers=("OpenLoopSource._on_reply",
                           "QuorumClient._on_reply"),
                fanout=(),
            ),
        ),
    ),
    ProtocolSpec(
        name="hotstuff",
        modules=("repro/consensus/hotstuff.py",) + CLIENT_MODULES,
        phases=("request", "prepare", "precommit", "commit", "decide"),
        quorum_classes=("n-f",),
        messages=_CLIENT_FALLBACK_MESSAGES + (
            MessageSpec(
                "ClientRequestBatch", "request",
                producers=("OpenLoopSource._inject",
                           "QuorumClient._submit_next"),
                consumers=("HotStuffReplica._on_client_request",),
                fanout=("local", "multi-unicast"),
            ),
            MessageSpec(
                "HsProposal", "prepare",
                producers=("HotStuffReplica._on_vote",
                           "HotStuffReplica._pump"),
                consumers=("HotStuffReplica._on_decide",
                           "HotStuffReplica._on_proposal"),
                fanout=("broadcast", "local"),
            ),
            MessageSpec(
                "HsVote", "prepare",
                producers=("HotStuffReplica._process_proposal",
                           "HotStuffReplica._verify_qc"),
                consumers=("HotStuffReplica._on_vote",),
                fanout=("local", "unicast"),
            ),
            MessageSpec(
                "HsQuorumCert", "precommit",
                producers=("HotStuffReplica._on_vote",),
                consumers=(),
                fanout=("embedded",),
            ),
            MessageSpec(
                "ClientReply", "decide",
                producers=("HotStuffReplica._on_decide",),
                consumers=("OpenLoopSource._on_reply",
                           "QuorumClient._on_reply"),
                fanout=("unicast",),
            ),
        ),
    ),
    ProtocolSpec(
        name="steward",
        modules=("repro/consensus/steward.py",
                 "repro/consensus/pbft.py") + CLIENT_MODULES,
        phases=("request", "local-pbft", "forward", "global-order",
                "reply"),
        quorum_classes=("n-f", "f+1"),
        messages=_PBFT_ENGINE_MESSAGES + _CLIENT_FALLBACK_MESSAGES + (
            MessageSpec(
                "ClientRequestBatch", "request",
                producers=("OpenLoopSource._inject",
                           "PbftEngine._install_new_view",
                           "PbftEngine.submit_noop",
                           "QuorumClient._submit_next"),
                consumers=("PbftReplica._on_client_request",
                           "PbftReplica._on_decide",
                           "StewardReplica._on_client_request",
                           "StewardReplica._on_engine_decide"),
                fanout=("embedded", "local", "multi-unicast", "returned"),
            ),
            MessageSpec(
                "StewardForward", "forward",
                producers=("StewardReplica._on_engine_decide",),
                consumers=("StewardReplica._on_forward",),
                fanout=("multi-unicast",),
            ),
            MessageSpec(
                "StewardGlobalOrder", "global-order",
                producers=("StewardReplica._disseminate",
                           "StewardReplica._on_global_order"),
                consumers=("StewardReplica._on_global_order",),
                fanout=("broadcast", "multi-unicast"),
            ),
            MessageSpec(
                "ClientReply", "reply",
                producers=("PbftReplica._on_decide",
                           "StewardReplica._deliver_global"),
                consumers=("OpenLoopSource._on_reply",
                           "QuorumClient._on_reply"),
                fanout=("unicast",),
            ),
        ),
    ),
    ProtocolSpec(
        name="geobft",
        modules=("repro/core/geobft.py",
                 "repro/core/remote_view_change.py",
                 "repro/consensus/pbft.py") + CLIENT_MODULES,
        phases=("request", "local-pbft", "cert-share", "global-share",
                "execute", "remote-view-change"),
        quorum_classes=("n-f", "f+1", "k"),
        messages=_PBFT_ENGINE_MESSAGES + _CLIENT_FALLBACK_MESSAGES + (
            MessageSpec(
                "ClientRequestBatch", "request",
                producers=("OpenLoopSource._inject",
                           "PbftEngine._install_new_view",
                           "PbftEngine.submit_noop",
                           "QuorumClient._submit_next"),
                consumers=("GeoBftReplica._on_client_request",
                           "GeoBftReplica._on_local_decide",
                           "PbftReplica._on_client_request",
                           "PbftReplica._on_decide"),
                fanout=("embedded", "local", "multi-unicast", "returned"),
            ),
            MessageSpec(
                "CertShare", "cert-share",
                producers=("GeoBftReplica._contribute_cert_share",),
                consumers=("GeoBftReplica._on_cert_share",),
                fanout=("local", "unicast"),
            ),
            MessageSpec(
                "ThresholdCommitCertificate", "cert-share",
                producers=("GeoBftReplica._record_cert_share",),
                consumers=(),
                fanout=("local",),
            ),
            MessageSpec(
                "GlobalShare", "global-share",
                producers=("GeoBftReplica._on_global_share",
                           "GeoBftReplica._share_globally"),
                consumers=("GeoBftReplica._on_global_share",),
                fanout=("broadcast", "multi-unicast"),
            ),
            MessageSpec(
                "ClientReply", "execute",
                producers=("GeoBftReplica._execute_round",
                           "PbftReplica._on_decide"),
                consumers=("OpenLoopSource._on_reply",
                           "QuorumClient._on_reply"),
                fanout=("multi-unicast", "unicast"),
            ),
            MessageSpec(
                "Drvc", "remote-view-change",
                producers=("RemoteViewChangeManager._detect_failure",),
                consumers=("RemoteViewChangeManager.handle_drvc",),
                fanout=("broadcast", "local"),
            ),
            MessageSpec(
                "Rvc", "remote-view-change",
                producers=("RemoteViewChangeManager._send_rvc",),
                consumers=("RemoteViewChangeManager.handle_rvc",),
                fanout=("local", "unicast"),
            ),
        ),
    ),
)
