"""Interprocedural verify-taint: verification must dominate mutation.

The per-file ``verify-before-mutate`` rule catches a handler that
*directly* writes ``self`` state before its first verification.  This
pass generalizes it through the call graph: a handler that calls
``self._slot(seq)`` before verifying is just as unsafe if ``_slot``
creates the slot entry two frames down.  For every handler in the
protocol modules that performs a verification, every ``self.helper()``
(or same-module ``helper()``) call *before* the first verify call is
resolved through :class:`~repro.lint.symbols.ProjectIndex`; if the
callee transitively mutates ``self`` state, the call site is a finding.

Like its per-file sibling, the pass approximates dominance by source
order (the protocol handlers are straight-line guard ladders, so the
first verify line dominates everything after it), and it stays
precise over complete: only ``self.m()`` and bare same-module calls
are followed — an unresolvable call is treated as non-mutating rather
than guessed at.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .rules import ProjectRule, _MUTATORS, _VERIFY_NAMES, _root_name
from .specs import PROTOCOL_MODULES
from .symbols import FunctionInfo, ProjectIndex

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Finding

__all__ = ["VerifyTaint"]


def _directly_mutates_self(fn: FunctionInfo) -> bool:
    """Does this function write a ``self`` attribute or call an
    in-place mutator on one?"""
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, (ast.Attribute, ast.Subscript))
                        and _root_name(target) == "self"):
                    return True
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute) and func.attr in _MUTATORS
                    and _root_name(func.value) == "self"):
                return True
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (isinstance(target, (ast.Attribute, ast.Subscript))
                        and _root_name(target) == "self"):
                    return True
    return False


def _first_verify_line(fn: FunctionInfo) -> Optional[int]:
    best: Optional[int] = None
    for site in fn.calls:
        if any(marker in site.name for marker in _VERIFY_NAMES):
            if best is None or site.lineno < best:
                best = site.lineno
    return best


def _resolve(project: ProjectIndex, caller: FunctionInfo, name: str,
             kind: str) -> Optional[FunctionInfo]:
    if kind == "self":
        return project.resolve_self_call(caller, name)
    if kind == "bare":
        return project.resolve_bare_call(caller, name)
    return None


def _transitive_mutators(project: ProjectIndex,
                         fns: Sequence[FunctionInfo]
                         ) -> Dict[FunctionInfo, bool]:
    """Fixpoint over the call graph: which functions (transitively)
    mutate ``self`` state.  Mutation propagates only through ``self``
    method calls — a helper reached via ``self.m()`` shares the same
    receiver, so its writes are the handler's writes."""
    mutates: Dict[FunctionInfo, bool] = {
        fn: _directly_mutates_self(fn) for fn in fns
    }
    changed = True
    while changed:
        changed = False
        for fn in fns:
            if mutates[fn]:
                continue
            for site in fn.calls:
                if site.kind != "self":
                    continue
                callee = project.resolve_self_call(fn, site.name)
                if callee is not None and mutates.get(callee, False):
                    mutates[fn] = True
                    changed = True
                    break
    return mutates


def _is_handler(fn: FunctionInfo) -> bool:
    return fn.name.startswith("_on_") or fn.name.startswith("handle")


class VerifyTaint(ProjectRule):
    """Helper-delegated mutations must come after verification too."""

    id = "verify-taint"
    summary = ("helpers called before a handler's first verify must not "
               "mutate replica state")
    rationale = (
        "The verify-before-mutate contract (Castro & Liskov §4) does "
        "not stop at the handler's own statements: a helper reached "
        "through self.m() writes the same replica state.  In any "
        "protocol handler that performs a verification, every call "
        "before the first verify is resolved through the project call "
        "graph; reaching a transitive self-mutation there leaves "
        "poisoned state behind when verification subsequently fails."
    )

    def __init__(self,
                 modules: Optional[Sequence[str]] = None) -> None:
        super().__init__()
        self._modules = (tuple(modules) if modules is not None
                         else PROTOCOL_MODULES)

    def run_project(self, project: ProjectIndex) -> List["Finding"]:
        self._findings = []
        fns = list(project.iter_functions(self._modules))
        mutates = _transitive_mutators(project, fns)
        for fn in fns:
            if not _is_handler(fn):
                continue
            verify_line = _first_verify_line(fn)
            if verify_line is None:
                # Handlers without verification are exempt: their
                # messages are MAC-authenticated by the transport.
                continue
            best = None
            for site in sorted(fn.calls, key=lambda s: s.lineno):
                if site.lineno >= verify_line:
                    break
                callee = _resolve(project, fn, site.name, site.kind)
                if callee is None or callee is fn:
                    continue
                if mutates.get(callee, False):
                    best = (site, callee)
                    break
            if best is not None:
                site, callee = best
                self.emit(fn.path, site.lineno, 0, fn.qualname,
                          f"handler {fn.qualname} calls "
                          f"{callee.qualname} on line {site.lineno} "
                          "before its first verification on line "
                          f"{verify_line}, and {callee.qualname} "
                          "transitively mutates replica state; verify "
                          "first, then mutate")
        return self._findings
