"""The committed allowlist: justified exceptions to the lint rules.

Every entry names a rule, a file (matched by path suffix), optionally
the enclosing ``Class.method`` symbol (so entries survive line-number
churn), and a **mandatory** justification.  An entry with an empty
justification is a :class:`~repro.errors.ConfigurationError` — the
engine validates this on every run, so an unjustified exception cannot
even execute, let alone merge.

Prefer an inline ``# repro: allow[rule-id] reason`` suppression for a
single odd line; use an allowlist entry when a whole symbol is
legitimately exempt (host-side calibration code, documented memo-key
identity use).  Keep this list short: every entry is a hole in a
contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class AllowlistEntry:
    """One justified exception.

    ``path`` is matched as a forward-slash suffix of the linted file
    path; ``symbol`` (when given) must equal the finding's enclosing
    qualname or be an ancestor of it (``"Bench"`` covers
    ``"Bench.run"``).
    """

    rule: str
    path: str
    justification: str
    symbol: Optional[str] = None


#: The committed exceptions.  Every entry must say *why* the contract
#: does not apply — "it was easier" is not a justification.
ALLOWLIST: List[AllowlistEntry] = [
    AllowlistEntry(
        rule="no-wallclock",
        path="benchmarks/bench_scale.py",
        symbol=None,
        justification=(
            "The scale benchmark measures *host* wall-clock runtime of "
            "the simulator itself (the tracked perf-regression numbers in "
            "BENCH_scale.json); it runs outside simulated time, so "
            "virtual-clock discipline does not apply."
        ),
    ),
    AllowlistEntry(
        rule="no-wallclock",
        path="benchmarks/bench_crypto_hotpath.py",
        symbol=None,
        justification=(
            "Host-side micro-benchmark of the crypto hot path; "
            "perf_counter() here times real CPU work on the host and "
            "never executes inside the simulation."
        ),
    ),
    AllowlistEntry(
        rule="no-wallclock",
        path="repro/sweep/calibrate.py",
        symbol=None,
        justification=(
            "Host calibration is by definition a wall-clock measurement: "
            "it times a pure-Python loop on the host to normalize "
            "cross-machine perf comparisons, and never runs inside "
            "simulated time."
        ),
    ),
    AllowlistEntry(
        rule="no-wallclock",
        path="repro/sweep/runner.py",
        symbol=None,
        justification=(
            "The sweep runner times *host* execution of each run (the "
            "wall_s/events_per_s fields the perf gates compare after "
            "host calibration); the reads bracket a whole simulation "
            "and never execute inside simulated time."
        ),
    ),
]
