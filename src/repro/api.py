"""The stable public API of the reproduction.

Everything an experiment driver, notebook, or test needs lives here
under one flat namespace — import from :mod:`repro` (which re-exports
this module) instead of deep-importing ``repro.bench.deployment`` or
other internals, whose layout may change between versions:

* **Running experiments** — :class:`ExperimentConfig` (one data point's
  knobs), :func:`run_experiment` (build + run + aggregate),
  :class:`ExperimentResult` (the row, with ``describe()``/``to_dict()``/
  ``to_json()``), :class:`Deployment` for staged control (build, arrange
  faults, ``run()``), and :func:`deployment_digest` for determinism
  checks.
* **Parallel engine** — :func:`run_parallel` (per-cluster worker
  processes, byte-identical digests), :class:`ParallelRun` (the merged
  outcome, including a merged :class:`Instrumentation` hub on
  instrumented runs and an :class:`EngineReport` of per-worker
  barrier/idle telemetry), :func:`parallel_unsupported_reason`
  (serial-fallback gate), and the partitioning helpers
  :func:`partition_clusters` / :func:`lookahead_s` /
  :func:`cluster_affinity_pairs`.  Setting
  ``ExperimentConfig(workers=N)`` routes :func:`run_experiment` through
  it automatically when supported.
* **Observability** — :class:`Instrumentation` (the phase-event hub,
  with :meth:`~Instrumentation.merge` for folding parallel worker
  hubs), :class:`LatencyHistogram`, and :func:`load_trace_jsonl` for
  offline analysis of exported traces.
* **Fault injection** — :class:`FaultTimeline` plus the fault taxonomy
  (:class:`CrashFault`, :class:`PartitionFault`, :class:`LinkDelayFault`,
  :class:`MessageLossFault`, :class:`OmissionFault`, :class:`TamperFault`,
  :class:`EquivocateFault`), :func:`apply_scenario` /
  :func:`register_scenario` for the named-scenario registry, and
  :class:`InvariantReport` from the post-run safety+liveness audit.
* **Workloads & open-loop traffic** — :class:`TrafficSpec` (aggregate
  arrival-process spec: ``"poisson:users=1000000,rate=0.002"``; set it
  as ``ExperimentConfig(traffic=...)`` to replace the closed-loop
  clients with one :class:`OpenLoopSource` per region, modeling any
  user population in O(arrivals)), :func:`traffic_summary` (the
  offered/goodput/abandonment block on ``ExperimentResult.traffic``),
  and :class:`PaymentWorkload` — the conflict-bearing interbank
  transfer generator behind the ``payment_network`` scenario.
* **Campaigns** — :class:`Campaign` / :class:`RunSpec` /
  :class:`ReportSpec` (a DAG of deterministic runs plus the artifacts
  regenerated from them), :func:`run_campaign` (DAG scheduler with a
  worker-budget-governed process pool, returning a
  :class:`CampaignOutcome`), :class:`ResultStore` (the digest-keyed
  JSONL + SQLite result store), :func:`register_campaign` /
  :func:`campaign_names` / :func:`get_campaign` for the campaign
  registry (mirroring the scenario registry), and
  :func:`calibrate_host` — the shared host-speed normalizer behind
  cross-machine perf comparisons.

Typical staged run::

    from repro import (Deployment, ExperimentConfig, FaultTimeline,
                       CrashFault, PartitionFault)

    deployment = Deployment(ExperimentConfig(protocol="geobft",
                                             num_clusters=2,
                                             replicas_per_cluster=4,
                                             duration=6.0, warmup=1.0))
    FaultTimeline([
        CrashFault("primary:1", at=1.0),
        PartitionFault(["cluster:1"], ["cluster:2"], at=2.0, until=3.5),
    ]).install(deployment)
    result = deployment.run()
    assert deployment.invariants.ok
"""

from __future__ import annotations

from .bench.deployment import (
    PROTOCOLS,
    Deployment,
    ExperimentConfig,
    ExperimentResult,
    InvariantReport,
    deployment_digest,
    run_experiment,
)
from .bench.instrumentation import (
    Instrumentation,
    LatencyHistogram,
    WorkerInstrumentation,
)
from .bench.parallel import (
    EngineReport,
    ParallelRun,
    cluster_affinity_pairs,
    lookahead_s,
    parallel_unsupported_reason,
    partition_clusters,
    run_parallel,
)
from .bench.tracing import load_trace_jsonl
from .bench.scenarios import (
    SCENARIOS,
    apply_scenario,
    chaos_smoke_timeline,
    register_scenario,
    scenario_names,
)
from .net.chaos import (
    ChaosContext,
    CrashFault,
    EquivocateFault,
    FAULT_KINDS,
    Fault,
    FaultTimeline,
    LinkDelayFault,
    MessageLossFault,
    OmissionFault,
    PartitionFault,
    TamperFault,
    fault_from_dict,
)
from .workload.payment import PaymentWorkload
from .workload.traffic import (
    TRAFFIC_PROCESSES,
    OpenLoopSource,
    TrafficSpec,
    traffic_summary,
)
from .sweep import (
    Campaign,
    CampaignOutcome,
    ReportSpec,
    ResultStore,
    RunSpec,
    calibrate_host,
    campaign_names,
    expand_grid,
    get_campaign,
    register_campaign,
    run_campaign,
)

__all__ = [
    # experiments
    "PROTOCOLS",
    "Deployment",
    "ExperimentConfig",
    "ExperimentResult",
    "InvariantReport",
    "deployment_digest",
    "run_experiment",
    # parallel engine
    "EngineReport",
    "ParallelRun",
    "cluster_affinity_pairs",
    "lookahead_s",
    "parallel_unsupported_reason",
    "partition_clusters",
    "run_parallel",
    # observability
    "Instrumentation",
    "LatencyHistogram",
    "WorkerInstrumentation",
    "load_trace_jsonl",
    # scenarios
    "SCENARIOS",
    "apply_scenario",
    "chaos_smoke_timeline",
    "register_scenario",
    "scenario_names",
    # fault injection
    "ChaosContext",
    "CrashFault",
    "EquivocateFault",
    "FAULT_KINDS",
    "Fault",
    "FaultTimeline",
    "LinkDelayFault",
    "MessageLossFault",
    "OmissionFault",
    "PartitionFault",
    "TamperFault",
    "fault_from_dict",
    # workloads & open-loop traffic
    "PaymentWorkload",
    "TRAFFIC_PROCESSES",
    "OpenLoopSource",
    "TrafficSpec",
    "traffic_summary",
    # campaigns
    "Campaign",
    "CampaignOutcome",
    "ReportSpec",
    "ResultStore",
    "RunSpec",
    "calibrate_host",
    "campaign_names",
    "expand_grid",
    "get_campaign",
    "register_campaign",
    "run_campaign",
]
