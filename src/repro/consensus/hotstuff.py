"""HotStuff, as implemented by the paper (§3 "Other protocols").

The paper's ResilientDB implementation of HotStuff makes two explicit
deviations from the published protocol, both of which we reproduce:

* **No threshold signatures** (none were available in Crypto++): quorum
  certificates carry ``N - F`` individual signatures, so QC messages
  grow linearly with the quorum and every replica pays ``N - F``
  signature verifications per phase — the "high computational costs"
  §4.1 blames for HotStuff's throughput ceiling.
* **Parallel primaries without a pacemaker**: every replica acts as the
  leader of its own consensus *instance* concurrently, giving the
  protocol its decentralized bandwidth profile (it is not bottlenecked
  on a single region's uplink, which is why it scales with batch size in
  Figure 13).

Each instance runs the basic 4-phase HotStuff pipeline per height:
``prepare -> pre-commit -> commit -> decide``, with signed votes
returned to the instance leader and the assembled QC broadcast with the
next phase.  The 4 phases over WAN links produce the high client
latencies of Figures 10–11.

Execution: decided batches are executed in decide-arrival order per
replica (the instances are unsynchronized, exactly as in the paper's
implementation).  With the evaluation's write-only YCSB workload this
still yields identical per-request results across replicas; per-instance
sequences are identical everywhere, which the safety tests assert.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import ConfigurationError
from ..types import NodeId, max_faulty
from .messages import (
    ClientReply,
    ClientRequestBatch,
    HsProposal,
    HsQuorumCert,
    HsVote,
    adopt_encoding,
    note_verified_quorum,
    verified_quorum,
)
from .replica import BaseReplica

PHASES = ("prepare", "precommit", "commit", "decide")
_NEXT_PHASE = {"prepare": "precommit", "precommit": "commit",
               "commit": "decide"}


class _HeightState:
    """Leader- and replica-side state for one (instance, height)."""

    __slots__ = ("request", "digest", "votes", "qcs", "voted", "executed")

    def __init__(self) -> None:
        self.request: Optional[ClientRequestBatch] = None
        self.digest: Optional[bytes] = None
        # phase -> {replica: vote}
        self.votes: Dict[str, Dict[NodeId, HsVote]] = {}
        # phase -> assembled QC
        self.qcs: Dict[str, HsQuorumCert] = {}
        self.voted: Set[str] = set()
        self.executed = False


class HotStuffReplica(BaseReplica):
    """A HotStuff replica that simultaneously leads its own instance."""

    def __init__(self, node_id, region, sim, network, registry,
                 members: List[NodeId], pipeline_depth: int = 4,
                 costs=None, cores=4, record_count=1000, metrics=None,
                 instrumentation=None):
        super().__init__(node_id, region, sim, network, registry,
                         costs=costs, cores=cores,
                         record_count=record_count, metrics=metrics,
                         instrumentation=instrumentation)
        if pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        self._members = list(members)
        self._n = len(members)
        self._f = max_faulty(self._n)
        self._quorum = self._n - self._f
        self._pipeline_depth = pipeline_depth
        self._instance = self._members.index(node_id)
        # Every vote carries exactly one signature (see
        # verification_cost); let deliver() skip the call.
        self._const_verify_costs[HsVote] = self.costs.verify

        # Leader-side state for the instance this replica leads.
        self._queue: List[ClientRequestBatch] = []
        self._next_height = 1
        self._decided_height = 0
        self._seen_batch_ids: Set[str] = set()

        # Per (instance, height) protocol state.
        self._states: Dict[Tuple[int, int], _HeightState] = {}
        self._executed_per_instance: Dict[int, int] = {}

    @property
    def instance(self) -> int:
        """The consensus instance this replica leads."""
        return self._instance

    @property
    def decided_height(self) -> int:
        """Heights fully decided in the led instance."""
        return self._decided_height

    def executed_sequence(self, instance: int) -> int:
        """Batches executed from ``instance`` (safety-test hook)."""
        return self._executed_per_instance.get(instance, 0)

    def verification_cost(self, message, sender: NodeId) -> float:
        """Certify-thread work for HotStuff's message types.

        Without threshold signatures, every non-prepare proposal carries
        an ``N - F``-signature QC that must be verified signature by
        signature — the cost the paper blames for HotStuff's throughput
        ceiling (§4.1).
        """
        costs = self.costs
        if isinstance(message, ClientRequestBatch):
            return costs.verify if message.signature is not None else 0.0
        if isinstance(message, HsVote):
            return costs.verify
        if isinstance(message, HsProposal):
            if message.phase == "prepare":
                return costs.verify  # embedded client signature
            if message.justify is not None:
                return costs.verify * len(message.justify.signatures)
        return 0.0

    def handle(self, message, sender: NodeId) -> None:
        """Route HotStuff messages."""
        if isinstance(message, ClientRequestBatch):
            self._on_client_request(message, sender)
        elif isinstance(message, HsProposal):
            self._on_proposal(message, sender)
        elif isinstance(message, HsVote):
            self._on_vote(message, sender)

    # ------------------------------------------------------------------
    # Leader side
    # ------------------------------------------------------------------
    def _on_client_request(self, request: ClientRequestBatch,
                           sender: NodeId) -> None:
        if request.batch_id in self._seen_batch_ids:
            return
        if (request.signature is None
                or not self.registry.verify(request,
                                            request.signature)):
            return
        self._seen_batch_ids.add(request.batch_id)
        self._queue.append(request)
        self._pump()

    def _pump(self) -> None:
        in_flight = (self._next_height - 1) - self._decided_height
        while self._queue and in_flight < self._pipeline_depth:
            request = self._queue.pop(0)
            height = self._next_height
            self._next_height += 1
            in_flight += 1
            instr = self._instrumentation
            if instr is not None:
                instr.phase("proposed", self.node_id, self._instance,
                            height)
            self.charge_cpu(self.costs.hash_small)
            digest = request.digest()
            state = self._state(self._instance, height)
            state.request = request
            state.digest = digest
            proposal = HsProposal("prepare", self._instance, height, digest,
                                  request, None)
            self.broadcast(self._members, proposal)
            self._receive_proposal_locally(proposal)

    def _state(self, instance: int, height: int) -> _HeightState:
        key = (instance, height)
        state = self._states.get(key)
        if state is None:
            state = _HeightState()
            self._states[key] = state
        return state

    def _on_vote(self, vote: HsVote, sender: NodeId) -> None:
        if vote.instance != self._instance or sender != vote.replica:
            return
        if vote.phase not in PHASES or vote.phase == "decide":
            return
        if vote.signature is None:
            return
        # Late votes for an already-formed QC are discarded either way;
        # peeking at the state first skips their signature checks.  The
        # peek never *creates* state — a bad-signature vote must not
        # leave a height entry behind, exactly as before.
        state = self._states.get((vote.instance, vote.height))
        if state is not None:
            if vote.phase in state.qcs:
                return
            if state.digest is not None and vote.digest != state.digest:
                return
        # HsVote.payload() excludes the signature, so verifying against
        # the signed object is the same statement as the unsigned
        # reconstruction — and it reuses the vote's cached encoding.
        if not self.registry.verify(vote, vote.signature):
            return
        if state is None:
            state = self._state(vote.instance, vote.height)
            if state.digest is not None and vote.digest != state.digest:
                return
        votes = state.votes.get(vote.phase)
        if votes is None:
            votes = state.votes[vote.phase] = {}
        votes[sender] = vote
        if len(votes) < self._quorum:
            return
        # Assemble the (linear-size) QC and advance to the next phase.
        qc = HsQuorumCert(
            vote.phase, vote.instance, vote.height, vote.digest,
            tuple(v.signature for _, v in sorted(votes.items())
                  [: self._quorum]),
        )
        state.qcs[vote.phase] = qc
        instr = self._instrumentation
        if instr is not None:
            # QC formed: map HotStuff's phase names onto the lifecycle
            # ("precommitted" is event-only, between prepared/committed).
            lifecycle = {"prepare": "prepared", "precommit": "precommitted",
                         "commit": "committed"}[vote.phase]
            instr.phase(lifecycle, self.node_id, vote.instance, vote.height)
        next_phase = _NEXT_PHASE[vote.phase]
        carried = state.request if next_phase == "prepare" else None
        proposal = HsProposal(next_phase, vote.instance, vote.height,
                              vote.digest, carried, qc)
        self.broadcast(self._members, proposal)
        self._receive_proposal_locally(proposal)

    # ------------------------------------------------------------------
    # Replica side
    # ------------------------------------------------------------------
    def _receive_proposal_locally(self, proposal: HsProposal) -> None:
        """Leaders also act on their own proposals (no self network hop)."""
        self._process_proposal(proposal, self.node_id)

    def _on_proposal(self, proposal: HsProposal, sender: NodeId) -> None:
        if proposal.instance < 0 or proposal.instance >= self._n:
            return
        leader = self._members[proposal.instance]
        if sender != leader:
            return
        self._process_proposal(proposal, sender)

    def _process_proposal(self, proposal: HsProposal, sender: NodeId) -> None:
        state = self._state(proposal.instance, proposal.height)
        if proposal.phase == "prepare":
            if proposal.request is None:
                return
            self.charge_cpu(self.costs.hash_small)
            request = proposal.request
            if (request.signature is None
                    or not self.registry.verify(request,
                                                request.signature)):
                return
            if request.digest() != proposal.digest:
                return
            if state.digest is not None and state.digest != proposal.digest:
                return
            state.request = request
            state.digest = proposal.digest
        else:
            qc = proposal.justify
            if qc is None or not self._verify_qc(qc, proposal):
                return
        if proposal.phase == "decide":
            self._on_decide(proposal, state)
            return
        if proposal.phase in state.voted:
            return
        state.voted.add(proposal.phase)
        vote = HsVote(proposal.phase, proposal.instance, proposal.height,
                      proposal.digest, self.node_id, None)
        signed = HsVote(vote.phase, vote.instance, vote.height, vote.digest,
                        vote.replica, self.sign(vote))
        adopt_encoding(signed, vote)
        leader = self._members[proposal.instance]
        if leader == self.node_id:
            self._on_vote(signed, self.node_id)
        else:
            self.send(leader, signed)

    def _verify_qc(self, qc: HsQuorumCert, proposal: HsProposal) -> bool:
        """Verify a linear QC: N - F distinct, valid vote signatures.

        This is the per-phase cost threshold signatures would remove.
        """
        if (qc.instance != proposal.instance or qc.height != proposal.height
                or qc.digest != proposal.digest):
            return False
        expected_phase = {
            "precommit": "prepare",
            "commit": "precommit",
            "decide": "commit",
        }.get(proposal.phase)
        if qc.phase != expected_phase or len(qc.signatures) < self._quorum:
            return False
        # The leader broadcasts one QC object to every replica, so the
        # distinct-valid-signer count from the first full scan is shared
        # through the monotonic verified-quorum memo and reused by every
        # later receiver.  Failed scans (Byzantine leaders) and scans
        # that fall short of the quorum are not trusted from the memo.
        if verified_quorum(qc) >= self._quorum:
            return True
        signers = set()
        for signature in qc.signatures:
            vote_payload = HsVote(qc.phase, qc.instance, qc.height,
                                  qc.digest, signature.signer, None)
            if not self.registry.verify(vote_payload, signature):
                return False
            signers.add(signature.signer)
        note_verified_quorum(qc, len(signers))
        return len(signers) >= self._quorum

    def _on_decide(self, proposal: HsProposal, state: _HeightState) -> None:
        if state.executed or state.request is None:
            return
        state.executed = True
        instr = self._instrumentation
        if instr is not None:
            instr.phase("executed", self.node_id, proposal.instance,
                        proposal.height)
        request = state.request
        results, done_at = self.execute_batch(request.batch)
        self.ledger.append(proposal.height, proposal.instance,
                           request.batch, proposal.justify,
                           batch_digest=request.digest())
        count = self._executed_per_instance.get(proposal.instance, 0)
        self._executed_per_instance[proposal.instance] = count + 1
        if request.signature is not None:
            reply = ClientReply(
                batch_id=request.batch_id,
                replica=self.node_id,
                cluster_id=proposal.instance,
                round_id=proposal.height,
                results_digest=self.executor.results_digest(results),
                batch_len=len(request.batch),
            )
            self.send_at(done_at, request.client, reply)
        if proposal.instance == self._instance:
            self._decided_height = max(self._decided_height,
                                       proposal.height)
            self._pump()
