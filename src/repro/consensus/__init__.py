"""Consensus protocols: PBFT plus the paper's baseline implementations.

GeoBFT itself lives in :mod:`repro.core`; this package holds the shared
replica runtime, the message vocabulary, the reusable PBFT engine, and
the Zyzzyva / HotStuff / Steward baselines evaluated in §4.
"""

from .hotstuff import HotStuffReplica
from .pbft import PbftConfig, PbftEngine, PbftReplica
from .replica import BaseReplica, CpuModel
from .steward import StewardReplica
from .zyzzyva import ZyzzyvaClient, ZyzzyvaReplica

__all__ = [
    "HotStuffReplica",
    "PbftConfig",
    "PbftEngine",
    "PbftReplica",
    "BaseReplica",
    "CpuModel",
    "StewardReplica",
    "ZyzzyvaClient",
    "ZyzzyvaReplica",
]
