"""Protocol message types and their wire-size model.

Sizes follow the paper's measurements (§4): with a batch size of 100,
pre-prepare messages are 5.4 kB, commit certificates 6.4 kB (a
pre-prepare plus seven commit messages), client responses 1.5 kB, and
all other messages 250 B.  The per-component constants below reproduce
those numbers exactly at batch 100 and extrapolate linearly for other
batch sizes, which is how the batching experiment (Figure 13) scales.

Every message implements ``size_bytes()`` (consumed by the network's
bandwidth model) and ``payload()`` (a canonical primitive tuple used for
digests, signatures, and MACs).  Messages that the paper signs — client
requests, commit messages, remote view-change requests, and anything
else that gets forwarded — carry :class:`~repro.crypto.signatures.
Signature` objects; everything else is MAC-authenticated by the
transport layer in :mod:`repro.consensus.replica`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Tuple, TypeVar

from ..crypto.digests import CachedEncodable
from ..crypto.signatures import Signature
from ..errors import InvalidCertificateError
from ..ledger.block import Batch, batch_digest
from ..types import ClusterId, NodeId, RoundId, SeqNum, ViewId

if TYPE_CHECKING:  # pragma: no cover
    from ..crypto.signatures import KeyRegistry
    from ..crypto.threshold import (
        SignatureShare,
        ThresholdScheme,
        ThresholdSignature,
    )

#: adopt_encoding returns its first argument unchanged (fluent use).
_M = TypeVar("_M", bound=CachedEncodable)

# ---------------------------------------------------------------------------
# Wire-size constants (calibrated to paper §4 at batch size 100).
# ---------------------------------------------------------------------------
TXN_BYTES = 52             # per-transaction share of a request/pre-prepare
REQUEST_HEADER_BYTES = 104  # request envelope + client signature
PREPREPARE_OVERHEAD_BYTES = 96  # view/seq/digest/MAC on top of the request
COMMIT_ENTRY_BYTES = 143   # one signed commit inside a certificate
SMALL_MESSAGE_BYTES = 250  # prepare/commit/checkpoint/votes/...
REPLY_HEADER_BYTES = 100   # client reply envelope
REPLY_TXN_BYTES = 14       # per-transaction share of a client reply
CERT_SHARE_OVERHEAD_BYTES = 50  # global-share framing around a certificate


def request_size_bytes(batch_len: int) -> int:
    """Wire size of a signed client request batch."""
    return REQUEST_HEADER_BYTES + TXN_BYTES * batch_len


def preprepare_size_bytes(batch_len: int) -> int:
    """Wire size of a pre-prepare carrying a ``batch_len`` request.

    5400 bytes at batch 100, matching the paper.
    """
    return request_size_bytes(batch_len) + PREPREPARE_OVERHEAD_BYTES


def reply_size_bytes(batch_len: int) -> int:
    """Wire size of a client reply (1500 bytes at batch 100)."""
    return REPLY_HEADER_BYTES + REPLY_TXN_BYTES * batch_len


# ---------------------------------------------------------------------------
# Client traffic
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ClientRequestBatch(CachedEncodable):
    """A signed batch of transactions, ``<T>_c`` in the paper.

    ``batch_id`` is globally unique (client id + client-local counter).
    """

    __slots__ = ("batch_id", "client", "batch", "signature")

    batch_id: str
    client: NodeId
    batch: Batch
    signature: Optional[Signature]

    def payload(self) -> tuple:
        # Embedding the Transaction objects (not their payload() tuples)
        # is byte-identical under canonical encoding and lets the encoder
        # splice each transaction's cached bytes.
        return (
            "request",
            self.batch_id,
            str(self.client),
            self.batch,
        )

    def digest(self) -> bytes:
        """Digest of the carried transaction batch (cached: the batch is
        immutable and the digest is recomputed at every protocol hop).
        The cache rides in a slot declared on :class:`CachedEncodable`,
        so it works whether or not the subclass has a ``__dict__``."""
        try:
            return self._digest_cache
        except AttributeError:
            cached = batch_digest(self.batch)
            object.__setattr__(self, "_digest_cache", cached)
            return cached

    def size_bytes(self) -> int:
        return request_size_bytes(len(self.batch))


@dataclass(frozen=True)
class ClientReply(CachedEncodable):
    """Execution confirmation sent to the requesting client (§2.4).

    Clients accept a result once ``f + 1`` replicas sent replies with
    matching ``results_digest``.
    """

    __slots__ = ("batch_id", "replica", "cluster_id", "round_id",
                 "results_digest", "batch_len")

    batch_id: str
    replica: NodeId
    cluster_id: ClusterId
    round_id: RoundId
    results_digest: bytes
    batch_len: int

    def payload(self) -> tuple:
        return (
            "reply",
            self.batch_id,
            str(self.replica),
            self.cluster_id,
            self.round_id,
            self.results_digest,
        )

    def size_bytes(self) -> int:
        return reply_size_bytes(self.batch_len)


# ---------------------------------------------------------------------------
# PBFT (local replication, §2.2)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PrePrepare(CachedEncodable):
    """Primary's proposal of a request for (view, seq)."""

    __slots__ = ("cluster_id", "view", "seq", "digest", "request")

    cluster_id: ClusterId
    view: ViewId
    seq: SeqNum
    digest: bytes
    request: ClientRequestBatch

    def payload(self) -> tuple:
        return (
            "preprepare",
            self.cluster_id,
            self.view,
            self.seq,
            self.digest,
        )

    def size_bytes(self) -> int:
        return preprepare_size_bytes(len(self.request.batch))


@dataclass(frozen=True)
class Prepare(CachedEncodable):
    """Backup's first-phase agreement message (MAC-authenticated)."""

    __slots__ = ("cluster_id", "view", "seq", "digest", "replica")

    cluster_id: ClusterId
    view: ViewId
    seq: SeqNum
    digest: bytes
    replica: NodeId

    def payload(self) -> tuple:
        return (
            "prepare",
            self.cluster_id,
            self.view,
            self.seq,
            self.digest,
            str(self.replica),
        )

    def size_bytes(self) -> int:
        return SMALL_MESSAGE_BYTES


@dataclass(frozen=True)
class Commit(CachedEncodable):
    """Second-phase commit message — *signed*, because ``n - f`` of these
    form the forwarded commit certificate (§2.2)."""

    __slots__ = ("cluster_id", "view", "seq", "digest", "replica",
                 "signature")

    cluster_id: ClusterId
    view: ViewId
    seq: SeqNum
    digest: bytes
    replica: NodeId
    signature: Optional[Signature]

    def payload(self) -> tuple:
        return (
            "commit",
            self.cluster_id,
            self.view,
            self.seq,
            self.digest,
            str(self.replica),
        )

    def size_bytes(self) -> int:
        return SMALL_MESSAGE_BYTES


@dataclass(frozen=True)
class CommitCertificate(CachedEncodable):
    """Proof of local replication: the request plus ``n - f`` signed,
    identical commit messages from distinct replicas — ``[<T>_c, rho]_C``
    in the paper."""

    __slots__ = ("cluster_id", "round_id", "view", "request",
                 "commits", "_verified_quorum")

    cluster_id: ClusterId
    round_id: RoundId
    view: ViewId
    request: ClientRequestBatch
    commits: Tuple[Commit, ...]

    def payload(self) -> tuple:
        # Child messages ride as objects so their cached encodings are
        # spliced in; the bytes are identical to encoding their payloads.
        return (
            "certificate",
            self.cluster_id,
            self.round_id,
            self.view,
            self.request,
            self.commits,
        )

    def size_bytes(self) -> int:
        return (
            preprepare_size_bytes(len(self.request.batch))
            + COMMIT_ENTRY_BYTES * len(self.commits)
        )

    def digest(self) -> bytes:
        """Digest of the certificate (cached; certificates are immutable
        and hashed into every block that carries them)."""
        return self.payload_digest()

    def verify(self, registry: "KeyRegistry", quorum: int,
               members: Optional[Iterable[NodeId]] = None) -> None:
        """Validate structure and signatures.

        Checks: at least ``quorum`` commits, all from distinct replicas
        of the certifying cluster, all for the same (view, seq, digest)
        matching the embedded request, each with a valid signature.
        Raises :class:`InvalidCertificateError` on any violation —
        callers treat that as "discard the message".

        ``members`` overrides the signer-membership check for groups
        whose members' node ids do not carry the group id (the flat
        PBFT baseline spans regions under one synthetic group id).

        Successful verification is memoized on the instance: the
        simulator hands the *same* certificate object to every replica
        that receives it (directly or in a forwarded share), and the
        outcome is a pure function of the certificate's contents and
        the deployment PKI, so one full scan serves all later receivers
        asking for the same or a smaller quorum.  Failures are never
        memoized, and the ``members``-override path (cold) always
        re-scans.
        """
        if members is None:
            if verified_quorum(self) >= quorum:
                return
        if len(self.commits) < quorum:
            raise InvalidCertificateError(
                f"certificate has {len(self.commits)} commits, needs {quorum}"
            )
        expected_digest = self.request.digest()
        member_set = set(members) if members is not None else None
        signers = set()
        for commit in self.commits:
            if commit.cluster_id != self.cluster_id:
                raise InvalidCertificateError("commit from foreign cluster")
            if commit.digest != expected_digest:
                raise InvalidCertificateError("commit digest mismatch")
            if member_set is not None:
                if commit.replica not in member_set:
                    raise InvalidCertificateError("signer outside group")
            elif commit.replica.cluster != self.cluster_id:
                raise InvalidCertificateError("signer outside cluster")
            if commit.signature is None:
                raise InvalidCertificateError("unsigned commit in certificate")
            if commit.signature.signer != commit.replica:
                raise InvalidCertificateError("signature/replica mismatch")
            if not registry.verify(commit, commit.signature):
                raise InvalidCertificateError(
                    f"bad commit signature from {commit.replica}"
                )
            signers.add(commit.replica)
        if len(signers) < quorum:
            raise InvalidCertificateError(
                f"only {len(signers)} distinct signers, needs {quorum}"
            )
        if members is None:
            note_verified_quorum(self, len(signers))


def verified_quorum(cert: object) -> int:
    """Return the memoized distinct-valid-signer count for *cert*.

    The simulator hands the *same* certificate object to every replica
    that receives it, and a signature scan's outcome is a pure function
    of the certificate's contents and the deployment PKI, so hosts
    memoize the distinct-valid-signer count of a completed scan on the
    instance.  ``0`` means nothing has been verified yet.  The memo is
    host-side bookkeeping only: it is never encoded, and simulated
    verification cost is charged from the message's contents, not from
    the memo.
    """
    return int(getattr(cert, "_verified_quorum", 0))


def note_verified_quorum(cert: object, signers: int) -> None:
    """Record *signers* distinct valid signatures on *cert*.

    The memo is monotonic: a scan against a smaller quorum must never
    erase evidence gathered against a larger one, and failed scans are
    recorded nowhere at all — a later receiver with a stricter
    threshold re-scans from the certificate itself.
    """
    if signers > int(getattr(cert, "_verified_quorum", 0)):
        object.__setattr__(cert, "_verified_quorum", signers)


def adopt_encoding(signed: _M, template: CachedEncodable) -> _M:
    """Carry a template's cached canonical encoding onto its signed copy.

    The sign-then-rebuild pattern (``m = T(..., None)`` then
    ``T(..., sign(m))``) produces two instances whose ``payload()`` is
    identical whenever the type's payload excludes the signature field
    (Commit, Checkpoint, HsVote, SpecResponse...).  Signing already
    encoded the template, so the signed copy can reuse those bytes
    instead of re-walking the payload at its first MAC/verify.  Only
    call this for types whose ``payload()`` ignores ``signature``.
    """
    for name in ("_encoded_cache", "_payload_digest_cache"):
        try:
            value = getattr(template, name)
        except AttributeError:
            continue
        object.__setattr__(signed, name, value)
    return signed


@dataclass(frozen=True)
class Checkpoint(CachedEncodable):
    """Periodic signed state attestation used for garbage collection and
    recovery (§2.2, §4.3)."""

    __slots__ = ("cluster_id", "seq", "state_digest", "replica",
                 "signature")

    cluster_id: ClusterId
    seq: SeqNum
    state_digest: bytes
    replica: NodeId
    signature: Optional[Signature]

    def payload(self) -> tuple:
        return (
            "checkpoint",
            self.cluster_id,
            self.seq,
            self.state_digest,
            str(self.replica),
        )

    def size_bytes(self) -> int:
        return SMALL_MESSAGE_BYTES


@dataclass(frozen=True)
class PreparedEntry(CachedEncodable):
    """A slot a replica claims prepared, carried inside view changes."""

    __slots__ = ("view", "seq", "digest", "request")

    view: ViewId
    seq: SeqNum
    digest: bytes
    request: ClientRequestBatch

    def payload(self) -> tuple:
        return ("prepared", self.view, self.seq, self.digest)

    def size_bytes(self) -> int:
        return preprepare_size_bytes(len(self.request.batch))


@dataclass(frozen=True)
class ViewChange(CachedEncodable):
    """Vote to replace the primary with that of ``new_view`` (§2.2)."""

    __slots__ = ("cluster_id", "new_view", "last_stable_seq", "prepared",
                 "replica", "signature")

    cluster_id: ClusterId
    new_view: ViewId
    last_stable_seq: SeqNum
    prepared: Tuple[PreparedEntry, ...]
    replica: NodeId
    signature: Optional[Signature]

    def payload(self) -> tuple:
        return (
            "viewchange",
            self.cluster_id,
            self.new_view,
            self.last_stable_seq,
            self.prepared,
            str(self.replica),
        )

    def size_bytes(self) -> int:
        return SMALL_MESSAGE_BYTES + sum(
            entry.size_bytes() for entry in self.prepared
        )


@dataclass(frozen=True)
class NewView(CachedEncodable):
    """New primary's installation message for ``new_view``."""

    __slots__ = ("cluster_id", "new_view", "view_change_replicas",
                 "preprepares", "replica")

    cluster_id: ClusterId
    new_view: ViewId
    view_change_replicas: Tuple[NodeId, ...]
    preprepares: Tuple[PrePrepare, ...]
    replica: NodeId

    def payload(self) -> tuple:
        return (
            "newview",
            self.cluster_id,
            self.new_view,
            tuple(str(r) for r in self.view_change_replicas),
            self.preprepares,
            str(self.replica),
        )

    def size_bytes(self) -> int:
        return SMALL_MESSAGE_BYTES + sum(
            p.size_bytes() for p in self.preprepares
        )


# ---------------------------------------------------------------------------
# GeoBFT inter-cluster traffic (§2.3)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GlobalShare(CachedEncodable):
    """The optimistic global-sharing message ``m = (<T>_c, [<T>_c, rho]_C)``
    sent by a primary to ``f + 1`` replicas of each remote cluster, then
    re-broadcast locally (Figure 5)."""

    __slots__ = ("round_id", "cluster_id", "certificate", "forwarded")

    round_id: RoundId
    cluster_id: ClusterId
    certificate: CommitCertificate
    #: True while crossing clusters, False for the local re-broadcast —
    #: only used by metrics to classify traffic.  No default: __slots__
    #: on a frozen dataclass forbids class-body defaults, so callers
    #: state the direction explicitly.
    forwarded: bool

    def payload(self) -> tuple:
        return (
            "globalshare",
            self.round_id,
            self.cluster_id,
            self.certificate,
        )

    def size_bytes(self) -> int:
        return self.certificate.size_bytes() + CERT_SHARE_OVERHEAD_BYTES


@dataclass(frozen=True)
class Drvc(CachedEncodable):
    """"Detect remote view change": local agreement that a remote cluster
    failed to send its round-``rho`` share (Figure 7, initiation role)."""

    __slots__ = ("target_cluster", "round_id", "vc_count", "replica")

    target_cluster: ClusterId
    round_id: RoundId
    vc_count: int
    replica: NodeId

    def payload(self) -> tuple:
        return (
            "drvc",
            self.target_cluster,
            self.round_id,
            self.vc_count,
            str(self.replica),
        )

    def size_bytes(self) -> int:
        return SMALL_MESSAGE_BYTES


@dataclass(frozen=True)
class Rvc(CachedEncodable):
    """Signed remote view-change request sent across clusters; forwarded
    inside the target cluster, hence signed (Figure 7)."""

    __slots__ = ("target_cluster", "round_id", "vc_count", "replica",
                 "signature")

    target_cluster: ClusterId
    round_id: RoundId
    vc_count: int
    replica: NodeId
    signature: Optional[Signature]

    def payload(self) -> tuple:
        return (
            "rvc",
            self.target_cluster,
            self.round_id,
            self.vc_count,
            str(self.replica),
        )

    def size_bytes(self) -> int:
        return SMALL_MESSAGE_BYTES


# ---------------------------------------------------------------------------
# Zyzzyva (§3 "Other protocols")
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OrderedRequest(CachedEncodable):
    """Zyzzyva primary's ordered forward of a client request."""

    __slots__ = ("view", "seq", "history_digest", "request")

    view: ViewId
    seq: SeqNum
    history_digest: bytes
    request: ClientRequestBatch

    def payload(self) -> tuple:
        return ("orderedreq", self.view, self.seq, self.history_digest)

    def size_bytes(self) -> int:
        return preprepare_size_bytes(len(self.request.batch))


@dataclass(frozen=True)
class SpecResponse(CachedEncodable):
    """Replica's signed speculative response, sent straight to the client."""

    __slots__ = ("view", "seq", "batch_id", "history_digest",
                 "results_digest", "replica", "signature", "batch_len")

    view: ViewId
    seq: SeqNum
    batch_id: str
    history_digest: bytes
    results_digest: bytes
    replica: NodeId
    signature: Optional[Signature]
    batch_len: int

    def payload(self) -> tuple:
        return (
            "specresponse",
            self.view,
            self.seq,
            self.batch_id,
            self.history_digest,
            self.results_digest,
            str(self.replica),
        )

    def size_bytes(self) -> int:
        return reply_size_bytes(self.batch_len)


@dataclass(frozen=True)
class ZyzzyvaCommitCert(CachedEncodable):
    """Client-assembled certificate of ``2F + 1`` matching speculative
    responses, broadcast when the fast path fails."""

    __slots__ = ("batch_id", "view", "seq", "responses",
                 "_verified_quorum")

    batch_id: str
    view: ViewId
    seq: SeqNum
    responses: Tuple[SpecResponse, ...]

    def payload(self) -> tuple:
        return (
            "zyzzyvacert",
            self.batch_id,
            self.view,
            self.seq,
            self.responses,
        )

    def size_bytes(self) -> int:
        return SMALL_MESSAGE_BYTES + COMMIT_ENTRY_BYTES * len(self.responses)


@dataclass(frozen=True)
class LocalCommit(CachedEncodable):
    """Replica acknowledgement of a Zyzzyva commit certificate."""

    __slots__ = ("view", "seq", "batch_id", "replica")

    view: ViewId
    seq: SeqNum
    batch_id: str
    replica: NodeId

    def payload(self) -> tuple:
        return (
            "localcommit",
            self.view,
            self.seq,
            self.batch_id,
            str(self.replica),
        )

    def size_bytes(self) -> int:
        return SMALL_MESSAGE_BYTES


# ---------------------------------------------------------------------------
# HotStuff (§3 "Other protocols": no threshold signatures, every replica
# acts as a primary in parallel)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HsQuorumCert(CachedEncodable):
    """Quorum certificate: ``N - F`` vote signatures.  Without threshold
    signatures its size is linear in the quorum — the cost the paper
    calls out."""

    __slots__ = ("phase", "instance", "height", "digest", "signatures",
                 "_verified_quorum")

    phase: str
    instance: int
    height: int
    digest: bytes
    signatures: Tuple[Signature, ...]

    def payload(self) -> tuple:
        return ("hsqc", self.phase, self.instance, self.height, self.digest)

    def size_bytes(self) -> int:
        return 32 + sum(sig.size_bytes() for sig in self.signatures)


@dataclass(frozen=True)
class HsProposal(CachedEncodable):
    """Leader broadcast for one HotStuff phase of one instance."""

    __slots__ = ("phase", "instance", "height", "digest", "request",
                 "justify")

    phase: str  # "prepare" | "precommit" | "commit" | "decide"
    instance: int
    height: int
    digest: bytes
    request: Optional[ClientRequestBatch]
    justify: Optional[HsQuorumCert]

    def payload(self) -> tuple:
        return (
            "hsproposal",
            self.phase,
            self.instance,
            self.height,
            self.digest,
        )

    def size_bytes(self) -> int:
        size = SMALL_MESSAGE_BYTES
        if self.request is not None:
            size += request_size_bytes(len(self.request.batch))
        if self.justify is not None:
            size += self.justify.size_bytes()
        return size


@dataclass(frozen=True)
class HsVote(CachedEncodable):
    """Signed phase vote returned to the instance leader."""

    __slots__ = ("phase", "instance", "height", "digest", "replica",
                 "signature")

    phase: str
    instance: int
    height: int
    digest: bytes
    replica: NodeId
    signature: Optional[Signature]

    def payload(self) -> tuple:
        return (
            "hsvote",
            self.phase,
            self.instance,
            self.height,
            self.digest,
            str(self.replica),
        )

    def size_bytes(self) -> int:
        return SMALL_MESSAGE_BYTES


# ---------------------------------------------------------------------------
# Steward (§3 "Other protocols": hierarchical, primary cluster)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StewardForward(CachedEncodable):
    """A site's locally agreed-upon request forwarded to the primary
    cluster for global ordering, with the site's local proof."""

    __slots__ = ("origin_cluster", "local_seq", "request",
                 "certificate")

    origin_cluster: ClusterId
    local_seq: SeqNum
    request: ClientRequestBatch
    certificate: CommitCertificate

    def payload(self) -> tuple:
        return (
            "stewardforward",
            self.origin_cluster,
            self.local_seq,
            self.certificate,
        )

    def size_bytes(self) -> int:
        return self.certificate.size_bytes() + CERT_SHARE_OVERHEAD_BYTES


@dataclass(frozen=True)
class StewardGlobalOrder(CachedEncodable):
    """The primary cluster's globally ordered assignment, disseminated to
    every site (then locally broadcast)."""

    __slots__ = ("global_seq", "origin_cluster", "request", "certificate",
                 "forwarded")

    global_seq: SeqNum
    origin_cluster: ClusterId
    request: ClientRequestBatch
    certificate: CommitCertificate
    #: True once forwarded across sites (see GlobalShare.forwarded).
    forwarded: bool

    def payload(self) -> tuple:
        return (
            "stewardorder",
            self.global_seq,
            self.origin_cluster,
            self.certificate,
        )

    def size_bytes(self) -> int:
        return self.certificate.size_bytes() + CERT_SHARE_OVERHEAD_BYTES


# ---------------------------------------------------------------------------
# Checkpoint catch-up (PBFT state transfer analogue)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FetchDecision(CachedEncodable):
    """A laggard's request for a decided (request, certificate) pair.

    Sent when a stable checkpoint proves the group decided sequence
    numbers this replica missed (Castro & Liskov recover such replicas
    via state transfer; here the commit certificate lets the decision
    itself be transferred Byzantine-safely)."""

    __slots__ = ("cluster_id", "seq", "replica")

    cluster_id: ClusterId
    seq: SeqNum
    replica: NodeId

    def payload(self) -> tuple:
        return ("fetchdecision", self.cluster_id, self.seq,
                str(self.replica))

    def size_bytes(self) -> int:
        return SMALL_MESSAGE_BYTES


@dataclass(frozen=True)
class DecisionTransfer(CachedEncodable):
    """Reply to :class:`FetchDecision`: the certified decision itself.

    The embedded commit certificate proves authenticity, so the laggard
    can accept it from any single peer."""

    __slots__ = ("cluster_id", "seq", "request", "certificate")

    cluster_id: ClusterId
    seq: SeqNum
    request: ClientRequestBatch
    certificate: CommitCertificate

    def payload(self) -> tuple:
        return ("decisiontransfer", self.cluster_id, self.seq,
                self.certificate)

    def size_bytes(self) -> int:
        return self.certificate.size_bytes() + CERT_SHARE_OVERHEAD_BYTES


# ---------------------------------------------------------------------------
# Threshold-signature commit certificates (paper §2.2, optional)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CertShare(CachedEncodable):
    """One replica's threshold-signature share over a decided round.

    In threshold mode, replicas send these to their primary after
    deciding a round; the primary combines ``n - f`` of them into a
    constant-size :class:`ThresholdCommitCertificate`."""

    __slots__ = ("cluster_id", "round_id", "digest", "replica", "share")

    cluster_id: ClusterId
    round_id: RoundId
    digest: bytes
    replica: NodeId
    share: "SignatureShare"

    def payload(self) -> tuple:
        return ("certshare", self.cluster_id, self.round_id, self.digest,
                str(self.replica))

    def size_bytes(self) -> int:
        return SMALL_MESSAGE_BYTES


def certificate_statement(cluster_id: ClusterId, round_id: RoundId,
                          digest: bytes) -> tuple:
    """The statement a threshold certificate signs: cluster C committed
    the request with ``digest`` in round ``rho``."""
    return ("threshold-cert", cluster_id, round_id, digest)


@dataclass(frozen=True)
class ThresholdCommitCertificate(CachedEncodable):
    """Constant-size proof of local replication (§2.2): the client
    request plus a single threshold signature by ``n - f`` cluster
    members over :func:`certificate_statement`.

    Drop-in alternative to :class:`CommitCertificate` for inter-cluster
    sharing: its size is independent of ``f``."""

    __slots__ = ("cluster_id", "round_id", "view", "request", "signature",
                 "_verified_scheme")

    cluster_id: ClusterId
    round_id: RoundId
    view: ViewId
    request: ClientRequestBatch
    signature: "ThresholdSignature"

    def payload(self) -> tuple:
        return (
            "thresholdcert",
            self.cluster_id,
            self.round_id,
            self.view,
            self.request,
            self.signature.tag,
        )

    def size_bytes(self) -> int:
        return (preprepare_size_bytes(len(self.request.batch))
                + self.signature.size_bytes())

    def digest(self) -> bytes:
        """Digest of the certificate (cached, as for the classic form)."""
        return self.payload_digest()

    def verify_threshold(self, scheme: "ThresholdScheme") -> None:
        """Validate against the cluster's threshold scheme.

        Raises :class:`InvalidCertificateError` on mismatch.  A
        successful check is memoized per scheme object (certificates are
        immutable and shared across the replicas of a simulation, so
        each receiver after the first gets the scan for free)."""
        if getattr(self, "_verified_scheme", None) is scheme:
            return
        statement = certificate_statement(
            self.cluster_id, self.round_id, self.request.digest())
        if not scheme.verify(self.signature, statement):
            raise InvalidCertificateError(
                f"invalid threshold certificate from cluster "
                f"{self.cluster_id}"
            )
        object.__setattr__(self, "_verified_scheme", scheme)
