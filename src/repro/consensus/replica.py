"""Replica runtime: CPU model, authenticated transport, timers.

Paper §3 describes ResilientDB's multi-threaded pipelined architecture:
input threads verify and enqueue messages, worker/certify/execute
threads run the protocol, output threads send.  The performance-relevant
consequence is that each replica has a bounded amount of CPU that every
message must pass through, and crypto work competes for it.  The
:class:`CpuModel` captures that with a small pool of simulated cores;
message handling is delayed until a core is free and has spent the
message's processing cost.

:class:`BaseReplica` is the common runtime for every protocol replica:
it owns the signer, the MAC authenticator, the ledger, the execution
engine, and helpers to send/broadcast with CPU accounting.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Iterable, List, Optional, Sequence

from ..crypto.costs import CryptoCostModel
from ..crypto.macs import MacAuthenticator
from ..crypto.signatures import KeyRegistry, Signer
from ..ledger.blockchain import Blockchain
from ..ledger.execution import ExecutionEngine
from ..ledger.store import YcsbStore
from ..net.network import Network
from ..net.simulator import Simulation, Timer
from ..types import NodeId

DEFAULT_CORES = 4  # worker + certify + execute + I/O of the paper's design


class CpuModel:
    """A pool of simulated cores with earliest-available scheduling.

    ``acquire(cost)`` books ``cost`` seconds on the soonest-free core and
    returns the completion time.  This approximates the paper's
    pipelined thread architecture: independent messages are processed in
    parallel up to the core count, beyond which they queue.
    """

    __slots__ = ("_sim", "_free_at")

    def __init__(self, sim: Simulation, cores: int = DEFAULT_CORES):
        self._sim = sim
        self._free_at: List[float] = [0.0] * max(1, cores)
        heapq.heapify(self._free_at)

    def acquire(self, cost: float) -> float:
        """Book ``cost`` seconds of CPU; returns absolute completion time."""
        soonest = heapq.heappop(self._free_at)
        start = max(soonest, self._sim.now)
        done = start + cost
        heapq.heappush(self._free_at, done)
        return done

    def utilization_horizon(self) -> float:
        """Latest booked completion time (diagnostics)."""
        return max(self._free_at)


class BaseReplica:
    """Common runtime shared by all protocol replicas.

    Subclasses implement :meth:`handle` (protocol logic) and may override
    :meth:`message_cost` to charge protocol-specific verification work.
    """

    def __init__(self,
                 node_id: NodeId,
                 region: str,
                 sim: Simulation,
                 network: Network,
                 registry: KeyRegistry,
                 costs: Optional[CryptoCostModel] = None,
                 cores: int = DEFAULT_CORES,
                 record_count: int = 1000,
                 metrics=None,
                 instrumentation=None):
        self._node_id = node_id
        self._region = region
        self._sim = sim
        self._network = network
        self._registry = registry
        self._costs = costs or CryptoCostModel()
        self._cpu = CpuModel(sim, cores)
        self._signer: Signer = registry.register(node_id)
        # MAC verification outcomes share the deployment-wide memo held
        # by the PKI, so re-checked tags cost one HMAC host-side.
        self._mac = MacAuthenticator(node_id, cache=registry.verification_cache)
        self._store = YcsbStore(record_count)
        self._executor = ExecutionEngine(self._store)
        self._ledger = Blockchain()
        self._metrics = metrics
        # Optional observability hub (None when tracing is disabled).
        # Set before subclass __init__ bodies run, so engines built
        # there can snapshot it via ``getattr(owner, "instrumentation")``.
        self._instrumentation = instrumentation
        # The dedicated execute thread of the paper's pipeline (§3):
        # batches execute serially on this lane, independent of the
        # worker cores.
        self._exec_free_at = 0.0
        # Constant worker-pool cost of ingesting one message (the
        # default message_cost); precomputed once per replica.
        self._base_ingest_cost = (self._costs.message_overhead
                                  + self._costs.mac_verify)
        # deliver() skips the message_cost call entirely when the
        # subclass keeps the default flat ingest cost.
        self._flat_ingest = (type(self).message_cost
                             is BaseReplica.message_cost)
        # Direct reference to the failure model's crash set (mutated in
        # place, never replaced) — checked on every dispatch.
        self._crashed_nodes = network.failures._crashed
        # Message classes whose certify cost is a constant for this
        # replica (e.g. every Commit costs one signature verify).
        # Subclasses populate it; classes absent from the dict fall
        # through to the full verification_cost call.
        self._const_verify_costs: dict = {}
        # The dedicated certify thread (§3, Figure 9): all signature
        # verification serializes here.  This is the ceiling that keeps
        # signature-heavy protocols (HotStuff QCs without threshold
        # signatures, Steward's RSA-era proofs) from scaling.
        self._certify_free_at = 0.0
        network.register(self)

    # ------------------------------------------------------------------
    # Identity / wiring accessors
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> NodeId:
        """This replica's address."""
        return self._node_id

    @property
    def region(self) -> str:
        """The region (cluster location) this replica runs in."""
        return self._region

    @property
    def sim(self) -> Simulation:
        """The simulation clock."""
        return self._sim

    @property
    def network(self) -> Network:
        """The network this replica is attached to."""
        return self._network

    @property
    def registry(self) -> KeyRegistry:
        """The deployment PKI."""
        return self._registry

    @property
    def costs(self) -> CryptoCostModel:
        """CPU cost model for crypto operations."""
        return self._costs

    @property
    def signer(self) -> Signer:
        """This replica's private signing handle."""
        return self._signer

    @property
    def ledger(self) -> Blockchain:
        """This replica's full copy of the blockchain."""
        return self._ledger

    @property
    def executor(self) -> ExecutionEngine:
        """Deterministic execution engine over the local store."""
        return self._executor

    @property
    def store(self) -> YcsbStore:
        """The local YCSB table."""
        return self._store

    @property
    def metrics(self):
        """Experiment metrics sink (may be ``None``)."""
        return self._metrics

    @property
    def instrumentation(self):
        """Observability hub (``None`` when tracing is disabled)."""
        return self._instrumentation

    # ------------------------------------------------------------------
    # Inbound path
    # ------------------------------------------------------------------
    def deliver(self, message, sender: NodeId) -> None:
        """Network entry point: charge CPU, then dispatch to ``handle``.

        The message first passes the worker pool (deserialize + MAC),
        then — if it carries signatures — the serial certify thread.
        A crashed replica (per the failure model) never gets here — the
        network drops deliveries to crashed nodes.
        """
        if self._flat_ingest:
            cost = self._base_ingest_cost
        else:
            cost = self.message_cost(message, sender)
        # CpuModel.acquire, inlined: this is the single hottest replica
        # call site (every delivery), so the heap ops run without an
        # extra Python frame.
        sim = self._sim
        now = sim._now
        cpu_free = self._cpu._free_at
        soonest = heappop(cpu_free)
        start = soonest if soonest > now else now
        done = start + cost
        heappush(cpu_free, done)
        verify_cost = self._const_verify_costs.get(message.__class__)
        if verify_cost is None:
            verify_cost = self.verification_cost(message, sender)
        if verify_cost > 0:
            certify_free = self._certify_free_at
            start = certify_free if certify_free > done else done
            done = start + verify_cost
            self._certify_free_at = done
        # Dispatches are never cancelled: use the allocation-free path.
        sim.post(done - now, self._dispatch, message, sender)

    def _dispatch(self, message, sender: NodeId) -> None:
        # Inlined FailureModel.is_crashed (the model instance — and its
        # crash set — live for the whole deployment).
        if self._node_id in self._crashed_nodes:
            return
        self.handle(message, sender)

    def message_cost(self, message, sender: NodeId) -> float:
        """Worker-pool CPU seconds to ingest ``message``.

        Default: per-message overhead plus one MAC verification (all
        transport is authenticated).
        """
        return self._base_ingest_cost

    def verification_cost(self, message, sender: NodeId) -> float:
        """Certify-thread seconds ``message`` needs before handling.

        Protocol replicas override this with the number of digital
        signatures the message carries (client signatures, commit
        signatures, quorum certificates...).  The work serializes on a
        single simulated thread, mirroring the paper's architecture.
        """
        return 0.0

    def certify_backlog(self) -> float:
        """Outstanding certify-thread work, in seconds (diagnostics)."""
        return max(0.0, self._certify_free_at - self._sim.now)

    def handle(self, message, sender: NodeId) -> None:
        """Protocol logic — implemented by subclasses."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Outbound path
    # ------------------------------------------------------------------
    def charge_cpu(self, cost: float) -> None:
        """Book CPU work (signing, hashing, execution) without blocking
        the current handler; future messages queue behind it."""
        if cost > 0:
            self._cpu.acquire(cost)

    def send(self, dst: NodeId, message) -> None:
        """Send one MAC-authenticated message (charges MAC creation)."""
        self.charge_cpu(self._costs.mac_create)
        self._network.send(self._node_id, dst, message)

    def broadcast(self, dsts: Iterable[NodeId], message,
                  include_self: bool = False) -> None:
        """Send ``message`` to every distinct destination (one MAC each).

        By convention a replica processes its own broadcast locally
        without a network hop unless ``include_self`` is set.  Routed
        through :meth:`Network.multicast` so paper-scale fan-outs take
        the network's single-pass fast path.
        """
        me = self._node_id
        targets = [dst for dst in dict.fromkeys(dsts)
                   if include_self or dst != me]
        # Already distinct: skip the public multicast's dedup pass.
        self._network._multicast_distinct(me, targets, message)
        self.charge_cpu(self._costs.mac_create * len(targets))

    def sign(self, payload) -> "object":
        """Sign a payload, charging signature CPU cost."""
        self.charge_cpu(self._costs.sign)
        return self._signer.sign(payload)

    def set_timer(self, delay: float, fn, *args) -> Timer:
        """Schedule a cancellable protocol timer."""
        return self._sim.schedule(delay, fn, *args)

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def execute_batch(self, batch: Sequence) -> "tuple[list, float]":
        """Execute a batch on the serial execution lane.

        Returns ``(results, done_at)``: the deterministic results plus
        the simulated time at which the execute thread finishes the
        batch.  Callers schedule client replies at ``done_at`` so that
        execution backlog shows up in client latency, exactly as a
        saturated execute thread does in the real system.
        """
        cost = self._costs.execute_txn * len(batch)
        start = max(self._exec_free_at, self._sim.now)
        done_at = start + cost
        self._exec_free_at = done_at
        results = self._executor.execute_batch(tuple(batch))
        if self._metrics is not None:
            self._metrics.record_executed(self._node_id, len(batch),
                                          self._sim.now)
        return results, done_at

    def send_at(self, when: float, dst: NodeId, message) -> None:
        """Send ``message`` at absolute simulated time ``when`` (used to
        defer client replies until the execute thread catches up)."""
        delay = max(0.0, when - self._sim.now)
        if delay <= 0:
            self.send(dst, message)
        else:
            self._sim.post(delay, self.send, dst, message)
