"""Zyzzyva: speculative BFT (paper §1.1, §3 "Other protocols").

Zyzzyva is designed for the fault-free optimum: the primary orders a
client request and forwards it; replicas *speculatively* execute it and
respond straight to the client.  The client completes only on identical
responses from **all** ``N`` replicas.  If it collects at least
``2F + 1`` (but not all ``N``) matching responses before its timeout, it
assembles a commit certificate from them and broadcasts it; replicas
acknowledge with local-commits and the client completes on ``2F + 1``
acknowledgements.

The consequences the paper measures (§4.3): with even one crashed
replica the all-``N`` fast path can never complete, every request eats a
full client timeout plus an extra client-driven round trip, and
throughput plummets toward zero.  This implementation reproduces that
behaviour.  Like the paper's own implementation, Zyzzyva's view change
is not exercised (it is excluded from the primary-failure experiment).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..crypto.digests import chain_digest
from ..errors import ConfigurationError
from ..net.network import Network
from ..net.simulator import Simulation, Timer
from ..types import NodeId, SeqNum, max_faulty
from .messages import (
    ClientRequestBatch,
    LocalCommit,
    OrderedRequest,
    SpecResponse,
    ZyzzyvaCommitCert,
    adopt_encoding,
    note_verified_quorum,
    verified_quorum,
)
from .replica import BaseReplica


class ZyzzyvaReplica(BaseReplica):
    """A Zyzzyva replica: speculative in-order execution."""

    def __init__(self, node_id, region, sim, network, registry,
                 members: List[NodeId], costs=None, cores=4,
                 record_count=1000, metrics=None, instrumentation=None):
        super().__init__(node_id, region, sim, network, registry,
                         costs=costs, cores=cores,
                         record_count=record_count, metrics=metrics,
                         instrumentation=instrumentation)
        self._members = list(members)
        self._n = len(members)
        self._f = max_faulty(self._n)
        self._view = 0
        self._next_seq: SeqNum = 1     # primary-side assignment
        self._last_exec: SeqNum = 0    # replica-side speculative frontier
        self._history: bytes = b"genesis"
        # Every ordered request carries the embedded client signature
        # (see verification_cost); let deliver() skip the call.
        self._const_verify_costs[OrderedRequest] = self.costs.verify
        self._pending_orders: Dict[SeqNum, OrderedRequest] = {}
        self._seen_batch_ids: Set[str] = set()
        self._committed: Set[SeqNum] = set()

    @property
    def primary(self) -> NodeId:
        """The (fixed) primary of the current view."""
        return self._members[self._view % self._n]

    @property
    def is_primary(self) -> bool:
        """Whether this replica orders requests."""
        return self.primary == self.node_id

    @property
    def last_executed_seq(self) -> SeqNum:
        """Highest speculatively executed sequence number."""
        return self._last_exec

    def verification_cost(self, message, sender: NodeId) -> float:
        """Certify-thread work for Zyzzyva's message types."""
        costs = self.costs
        if isinstance(message, ClientRequestBatch):
            return costs.verify if message.signature is not None else 0.0
        if isinstance(message, OrderedRequest):
            return costs.verify  # embedded client signature
        if isinstance(message, ZyzzyvaCommitCert):
            return costs.verify * len(message.responses)
        return 0.0

    def handle(self, message, sender: NodeId) -> None:
        """Route Zyzzyva messages."""
        if isinstance(message, ClientRequestBatch):
            self._on_client_request(message, sender)
        elif isinstance(message, OrderedRequest):
            self._on_ordered_request(message, sender)
        elif isinstance(message, ZyzzyvaCommitCert):
            self._on_commit_cert(message, sender)

    # ------------------------------------------------------------------
    # Primary: ordering
    # ------------------------------------------------------------------
    def _on_client_request(self, request: ClientRequestBatch,
                           sender: NodeId) -> None:
        if not self.is_primary:
            if sender == request.client:
                self.send(self.primary, request)
            return
        if request.batch_id in self._seen_batch_ids:
            return
        if (request.signature is None
                or not self.registry.verify(request,
                                            request.signature)):
            return
        self._seen_batch_ids.add(request.batch_id)
        seq = self._next_seq
        self._next_seq += 1
        instr = self._instrumentation
        if instr is not None:
            instr.phase("proposed", self.node_id, 0, seq)
        self.charge_cpu(self.costs.hash_small)
        history = chain_digest(self._history, seq, request.digest())
        ordered = OrderedRequest(self._view, seq, history, request)
        self.broadcast(self._members, ordered)
        self._accept_order(ordered)

    # ------------------------------------------------------------------
    # Replicas: speculative execution
    # ------------------------------------------------------------------
    def _on_ordered_request(self, msg: OrderedRequest,
                            sender: NodeId) -> None:
        if sender != self.primary or msg.view != self._view:
            return
        request = msg.request
        if (request.signature is None
                or not self.registry.verify(request,
                                            request.signature)):
            return
        self._accept_order(msg)

    def _accept_order(self, msg: OrderedRequest) -> None:
        if msg.seq <= self._last_exec or msg.seq in self._pending_orders:
            return
        self._pending_orders[msg.seq] = msg
        self._drain_executable()

    def _drain_executable(self) -> None:
        while (self._last_exec + 1) in self._pending_orders:
            msg = self._pending_orders.pop(self._last_exec + 1)
            self.charge_cpu(self.costs.hash_small)
            expected = chain_digest(self._history, msg.seq,
                                    msg.request.digest())
            if expected != msg.history_digest:
                return  # divergent history: stall (view change territory)
            self._last_exec = msg.seq
            self._history = expected
            self._speculative_execute(msg)

    def _speculative_execute(self, msg: OrderedRequest) -> None:
        instr = self._instrumentation
        if instr is not None:
            instr.phase("executed", self.node_id, 0, msg.seq)
        request = msg.request
        results, done_at = self.execute_batch(request.batch)
        self.ledger.append(msg.seq, 0, request.batch, msg,
                           batch_digest=request.digest())
        response = SpecResponse(
            view=msg.view,
            seq=msg.seq,
            batch_id=request.batch_id,
            history_digest=msg.history_digest,
            results_digest=self.executor.results_digest(results),
            replica=self.node_id,
            signature=None,
            batch_len=len(request.batch),
        )
        signed = SpecResponse(
            response.view, response.seq, response.batch_id,
            response.history_digest, response.results_digest,
            response.replica, self.sign(response),
            response.batch_len,
        )
        adopt_encoding(signed, response)
        self.send_at(done_at, request.client, signed)

    # ------------------------------------------------------------------
    # Client-driven second phase
    # ------------------------------------------------------------------
    def _on_commit_cert(self, cert: ZyzzyvaCommitCert,
                        sender: NodeId) -> None:
        need = 2 * self._f + 1
        # The client broadcasts one certificate object to all replicas;
        # the structural + signature scan depends only on the
        # certificate and the PKI, so the first receiver's successful
        # scan (distinct matching signers) serves everyone else.
        if verified_quorum(cert) < need:
            if len(cert.responses) < need:
                return
            digests = {r.results_digest for r in cert.responses}
            signers = {r.replica for r in cert.responses}
            if len(digests) != 1 or len(signers) < need:
                return
            for response in cert.responses:
                if response.signature is None or not self.registry.verify(
                    SpecResponse(
                        response.view, response.seq, response.batch_id,
                        response.history_digest, response.results_digest,
                        response.replica, None, response.batch_len,
                    ),
                    response.signature,
                ):
                    return
            note_verified_quorum(cert, len(signers))
        self._committed.add(cert.seq)
        instr = self._instrumentation
        if instr is not None:
            instr.phase("committed", self.node_id, 0, cert.seq)
        ack = LocalCommit(cert.view, cert.seq, cert.batch_id, self.node_id)
        self.send(sender, ack)


class ZyzzyvaClient:
    """Zyzzyva's protocol-specific client.

    Completes on all-``N`` matching speculative responses (fast path) or
    — after ``spec_timeout`` — assembles a commit certificate from
    ``2F + 1`` matching responses and completes on ``2F + 1``
    local-commit acknowledgements.
    """

    def __init__(self,
                 node_id: NodeId,
                 region: str,
                 sim: Simulation,
                 network: Network,
                 registry,
                 workload,
                 batch_size: int,
                 members: List[NodeId],
                 outstanding: int = 4,
                 spec_timeout: float = 0.8,
                 max_batches: Optional[int] = None,
                 metrics=None):
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self._node_id = node_id
        self._region = region
        self._sim = sim
        self._network = network
        self._signer = registry.register(node_id)
        self._workload = workload
        self._batch_size = batch_size
        self._members = list(members)
        self._n = len(members)
        self._f = max_faulty(self._n)
        self._outstanding = outstanding
        self._spec_timeout = spec_timeout
        self._max_batches = max_batches
        self._metrics = metrics

        self._responses: Dict[str, Dict[bytes, Dict[NodeId, SpecResponse]]] = {}
        self._local_commits: Dict[str, Set[NodeId]] = {}
        self._submit_times: Dict[str, float] = {}
        self._requests: Dict[str, ClientRequestBatch] = {}
        self._timers: Dict[str, Timer] = {}
        self._in_commit_phase: Set[str] = set()
        self._submitted = 0
        self._completed = 0
        self._started = False
        network.register(self)

    @property
    def node_id(self) -> NodeId:
        """The client's address."""
        return self._node_id

    @property
    def region(self) -> str:
        """The client's region."""
        return self._region

    @property
    def completed_batches(self) -> int:
        """Batches fully accepted."""
        return self._completed

    def start(self) -> None:
        """Begin the closed loop (idempotent)."""
        if self._started:
            return
        self._started = True
        for _ in range(self._outstanding):
            if not self._submit_next():
                break

    def _submit_next(self) -> bool:
        if (self._max_batches is not None
                and self._submitted >= self._max_batches):
            return False
        batch = self._workload.next_batch(
            self._batch_size, prefix=f"{self._node_id}-"
        )
        batch_id = f"{self._node_id}:{self._submitted}"
        unsigned = ClientRequestBatch(batch_id, self._node_id, batch, None)
        request = ClientRequestBatch(
            batch_id, self._node_id, batch,
            self._signer.sign(unsigned),
        )
        self._requests[batch_id] = request
        self._submit_times[batch_id] = self._sim.now
        self._responses[batch_id] = {}
        self._submitted += 1
        primary = self._members[0]
        self._network.send(self._node_id, primary, request)
        self._timers[batch_id] = self._sim.schedule(
            self._spec_timeout, self._on_spec_timeout, batch_id
        )
        if self._metrics is not None:
            self._metrics.record_submitted(self._node_id, len(batch),
                                           self._sim.now)
        return True

    def deliver(self, message, sender: NodeId) -> None:
        """Receive speculative responses and local commits."""
        if isinstance(message, SpecResponse):
            self._on_spec_response(message, sender)
        elif isinstance(message, LocalCommit):
            self._on_local_commit(message, sender)

    def _on_spec_response(self, response: SpecResponse,
                          sender: NodeId) -> None:
        by_digest = self._responses.get(response.batch_id)
        if by_digest is None or sender != response.replica:
            return
        key = response.results_digest + response.history_digest
        group = by_digest.get(key)
        if group is None:
            group = by_digest[key] = {}
        group[sender] = response
        if len(group) >= self._n:
            self._complete(response.batch_id)

    def _on_spec_timeout(self, batch_id: str) -> None:
        by_digest = self._responses.get(batch_id)
        if by_digest is None or batch_id in self._in_commit_phase:
            return
        best = max(by_digest.values(), key=len, default={})
        if len(best) >= 2 * self._f + 1:
            # Commit phase: broadcast a certificate of 2F + 1 responses.
            self._in_commit_phase.add(batch_id)
            responses = tuple(list(best.values())[: 2 * self._f + 1])
            sample = responses[0]
            cert = ZyzzyvaCommitCert(batch_id, sample.view, sample.seq,
                                     responses)
            self._local_commits[batch_id] = set()
            for member in self._members:
                self._network.send(self._node_id, member, cert)
        else:
            # Not enough responses: retransmit to everyone and wait.
            request = self._requests[batch_id]
            for member in self._members:
                self._network.send(self._node_id, member, request)
        self._timers[batch_id] = self._sim.schedule(
            self._spec_timeout * 2, self._on_spec_timeout, batch_id
        )

    def _on_local_commit(self, message: LocalCommit, sender: NodeId) -> None:
        acks = self._local_commits.get(message.batch_id)
        if acks is None or message.batch_id not in self._responses:
            return
        acks.add(sender)
        if len(acks) >= 2 * self._f + 1:
            self._complete(message.batch_id)

    def _complete(self, batch_id: str) -> None:
        if batch_id not in self._responses:
            return
        del self._responses[batch_id]
        self._in_commit_phase.discard(batch_id)
        self._local_commits.pop(batch_id, None)
        request = self._requests.pop(batch_id)
        timer = self._timers.pop(batch_id, None)
        if timer is not None:
            timer.cancel()
        submitted_at = self._submit_times.pop(batch_id)
        self._completed += 1
        if self._metrics is not None:
            self._metrics.record_completed(
                self._node_id, len(request.batch),
                self._sim.now - submitted_at, self._sim.now,
            )
        self._submit_next()
