"""PBFT: the local replication protocol (paper §2.2).

Two layers live here:

* :class:`PbftEngine` — a reusable three-phase PBFT state machine
  (pre-prepare / prepare / commit) with request batching, pipelined
  sequence slots, checkpoint-based garbage collection, and the local
  view-change protocol.  GeoBFT embeds one engine per cluster for local
  replication; Steward embeds one in its primary cluster; the flat PBFT
  baseline embeds one spanning all replicas.

* :class:`PbftReplica` — the flat PBFT baseline of the evaluation: a
  single engine over all ``zn`` replicas with the primary placed in
  Oregon (paper §4), executing decisions in sequence order and replying
  to clients.

Faithfulness notes: pre-prepare and prepare messages are
MAC-authenticated; commit messages are signed so that ``n - f`` of them
form the forwarded commit certificate (§2.2).  The view-change message
carries the sender's last stable checkpoint and its prepared-slot
entries; checkpoint/view-change *proof* messages are elided (their size
is modelled, their validation is structural) — the recovery behaviour
matches Castro & Liskov's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..crypto.digests import chain_digest
from ..errors import ConfigurationError
from ..ledger.block import Transaction
from ..net.simulator import Timer
from ..types import ClusterId, NodeId, SeqNum, ViewId, max_faulty
from .messages import (
    Checkpoint,
    adopt_encoding,
    ClientReply,
    ClientRequestBatch,
    Commit,
    CommitCertificate,
    DecisionTransfer,
    FetchDecision,
    NewView,
    PreparedEntry,
    PrePrepare,
    Prepare,
    ViewChange,
)
from ..errors import InvalidCertificateError
from .replica import BaseReplica

#: Decision callback: (seq, request, certificate).  Called in strict
#: sequence order.
DecideCallback = Callable[[SeqNum, ClientRequestBatch, CommitCertificate], None]


@dataclass(frozen=True)
class PbftConfig:
    """Tuning knobs of one PBFT instance."""

    #: Maximum assigned-but-undecided sequence slots (the paper's
    #: pipelined consensus, §2.5/§3).
    pipeline_depth: int = 8
    #: Checkpoint every this many decisions (600 txns at batch 100 in
    #: the paper's §4.3 setup => 6 decisions).
    checkpoint_interval: int = 6
    #: Base progress timeout before a backup starts a view change.
    view_change_timeout: float = 2.0
    #: How long to wait for a NEW-VIEW before escalating further.
    new_view_timeout: float = 2.0
    #: Decided (request, certificate) pairs retained behind the stable
    #: checkpoint so laggards can catch up via certified decision
    #: transfer.  A replica that falls further behind than this window
    #: would need full state transfer (out of scope, as for the paper).
    decision_retention: int = 64

    def __post_init__(self) -> None:
        if self.pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")
        if self.decision_retention < 1:
            raise ConfigurationError("decision_retention must be >= 1")


class _Slot:
    """Per-sequence-number consensus state.

    ``prepared_count`` / ``commit_count`` incrementally track the number
    of distinct voters for the slot's accepted digest, so the quorum
    checks on the hot path (:meth:`PbftEngine._maybe_send_commit`,
    :meth:`PbftEngine._maybe_decide`) are a single integer comparison
    instead of a dict lookup plus length scan per vote.  They are
    (re)computed from the vote maps whenever ``digest`` is assigned —
    votes can arrive before the pre-prepare that fixes the digest —
    and bumped on every *new* matching vote after that.
    """

    __slots__ = ("preprepare", "digest", "prepares", "commits",
                 "sent_prepare", "sent_commit", "decided",
                 "prepared_count", "commit_count")

    def __init__(self) -> None:
        self.preprepare: Optional[PrePrepare] = None
        self.digest: Optional[bytes] = None
        # digest -> set of replicas that prepared it
        self.prepares: Dict[bytes, Set[NodeId]] = {}
        # digest -> {replica: Commit}
        self.commits: Dict[bytes, Dict[NodeId, Commit]] = {}
        self.sent_prepare = False
        self.sent_commit = False
        self.decided = False
        self.prepared_count = 0
        self.commit_count = 0

    def set_digest(self, digest: bytes) -> None:
        """Fix the slot's digest and sync the vote counters with any
        votes that arrived before the pre-prepare."""
        self.digest = digest
        voters = self.prepares.get(digest)
        self.prepared_count = len(voters) if voters is not None else 0
        commits = self.commits.get(digest)
        self.commit_count = len(commits) if commits is not None else 0


class PbftEngine:
    """One PBFT group: ``members`` with ``f = (n - 1) // 3``.

    The engine does not own a network socket; it borrows its ``owner``
    replica's transport and CPU.  The owner routes inbound PBFT messages
    to :meth:`handle` and receives strictly ordered decisions through
    ``on_decide``.
    """

    def __init__(self,
                 owner: BaseReplica,
                 cluster_id: ClusterId,
                 members: List[NodeId],
                 config: PbftConfig,
                 on_decide: DecideCallback,
                 on_view_change: Optional[Callable[[ViewId], None]] = None,
                 on_new_view: Optional[Callable[[ViewId], None]] = None,
                 can_propose: Optional[Callable[[SeqNum], bool]] = None):
        if owner.node_id not in members:
            raise ConfigurationError(
                f"{owner.node_id} is not a member of cluster {cluster_id}"
            )
        self._owner = owner
        self._cluster_id = cluster_id
        self._members = list(members)
        # Hot-path membership tests go through a frozenset: node-id
        # hashes are memoized, so a set probe is one identity hit
        # instead of an O(n) list scan with field-wise comparisons.
        self._member_set = frozenset(members)
        self._n = len(members)
        self._f = max_faulty(self._n)
        self._quorum = self._n - self._f
        self._config = config
        self._on_decide = on_decide
        self._on_view_change = on_view_change
        self._on_new_view_cb = on_new_view
        # Optional owner veto on proposing a sequence number yet (used
        # by GeoBFT's round-pipeline ablation).
        self._can_propose = can_propose
        # Observability hub; None (the common case) keeps emission sites
        # to one attribute load + comparison.  getattr: test harnesses
        # drive engines with owners that predate the attribute.
        self._instr = getattr(owner, "instrumentation", None)

        self._view: ViewId = 0
        self._slots: Dict[SeqNum, _Slot] = {}
        self._decided: Dict[SeqNum, Tuple[ClientRequestBatch,
                                          CommitCertificate]] = {}
        self._delivered_upto: SeqNum = 0  # decisions handed to on_decide
        self._next_seq: SeqNum = 1  # primary's next assignment
        self._queue: List[ClientRequestBatch] = []
        self._seen_batch_ids: Set[str] = set()
        # Batch ids a backup knows about but has not yet seen ordered —
        # the trigger for suspecting the primary (view change) — plus
        # the requests themselves so a new primary can adopt them.
        self._awaiting_order: Set[str] = set()
        self._pending_requests: Dict[str, ClientRequestBatch] = {}

        # Checkpointing
        self._stable_seq: SeqNum = 0
        self._checkpoints: Dict[SeqNum, Dict[bytes, Set[NodeId]]] = {}
        self._decision_chain: bytes = b"genesis"
        # Decisions being fetched from peers (checkpoint catch-up).
        self._fetching: Set[SeqNum] = set()

        # View change
        self._in_view_change = False
        self._vc_target: ViewId = 0
        self._view_changes: Dict[ViewId, Dict[NodeId, ViewChange]] = {}
        self._consecutive_vcs = 0
        self._progress_timer: Optional[Timer] = None
        self._new_view_timer: Optional[Timer] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cluster_id(self) -> ClusterId:
        """Group identifier (the GeoBFT cluster id; 0 for flat groups)."""
        return self._cluster_id

    @property
    def members(self) -> List[NodeId]:
        """Group membership, index order."""
        return list(self._members)

    @property
    def n(self) -> int:
        """Group size."""
        return self._n

    @property
    def f(self) -> int:
        """Faults tolerated."""
        return self._f

    @property
    def quorum(self) -> int:
        """``n - f``."""
        return self._quorum

    @property
    def view(self) -> ViewId:
        """Current view number."""
        return self._view

    @property
    def primary(self) -> NodeId:
        """Primary of the current view."""
        return self._members[self._view % self._n]

    @property
    def is_primary(self) -> bool:
        """Whether the owner leads the current view."""
        return self.primary == self._owner.node_id

    @property
    def in_view_change(self) -> bool:
        """Whether a view change is in progress at this replica."""
        return self._in_view_change

    @property
    def stable_seq(self) -> SeqNum:
        """Highest stable checkpoint sequence."""
        return self._stable_seq

    @property
    def decided_count(self) -> int:
        """Decisions delivered in order so far."""
        return self._delivered_upto

    @property
    def next_seq(self) -> SeqNum:
        """Primary's next unassigned sequence number."""
        return self._next_seq

    @property
    def queued_requests(self) -> int:
        """Requests waiting for a pipeline slot at the primary."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Assigned-but-undelivered sequence slots."""
        return self._in_flight()

    def decision(self, seq: SeqNum):
        """The (request, certificate) decided at ``seq``, or ``None``."""
        return self._decided.get(seq)

    # ------------------------------------------------------------------
    # Client request intake
    # ------------------------------------------------------------------
    def submit_request(self, request: ClientRequestBatch,
                       verify_signature: bool = True) -> None:
        """Accept a client batch for ordering.

        At the primary the batch is queued and proposed as pipeline
        slots free up; at a backup it arms the progress timer (the
        backup expects the primary to order it, else view change).
        """
        if request.batch_id in self._seen_batch_ids:
            # Known request.  If we have since become the primary and it
            # is still unordered (typical right after a view change,
            # when the client or a backup retransmits), adopt it.
            if (self.is_primary
                    and request.batch_id in self._awaiting_order):
                self._awaiting_order.discard(request.batch_id)
                self._pending_requests.pop(request.batch_id, None)
                self._queue.append(request)
                self._pump_proposals()
            return
        if verify_signature and not self._verify_request(request):
            return
        self._seen_batch_ids.add(request.batch_id)
        if self.is_primary:
            self._queue.append(request)
            self._pump_proposals()
        else:
            # A backup that knows of a pending request expects progress.
            self._awaiting_order.add(request.batch_id)
            self._pending_requests[request.batch_id] = request
            self._arm_progress_timer()

    def submit_noop(self) -> ClientRequestBatch:
        """Primary-side: enqueue a no-op request (paper §2.5).

        Returns the generated request (tests inspect it).
        """
        noop_txn = Transaction.noop(
            f"noop-{self._cluster_id}-{self._owner.sim.now:.6f}-{self._next_seq}"
        )
        request = ClientRequestBatch(
            batch_id=f"noop:{self._cluster_id}:{self._next_seq}:{len(self._queue)}",
            client=self._owner.node_id,
            batch=(noop_txn,),
            signature=None,
        )
        self._seen_batch_ids.add(request.batch_id)
        self._queue.append(request)
        self._pump_proposals()
        return request

    def _verify_request(self, request: ClientRequestBatch) -> bool:
        if request.signature is None:
            # Only single-transaction no-ops may be unsigned.
            return len(request.batch) == 1 and request.batch[0].op == "noop"
        # CPU cost was charged on the certify lane at delivery.
        return self._owner.registry.verify(request,
                                           request.signature)

    def pump(self) -> None:
        """Re-check whether queued requests may now be proposed (called
        by owners whose ``can_propose`` gate has opened)."""
        self._pump_proposals()

    def _pump_proposals(self) -> None:
        """Primary: assign queued requests to free pipeline slots."""
        if not self.is_primary or self._in_view_change:
            return
        while self._queue and self._in_flight() < self._config.pipeline_depth:
            if (self._can_propose is not None
                    and not self._can_propose(self._next_seq)):
                return
            request = self._queue.pop(0)
            self._propose(request)

    def _in_flight(self) -> int:
        return (self._next_seq - 1) - self._delivered_upto

    def _propose(self, request: ClientRequestBatch) -> None:
        seq = self._next_seq
        self._next_seq += 1
        instr = self._instr
        if instr is not None:
            instr.phase("proposed", self._owner.node_id, self._cluster_id,
                        seq)
        self._owner.charge_cpu(self._owner.costs.hash_small)
        digest = request.digest()
        preprepare = PrePrepare(self._cluster_id, self._view, seq, digest,
                                request)
        slot = self._slot(seq)
        slot.preprepare = preprepare
        slot.set_digest(digest)
        # The primary's pre-prepare counts as its prepare.
        voters = slot.prepares.get(digest)
        if voters is None:
            voters = slot.prepares[digest] = set()
        if self._owner.node_id not in voters:
            voters.add(self._owner.node_id)
            slot.prepared_count += 1
        self._owner.broadcast(self._members, preprepare)
        self._arm_progress_timer()
        self._maybe_send_commit(seq, slot)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle(self, message, sender: NodeId) -> bool:
        """Route one PBFT message.  Returns ``False`` if the message is
        not a PBFT type (so owners can try other sub-protocols)."""
        if isinstance(message, PrePrepare):
            self._on_preprepare(message, sender)
        elif isinstance(message, Prepare):
            self._on_prepare(message, sender)
        elif isinstance(message, Commit):
            self._on_commit(message, sender)
        elif isinstance(message, Checkpoint):
            self._on_checkpoint(message, sender)
        elif isinstance(message, ViewChange):
            self._on_view_change_msg(message, sender)
        elif isinstance(message, NewView):
            self._on_new_view(message, sender)
        elif isinstance(message, FetchDecision):
            self._on_fetch_decision(message, sender)
        elif isinstance(message, DecisionTransfer):
            self._on_decision_transfer(message, sender)
        else:
            return False
        return True

    def _slot(self, seq: SeqNum) -> _Slot:
        slot = self._slots.get(seq)
        if slot is None:
            slot = _Slot()
            self._slots[seq] = slot
        return slot

    def _on_preprepare(self, msg: PrePrepare, sender: NodeId) -> None:
        if msg.cluster_id != self._cluster_id or msg.view != self._view:
            return
        if sender != self.primary or self._in_view_change:
            return
        if msg.seq <= self._stable_seq:
            return
        if msg.seq in self._decided:
            # Already decided (typically a re-proposal after a view
            # change).  Help laggards catch up by re-announcing our
            # commitment in the current view instead of re-running the
            # slot.
            decided_request, _cert = self._decided[msg.seq]
            if decided_request.digest() == msg.digest:
                commit = Commit(self._cluster_id, self._view, msg.seq,
                                msg.digest, self._owner.node_id, None)
                signed = Commit(commit.cluster_id, commit.view, commit.seq,
                                commit.digest, commit.replica,
                                self._owner.sign(commit))
                adopt_encoding(signed, commit)
                self._owner.broadcast(self._members, signed)
            return
        slot = self._slots.get(msg.seq)
        if slot is not None and slot.preprepare is not None:
            if slot.digest != msg.digest:
                return  # equivocation: keep the first, let view change handle it
        else:
            if not self._verify_request(msg.request):
                return
            self._owner.charge_cpu(self._owner.costs.hash_small)
            if msg.request.digest() != msg.digest:
                return
            # Slot state materializes only for verified proposals; an
            # invalid pre-prepare must leave no trace, not even an empty
            # slot entry.
            slot = self._slot(msg.seq)
            slot.preprepare = msg
            slot.set_digest(msg.digest)
            if msg.seq >= self._next_seq:
                self._next_seq = msg.seq + 1
            self._seen_batch_ids.add(msg.request.batch_id)
            self._awaiting_order.discard(msg.request.batch_id)
            self._pending_requests.pop(msg.request.batch_id, None)
        if not slot.sent_prepare and not slot.decided:
            slot.sent_prepare = True
            prepare = Prepare(self._cluster_id, self._view, msg.seq,
                              msg.digest, self._owner.node_id)
            # slot.digest == msg.digest here (set above, or the
            # equivocation guard returned earlier), so counter bumps
            # apply to the accepted digest.
            voters = slot.prepares.get(msg.digest)
            if voters is None:
                voters = slot.prepares[msg.digest] = set()
            me = self._owner.node_id
            if me not in voters:
                voters.add(me)
                slot.prepared_count += 1
            # Primary's pre-prepare stands in for its prepare.
            if sender not in voters:
                voters.add(sender)
                slot.prepared_count += 1
            self._owner.broadcast(self._members, prepare)
        self._arm_progress_timer()
        self._maybe_send_commit(msg.seq, slot)

    def _on_prepare(self, msg: Prepare, sender: NodeId) -> None:
        if msg.cluster_id != self._cluster_id or msg.view != self._view:
            return
        if sender not in self._member_set or msg.seq <= self._stable_seq:
            return
        slot = self._slot(msg.seq)
        voters = slot.prepares.get(msg.digest)
        if voters is None:
            voters = slot.prepares[msg.digest] = set()
        if sender not in voters:
            voters.add(sender)
            if msg.digest == slot.digest:
                slot.prepared_count += 1
        self._maybe_send_commit(msg.seq, slot)

    def _maybe_send_commit(self, seq: SeqNum, slot: _Slot) -> None:
        if slot.sent_commit or slot.decided or slot.digest is None:
            return
        if slot.preprepare is None or slot.prepared_count < self._quorum:
            return
        slot.sent_commit = True
        instr = self._instr
        if instr is not None:
            instr.phase("prepared", self._owner.node_id, self._cluster_id,
                        seq)
        commit = Commit(self._cluster_id, self._view, seq, slot.digest,
                        self._owner.node_id, None)
        signed = Commit(commit.cluster_id, commit.view, commit.seq,
                        commit.digest, commit.replica,
                        self._owner.sign(commit))
        adopt_encoding(signed, commit)
        commits = slot.commits.get(slot.digest)
        if commits is None:
            commits = slot.commits[slot.digest] = {}
        if self._owner.node_id not in commits:
            slot.commit_count += 1
        commits[self._owner.node_id] = signed
        self._owner.broadcast(self._members, signed)
        self._maybe_decide(seq, slot)

    def _on_commit(self, msg: Commit, sender: NodeId) -> None:
        if msg.cluster_id != self._cluster_id:
            return
        if sender not in self._member_set or msg.seq <= self._stable_seq:
            return
        if msg.replica != sender or msg.signature is None:
            return
        if not self._owner.registry.verify(msg, msg.signature):
            return
        slot = self._slot(msg.seq)
        commits = slot.commits.get(msg.digest)
        if commits is None:
            commits = slot.commits[msg.digest] = {}
        if sender not in commits and msg.digest == slot.digest:
            slot.commit_count += 1
        commits[sender] = msg
        self._maybe_decide(msg.seq, slot)

    def _maybe_decide(self, seq: SeqNum, slot: _Slot) -> None:
        if slot.decided or slot.preprepare is None or slot.digest is None:
            return
        if slot.commit_count < self._quorum:
            return
        commits = slot.commits[slot.digest]
        slot.decided = True
        certificate = CommitCertificate(
            cluster_id=self._cluster_id,
            round_id=seq,
            view=slot.preprepare.view,
            request=slot.preprepare.request,
            commits=tuple(
                commits[r] for r in sorted(commits)[: self._quorum]
            ),
        )
        self._decided[seq] = (slot.preprepare.request, certificate)
        self._deliver_in_order()

    def _deliver_in_order(self) -> None:
        instr = self._instr
        progressed = False
        while (self._delivered_upto + 1) in self._decided:
            self._delivered_upto += 1
            seq = self._delivered_upto
            request, certificate = self._decided[seq]
            self._awaiting_order.discard(request.batch_id)
            self._pending_requests.pop(request.batch_id, None)
            self._decision_chain = chain_digest(
                self._decision_chain, seq,
                certificate.request.digest())
            progressed = True
            if instr is not None:
                instr.phase("committed", self._owner.node_id,
                            self._cluster_id, seq)
            self._on_decide(seq, request, certificate)
            if seq % self._config.checkpoint_interval == 0:
                self._emit_checkpoint(seq)
        if progressed:
            if instr is not None:
                instr.sample("pbft.queued_requests", len(self._queue))
                instr.sample("pbft.in_flight", self._in_flight())
            self._consecutive_vcs = 0
            self._arm_progress_timer(reset=True)
            self._pump_proposals()

    # ------------------------------------------------------------------
    # Checkpoints and garbage collection
    # ------------------------------------------------------------------
    def _emit_checkpoint(self, seq: SeqNum) -> None:
        checkpoint = Checkpoint(
            self._cluster_id, seq, self._decision_chain,
            self._owner.node_id, None,
        )
        signed = Checkpoint(
            checkpoint.cluster_id, checkpoint.seq, checkpoint.state_digest,
            checkpoint.replica, self._owner.sign(checkpoint),
        )
        adopt_encoding(signed, checkpoint)
        self._record_checkpoint(signed, self._owner.node_id)
        self._owner.broadcast(self._members, signed)

    def _on_checkpoint(self, msg: Checkpoint, sender: NodeId) -> None:
        if msg.cluster_id != self._cluster_id or sender not in self._member_set:
            return
        if msg.replica != sender or msg.signature is None:
            return
        if not self._owner.registry.verify(msg, msg.signature):
            return
        self._record_checkpoint(msg, sender)

    def _record_checkpoint(self, msg: Checkpoint, sender: NodeId) -> None:
        if msg.seq <= self._stable_seq:
            return
        by_digest = self._checkpoints.setdefault(msg.seq, {})
        voters = by_digest.setdefault(msg.state_digest, set())
        voters.add(sender)
        if len(voters) >= self._quorum:
            self._stabilize(msg.seq)

    def _stabilize(self, seq: SeqNum) -> None:
        self._stable_seq = max(self._stable_seq, seq)
        for old_seq in [s for s in self._slots if s <= self._stable_seq]:
            del self._slots[old_seq]
        for old_seq in [s for s in self._checkpoints
                        if s <= self._stable_seq]:
            del self._checkpoints[old_seq]
        # Decided entries stay available to the owner (GeoBFT may still
        # need certificates for remote retransmission) and to laggards
        # fetching missed decisions, bounded by the retention window.
        horizon = self._stable_seq - max(self._config.checkpoint_interval,
                                         self._config.decision_retention)
        for old_seq in [s for s in self._decided if s <= horizon]:
            del self._decided[old_seq]
        self._catch_up_to_stable()

    def _catch_up_to_stable(self) -> None:
        """Fetch decisions this replica missed but the group proved
        committed (the certified analogue of PBFT state transfer)."""
        if self._delivered_upto >= self._stable_seq:
            return
        for seq in range(self._delivered_upto + 1, self._stable_seq + 1):
            if seq in self._decided or seq in self._fetching:
                continue
            self._fetching.add(seq)
            request = FetchDecision(self._cluster_id, seq,
                                    self._owner.node_id)
            # Ask f + 1 distinct peers: at least one is non-faulty and,
            # having contributed to the stable checkpoint, holds the
            # decision.
            own = self._members.index(self._owner.node_id)
            for k in range(1, self._f + 2):
                peer = self._members[(own + k) % self._n]
                self._owner.send(peer, request)

    def _on_fetch_decision(self, msg: FetchDecision, sender: NodeId) -> None:
        if msg.cluster_id != self._cluster_id or sender not in self._member_set:
            return
        decision = self._decided.get(msg.seq)
        if decision is None:
            return
        request, certificate = decision
        self._owner.send(sender, DecisionTransfer(
            self._cluster_id, msg.seq, request, certificate))

    def _on_decision_transfer(self, msg: DecisionTransfer,
                              sender: NodeId) -> None:
        if msg.cluster_id != self._cluster_id:
            return
        if msg.seq in self._decided or msg.seq <= self._delivered_upto:
            # Clearing the fetch marker is driven purely by *local*
            # state (the slot is already decided here), not by trusting
            # anything this unverified message claims.
            self._fetching.discard(msg.seq)  # repro: allow[verify-before-mutate] guarded by local decided-state only
            return
        certificate = msg.certificate
        if (certificate.cluster_id != self._cluster_id
                or certificate.round_id != msg.seq):
            return
        try:
            certificate.verify(self._owner.registry, self._quorum,
                               members=self._members)
        except InvalidCertificateError:
            return
        self._fetching.discard(msg.seq)
        self._decided[msg.seq] = (certificate.request, certificate)
        self._seen_batch_ids.add(certificate.request.batch_id)
        self._deliver_in_order()

    # ------------------------------------------------------------------
    # View changes (local, §2.2)
    # ------------------------------------------------------------------
    def _arm_progress_timer(self, reset: bool = False) -> None:
        pending = (bool(self._queue) or self._in_flight() > 0
                   or bool(self._awaiting_order))
        if reset and self._progress_timer is not None:
            self._progress_timer.cancel()
            self._progress_timer = None
        if not pending or self._in_view_change:
            return
        if self._progress_timer is not None and not self._progress_timer.fired:
            if not reset:
                return
        timeout = self._config.view_change_timeout * (
            2 ** self._consecutive_vcs
        )
        self._progress_timer = self._owner.set_timer(
            timeout, self._on_progress_timeout
        )

    def _on_progress_timeout(self) -> None:
        if self._in_view_change:
            return
        if (not self._queue and self._in_flight() == 0
                and not self._awaiting_order):
            return
        self.start_view_change(self._view + 1)

    def force_view_change(self) -> None:
        """Externally triggered primary replacement.

        GeoBFT's remote view-change response role calls this when
        ``f + 1`` RVC requests prove a remote cluster saw this cluster's
        primary fail (Figure 7, line 17).
        """
        if not self._in_view_change:
            self.start_view_change(self._view + 1)

    def start_view_change(self, target_view: ViewId) -> None:
        """Broadcast a VIEW-CHANGE vote for ``target_view``."""
        if target_view <= self._view:
            return
        self._in_view_change = True
        self._vc_target = target_view
        self._consecutive_vcs += 1
        instr = self._instr
        if instr is not None:
            instr.phase("view_change", self._owner.node_id,
                        self._cluster_id, target_view)
        if self._progress_timer is not None:
            self._progress_timer.cancel()
            self._progress_timer = None
        prepared = self._prepared_entries()
        msg = ViewChange(self._cluster_id, target_view, self._stable_seq,
                         prepared, self._owner.node_id, None)
        signed = ViewChange(msg.cluster_id, msg.new_view, msg.last_stable_seq,
                            msg.prepared, msg.replica,
                            self._owner.sign(msg))
        self._record_view_change(signed, self._owner.node_id)
        self._owner.broadcast(self._members, signed)
        self._arm_new_view_timer()
        if self._on_view_change is not None:
            self._on_view_change(target_view)

    def _prepared_entries(self) -> Tuple[PreparedEntry, ...]:
        entries = []
        for seq in sorted(self._slots):
            if seq <= self._stable_seq:
                continue
            slot = self._slots[seq]
            if slot.preprepare is None or slot.digest is None:
                continue
            prepared_by = slot.prepares.get(slot.digest, set())
            if len(prepared_by) >= self._quorum or slot.decided:
                entries.append(PreparedEntry(
                    slot.preprepare.view, seq, slot.digest,
                    slot.preprepare.request,
                ))
        return tuple(entries)

    def _arm_new_view_timer(self) -> None:
        if self._new_view_timer is not None:
            self._new_view_timer.cancel()
        timeout = self._config.new_view_timeout * (
            2 ** max(0, self._consecutive_vcs - 1)
        )
        self._new_view_timer = self._owner.set_timer(
            timeout, self._on_new_view_timeout
        )

    def _on_new_view_timeout(self) -> None:
        if self._in_view_change:
            self._in_view_change = False  # allow escalation
            self.start_view_change(self._vc_target + 1)

    def _on_view_change_msg(self, msg: ViewChange, sender: NodeId) -> None:
        if msg.cluster_id != self._cluster_id or sender not in self._member_set:
            return
        if msg.replica != sender or msg.new_view <= self._view:
            return
        if msg.signature is None:
            return
        if not self._owner.registry.verify(msg, msg.signature):
            return
        self._record_view_change(msg, sender)

    def _record_view_change(self, msg: ViewChange, sender: NodeId) -> None:
        votes = self._view_changes.setdefault(msg.new_view, {})
        votes[sender] = msg
        # Join rule: f + 1 replicas voting for a higher view proves at
        # least one non-faulty replica saw primary failure.
        if (len(votes) > self._f
                and not (self._in_view_change
                         and self._vc_target >= msg.new_view)):
            self.start_view_change(msg.new_view)
        # New-primary rule: with n - f votes, the designated primary of
        # the target view installs it.
        new_primary = self._members[msg.new_view % self._n]
        if (len(votes) >= self._quorum
                and new_primary == self._owner.node_id
                and msg.new_view > self._view):
            self._install_new_view(msg.new_view, votes)

    def _install_new_view(self, view: ViewId,
                          votes: Dict[NodeId, ViewChange]) -> None:
        # Choose, per sequence, the prepared entry with the highest view.
        best: Dict[SeqNum, PreparedEntry] = {}
        max_stable = self._stable_seq
        for vc in votes.values():
            max_stable = max(max_stable, vc.last_stable_seq)
            for entry in vc.prepared:
                current = best.get(entry.seq)
                if current is None or entry.view > current.view:
                    best[entry.seq] = entry
        max_seq = max(best) if best else max_stable
        preprepares = []
        for seq in range(max_stable + 1, max_seq + 1):
            entry = best.get(seq)
            if entry is not None:
                request = entry.request
            else:
                noop = Transaction.noop(f"vc-noop-{self._cluster_id}-{seq}")
                request = ClientRequestBatch(
                    f"vc-noop:{self._cluster_id}:{view}:{seq}",
                    self._owner.node_id, (noop,), None,
                )
            self._owner.charge_cpu(self._owner.costs.hash_small)
            preprepares.append(PrePrepare(
                self._cluster_id, view, seq, request.digest(), request,
            ))
        new_view = NewView(self._cluster_id, view, tuple(sorted(votes)),
                           tuple(preprepares), self._owner.node_id)
        self._owner.broadcast(self._members, new_view)
        self._adopt_new_view(new_view)

    def _on_new_view(self, msg: NewView, sender: NodeId) -> None:
        if msg.cluster_id != self._cluster_id or msg.new_view <= self._view:
            return
        if sender != self._members[msg.new_view % self._n]:
            return
        if len(msg.view_change_replicas) < self._quorum:
            return
        self._adopt_new_view(msg)

    def _adopt_new_view(self, msg: NewView) -> None:
        self._view = msg.new_view
        self._in_view_change = False
        instr = self._instr
        if instr is not None:
            instr.phase("new_view", self._owner.node_id, self._cluster_id,
                        msg.new_view)
        if self._new_view_timer is not None:
            self._new_view_timer.cancel()
            self._new_view_timer = None
        for view in [v for v in self._view_changes if v <= self._view]:
            del self._view_changes[view]
        # Reset undecided slots; re-proposals below repopulate them.
        # Client batches assigned to an abandoned slot are recovered
        # into the pending set first — their batch_ids are already in
        # _seen_batch_ids, so dropping them here would make every later
        # client retransmission a dedup no-op and lose the request for
        # good (an equivocating primary could censor forever).
        for seq in [s for s in self._slots if not self._slots[s].decided]:
            slot = self._slots.pop(seq)
            preprepare = slot.preprepare
            if (preprepare is not None
                    and preprepare.request.signature is not None
                    and preprepare.request.batch_id
                    not in self._pending_requests):
                self._awaiting_order.add(preprepare.request.batch_id)
                self._pending_requests[preprepare.request.batch_id] = (
                    preprepare.request)
        # Abandoned sequence numbers are *reused* (standard PBFT): the
        # new view restarts assignment just past the highest stable or
        # decided slot, and the re-proposals below advance it further.
        # Keeping the old high-water mark would leave permanent holes
        # below it that in-order execution can never cross.
        self._next_seq = max(self._stable_seq,
                             max(self._slots, default=0)) + 1
        for preprepare in msg.preprepares:
            # _on_preprepare handles already-decided slots by
            # re-announcing the commit, helping laggards catch up.
            self._on_preprepare(preprepare, msg.replica)
        if self.is_primary:
            # Adopt requests that stalled under the previous primary.
            for batch_id in sorted(self._awaiting_order):
                request = self._pending_requests.pop(batch_id, None)
                if request is not None:
                    self._queue.append(request)
            self._awaiting_order.clear()
            self._pump_proposals()
        else:
            # Re-forward stalled requests so the new primary learns of
            # anything only this backup saw (standard PBFT relay).
            for batch_id in sorted(self._awaiting_order):
                request = self._pending_requests.get(batch_id)
                if request is not None:
                    self._owner.send(self.primary, request)
        self._arm_progress_timer(reset=True)
        if self._on_new_view_cb is not None:
            self._on_new_view_cb(self._view)




def engine_verification_cost(costs, quorum: int, message) -> float:
    """Certify-thread cost of the PBFT message types.

    Shared by every replica that embeds a :class:`PbftEngine` (the flat
    baseline, GeoBFT, Steward).  Returns 0 for unsigned/MAC-only types.

    Prepares and commits dominate the message mix (n - 1 of each per
    replica per slot), so they dispatch on an exact class check before
    the generic isinstance chain.
    """
    cls = message.__class__
    if cls is Prepare:
        return 0.0
    if cls is Commit:
        return costs.verify
    if isinstance(message, ClientRequestBatch):
        return costs.verify if message.signature is not None else 0.0
    if isinstance(message, PrePrepare):
        # The embedded client request's signature.
        if message.request.signature is not None:
            return costs.verify
        return 0.0
    if isinstance(message, (Commit, Checkpoint, ViewChange)):
        return costs.verify
    if isinstance(message, NewView):
        return costs.verify * max(1, len(message.preprepares))
    if isinstance(message, DecisionTransfer):
        return costs.verify * quorum
    return 0.0


class PbftReplica(BaseReplica):
    """The flat PBFT baseline of the evaluation (§4).

    One PBFT group spans all ``zn`` replicas across all regions, with
    the primary conventionally placed in the first region (Oregon — the
    region with the highest bandwidth to all others, per §4).  Each
    decision is executed in sequence order, appended to the ledger, and
    acknowledged to the requesting client.

    The engine's group id is ``FLAT_GROUP_ID`` for every member — the
    flat group spans regions, so the members' own cluster ids are
    irrelevant to message routing.
    """

    FLAT_GROUP_ID = 0

    def __init__(self, node_id, region, sim, network, registry,
                 members, config=None, costs=None, cores=4,
                 record_count=1000, metrics=None, instrumentation=None):
        super().__init__(node_id, region, sim, network, registry,
                         costs=costs, cores=cores,
                         record_count=record_count, metrics=metrics,
                         instrumentation=instrumentation)
        self._engine = PbftEngine(
            owner=self,
            cluster_id=self.FLAT_GROUP_ID,
            members=members,
            config=config or PbftConfig(),
            on_decide=self._on_decide,
        )
        # Prepare/commit certify costs are constants (see
        # engine_verification_cost); let deliver() skip the call.
        self._const_verify_costs[Prepare] = 0.0
        self._const_verify_costs[Commit] = self.costs.verify

    @property
    def engine(self) -> PbftEngine:
        """The underlying PBFT state machine."""
        return self._engine

    def verification_cost(self, message, sender: NodeId) -> float:
        """Certify-thread work for the flat baseline's message types."""
        return engine_verification_cost(self.costs, self._engine.quorum,
                                        message)

    def handle(self, message, sender: NodeId) -> None:
        """Route client requests and PBFT messages."""
        if isinstance(message, ClientRequestBatch):
            self._on_client_request(message, sender)
            return
        self._engine.handle(message, sender)

    def _on_client_request(self, request: ClientRequestBatch,
                           sender: NodeId) -> None:
        self._engine.submit_request(request)
        # Backups relay client requests to the primary (standard PBFT:
        # clients fall back to broadcasting, backups forward).
        if not self._engine.is_primary and sender == request.client:
            self.send(self._engine.primary, request)

    def _on_decide(self, seq: SeqNum, request: ClientRequestBatch,
                   certificate: CommitCertificate) -> None:
        results, done_at = self.execute_batch(request.batch)
        self.ledger.append(seq, self._engine.cluster_id, request.batch,
                           certificate,
                           batch_digest=request.digest(),
                           certificate_digest=certificate.digest())
        instr = self._instrumentation
        if instr is not None:
            instr.phase("executed", self.node_id, self._engine.cluster_id,
                        seq)
        if request.signature is None:
            return  # no-op fill, no client to answer
        reply = ClientReply(
            batch_id=request.batch_id,
            replica=self.node_id,
            cluster_id=self._engine.cluster_id,
            round_id=seq,
            results_digest=self.executor.results_digest(results),
            batch_len=len(request.batch),
        )
        self.send_at(done_at, request.client, reply)
