"""Steward: hierarchical wide-area BFT (paper §1.1, §3, §4).

Steward groups replicas into clusters like GeoBFT but keeps a
*centralized* design: one **primary cluster** (placed in Oregon, §4)
coordinates all global ordering.  Our implementation follows the shape
the paper describes and measures:

* A client submits to its local cluster.  The cluster runs local
  Byzantine agreement (an embedded PBFT engine) over the request —
  Steward's per-site agreement, costing the ``O(2zn^2)`` local messages
  of Table 2.
* The site's representative (its local primary) forwards the locally
  certified request to ``f + 1`` replicas of the primary cluster, which
  hand it to the primary cluster's leader.
* The primary cluster runs its own PBFT to assign the global sequence
  number, then its leader disseminates the globally ordered request —
  with the primary cluster's commit certificate as proof — to ``f + 1``
  replicas of every other cluster, which re-broadcast locally.
* Every replica executes strictly in global-sequence order and replies
  to clients of its own cluster.

Two properties drive Steward's measured performance, and both are
modelled: every request funnels through one cluster's uplinks
(centralization), and the original protocol's RSA-style threshold
cryptography is expensive — deployments configure Steward replicas with
a scaled-up :class:`~repro.crypto.costs.CryptoCostModel` (the harness
uses ``steward_crypto_factor``).  Like the paper's version, no global
view-change is provided (Steward is excluded from the primary-failure
experiment, §4.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, InvalidCertificateError
from ..types import ClusterId, NodeId, SeqNum, max_faulty
from .messages import (
    ClientReply,
    ClientRequestBatch,
    CommitCertificate,
    StewardForward,
    StewardGlobalOrder,
)
from .pbft import PbftConfig, PbftEngine, engine_verification_cost
from .replica import BaseReplica

#: Message classes that travel *between* clusters: the site -> primary
#: forward and the primary -> site dissemination.  Local agreement and
#: client traffic never leave a cluster, which is exactly Steward's
#: centralization property (§3) — and what lets the parallel engine
#: widen its lookahead to the site<->primary links only.
CROSS_CLUSTER_MESSAGES = frozenset({"StewardForward", "StewardGlobalOrder"})


class StewardReplica(BaseReplica):
    """One Steward replica (primary-cluster or site replica)."""

    def __init__(self, node_id, region, sim, network, registry,
                 cluster_members: Dict[ClusterId, List[NodeId]],
                 primary_cluster: ClusterId,
                 config: Optional[PbftConfig] = None,
                 costs=None, cores=4, record_count=1000, metrics=None,
                 instrumentation=None):
        super().__init__(node_id, region, sim, network, registry,
                         costs=costs, cores=cores,
                         record_count=record_count, metrics=metrics,
                         instrumentation=instrumentation)
        if primary_cluster not in cluster_members:
            raise ConfigurationError(
                f"primary cluster {primary_cluster} not in deployment"
            )
        self._clusters = {cid: list(m) for cid, m in cluster_members.items()}
        self._own_cluster = node_id.cluster
        self._members = self._clusters[self._own_cluster]
        self._primary_cluster = primary_cluster
        self._config = config or PbftConfig()

        # Every cluster runs one engine: in the primary cluster it *is*
        # the global ordering engine; in other clusters it performs the
        # local (per-site) agreement before forwarding.
        self._engine = PbftEngine(
            owner=self,
            cluster_id=self._own_cluster,
            members=self._members,
            config=self._config,
            on_decide=self._on_engine_decide,
        )

        # Site side: locally agreed requests whose global order is
        # pending; global side: bookkeeping for dissemination.
        self._forwarded: Dict[str, SeqNum] = {}
        # Execution stream (global order), for non-primary clusters.
        self._exec_buffer: Dict[SeqNum, Tuple[ClientRequestBatch,
                                              CommitCertificate]] = {}
        self._executed_upto: SeqNum = 0
        self._submitted_to_global: set = set()

    @classmethod
    def cluster_affinity(cls, clusters,
                         primary_cluster: ClusterId = 1) -> frozenset:
        """Ordered cluster pairs that exchange cross-cluster traffic.

        Steward is a star around the primary cluster: sites forward to
        it (StewardForward) and it disseminates back (StewardGlobalOrder)
        — two sites never talk to each other.  The parallel engine's
        conservative lookahead therefore only has to respect the
        site<->primary link latencies, not the full cross-worker mesh.
        """
        pairs = set()
        for cluster in clusters:
            if cluster != primary_cluster:
                pairs.add((cluster, primary_cluster))
                pairs.add((primary_cluster, cluster))
        return frozenset(pairs)

    @property
    def engine(self) -> PbftEngine:
        """This replica's (local or global) PBFT engine."""
        return self._engine

    @property
    def is_primary_cluster(self) -> bool:
        """Whether this replica belongs to the coordinating cluster."""
        return self._own_cluster == self._primary_cluster

    @property
    def executed_global_seq(self) -> SeqNum:
        """Highest globally ordered request executed."""
        return self._executed_upto

    def verification_cost(self, message, sender: NodeId) -> float:
        """Certify-thread work for Steward's message types.

        A single threshold-signature verification stands in for a
        site's aggregated (RSA-era) proof; the inflated Steward cost
        model makes these expensive, as in the original protocol.
        """
        costs = self.costs
        if isinstance(message, StewardForward):
            if message.request.batch_id in self._submitted_to_global:
                return 0.0
            return costs.threshold_verify
        if isinstance(message, StewardGlobalOrder):
            if (message.global_seq <= self._executed_upto
                    or message.global_seq in self._exec_buffer):
                return 0.0
            return costs.threshold_verify
        return engine_verification_cost(costs, self._engine.quorum,
                                        message)

    def handle(self, message, sender: NodeId) -> None:
        """Route Steward messages."""
        if isinstance(message, ClientRequestBatch):
            self._on_client_request(message, sender)
        elif isinstance(message, StewardForward):
            self._on_forward(message, sender)
        elif isinstance(message, StewardGlobalOrder):
            self._on_global_order(message, sender)
        else:
            self._engine.handle(message, sender)

    # ------------------------------------------------------------------
    # Site side
    # ------------------------------------------------------------------
    def _on_client_request(self, request: ClientRequestBatch,
                           sender: NodeId) -> None:
        if request.client.cluster != self._own_cluster:
            # Clients talk to their own site; the only cross-cluster
            # requests the primary cluster sees are relays of verified
            # site forwards from its own members.
            relayed = (self.is_primary_cluster
                       and sender.cluster == self._own_cluster
                       and sender.kind == "replica")
            if not relayed:
                return
        self._engine.submit_request(request)
        if not self._engine.is_primary and sender == request.client:
            self.send(self._engine.primary, request)

    def _on_engine_decide(self, seq: SeqNum, request: ClientRequestBatch,
                          certificate: CommitCertificate) -> None:
        # Steward represents each cluster-level proof by an (expensive,
        # RSA-era) threshold signature: every member contributes a share
        # and the representative combines them (§1.1, §3).
        self.charge_cpu(self.costs.threshold_share)
        if self.is_primary_cluster:
            # The engine decision *is* the global order.
            self._deliver_global(seq, request, certificate)
            if self._engine.is_primary:
                self.charge_cpu(self.costs.threshold_combine)
                self._disseminate(seq, request, certificate)
            return
        # Site agreement complete: the representative forwards to the
        # primary cluster (redundantly, to f + 1 replicas).
        if self._engine.is_primary:
            instr = self._instrumentation
            if instr is not None:
                instr.phase("shared", self.node_id, self._own_cluster, seq)
            self.charge_cpu(self.costs.threshold_combine)
            forward = StewardForward(self._own_cluster, seq, request,
                                     certificate)
            remote = self._clusters[self._primary_cluster]
            f_remote = max_faulty(len(remote))
            offset = (seq - 1) % len(remote)
            for k in range(f_remote + 1):
                self.send(remote[(offset + k) % len(remote)], forward)

    # ------------------------------------------------------------------
    # Primary-cluster side
    # ------------------------------------------------------------------
    def _on_forward(self, msg: StewardForward, sender: NodeId) -> None:
        if not self.is_primary_cluster:
            return
        if msg.request.batch_id in self._submitted_to_global:
            return
        origin_members = self._clusters.get(msg.origin_cluster)
        if origin_members is None:
            return
        quorum = len(origin_members) - max_faulty(len(origin_members))
        try:
            msg.certificate.verify(self.registry, quorum)
        except InvalidCertificateError:
            return
        self._submitted_to_global.add(msg.request.batch_id)
        if self._engine.is_primary:
            self._engine.submit_request(msg.request)
        else:
            self.send(self._engine.primary, msg.request)

    def _disseminate(self, gseq: SeqNum, request: ClientRequestBatch,
                     certificate: CommitCertificate) -> None:
        order = StewardGlobalOrder(gseq, self._own_cluster, request,
                                   certificate, forwarded=False)
        for cluster, members in self._clusters.items():
            if cluster == self._primary_cluster:
                continue
            f_remote = max_faulty(len(members))
            offset = (gseq - 1) % len(members)
            for k in range(f_remote + 1):
                self.send(members[(offset + k) % len(members)], order)

    # ------------------------------------------------------------------
    # Dissemination and execution
    # ------------------------------------------------------------------
    def _on_global_order(self, msg: StewardGlobalOrder,
                         sender: NodeId) -> None:
        if self.is_primary_cluster:
            return  # primary cluster executes via its engine
        if msg.global_seq <= self._executed_upto:
            return
        if msg.global_seq in self._exec_buffer:
            return
        primary_members = self._clusters[self._primary_cluster]
        quorum = len(primary_members) - max_faulty(len(primary_members))
        try:
            msg.certificate.verify(self.registry, quorum)
        except InvalidCertificateError:
            return
        instr = self._instrumentation
        if instr is not None:
            instr.phase("share_received", self.node_id,
                        self._primary_cluster, msg.global_seq,
                        detail=self._own_cluster)
        if sender.cluster != self._own_cluster:
            # Local phase: fan the order out within the site.
            local = StewardGlobalOrder(msg.global_seq, msg.origin_cluster,
                                       msg.request, msg.certificate,
                                       forwarded=True)
            self.broadcast(self._members, local)
        self._exec_buffer[msg.global_seq] = (msg.request, msg.certificate)
        self._drain_exec_buffer()

    def _drain_exec_buffer(self) -> None:
        while (self._executed_upto + 1) in self._exec_buffer:
            gseq = self._executed_upto + 1
            request, certificate = self._exec_buffer.pop(gseq)
            self._deliver_global(gseq, request, certificate)

    def _deliver_global(self, gseq: SeqNum, request: ClientRequestBatch,
                        certificate: CommitCertificate) -> None:
        self._executed_upto = max(self._executed_upto, gseq)
        instr = self._instrumentation
        if instr is not None:
            instr.phase("ordered", self.node_id, self._own_cluster, gseq)
        results, done_at = self.execute_batch(request.batch)
        self.ledger.append(gseq, self._primary_cluster, request.batch,
                           certificate,
                           batch_digest=request.digest(),
                           certificate_digest=certificate.digest())
        if instr is not None:
            instr.phase("executed", self.node_id, self._own_cluster, gseq)
        if (request.signature is not None
                and request.client.cluster == self._own_cluster):
            reply = ClientReply(
                batch_id=request.batch_id,
                replica=self.node_id,
                cluster_id=self._own_cluster,
                round_id=gseq,
                results_digest=self.executor.results_digest(results),
                batch_len=len(request.batch),
            )
            self.send_at(done_at, request.client, reply)
