"""The campaign registry and the built-in paper campaigns.

``register_campaign`` mirrors the failure-scenario registry
(:func:`repro.bench.scenarios.register_scenario`): campaigns are
registered as *factories* so the grids re-read the scale-control
environment (``REPRO_BENCH_FULL``, ``REPRO_BENCH_DURATION``,
``REPRO_BENCH_TIME_SCALE``) every time a campaign is built — the same
knobs the bespoke benchmark scripts have always honoured.

Built-ins::

    fig10     geo-scale sweep (throughput/latency vs #regions)
    fig11     cluster-size sweep (z = 4)
    fig12     failure panels (one backup, f backups, primary crash)
    fig13     batch-size sweep (z = 4, n = 7)
    table1    simulated WAN matrix (probe-only, no deployment runs)
    table2    message complexity, analytic vs measured
    scale     engine wall-time sweep -> BENCH_scale.json
    ci-smoke  the scale sweep's n=16 serial/parallel pair
    paper     fig10 + fig11 + scale in one DAG
    overload  open-loop traffic 0.5x-4x saturation -> BENCH_overload.json
    chaos     protocol x chaos_smoke matrix with the invariant audit
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Callable, Dict, List, Tuple

from ..bench.deployment import ExperimentConfig
from ..consensus.pbft import PbftConfig
from ..core.config import GeoBftConfig
from ..errors import ConfigurationError
from ..workload.traffic import TrafficSpec
from .model import Campaign, ReportSpec, RunSpec
from .reports import (build_chaos, build_fig10, build_fig11, build_fig12,
                      build_fig13, build_overload, build_scale,
                      build_table1, build_table2)
from .store import overload_run_id, scale_run_id

PROTOCOLS = ("geobft", "pbft", "zyzzyva", "hotstuff", "steward")

#: Scale-sweep grids (mirrors benchmarks/bench_scale.py).
SCALE_POINTS = (16, 32, 64, 91, 256)
SCALE_WORKERS = (1, 2)
SCALE_SIM_DURATION = 1.2
SCALE_SIM_WARMUP = 0.3

#: Overload sweep: open-loop offered load as a multiple of each
#: protocol's measured saturation goodput.
OVERLOAD_USERS = 1_200_000
OVERLOAD_FACTORS = (0.5, 1.0, 2.0, 4.0)

#: Closed-loop saturation goodput (txn/s) measured at the overload
#: point config (2x4, batch=100, fast crypto, 4 clients x 8
#: outstanding) — the x-axis anchor: offered load is ``x * SAT``.
OVERLOAD_SATURATION = {
    "geobft": 125_000,
    "pbft": 80_000,
    "zyzzyva": 125_000,
    "hotstuff": 50_000,
    "steward": 3_600,
}


# ----------------------------------------------------------------------
# Scale control (environment knobs shared with the bench scripts)
# ----------------------------------------------------------------------

def full_scale() -> bool:
    """``REPRO_BENCH_FULL=1``: the paper's exact deployment sizes."""
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


def sim_duration(default: float) -> float:
    """Simulated seconds per data point.

    ``REPRO_BENCH_DURATION`` replaces every duration with an absolute
    value; ``REPRO_BENCH_TIME_SCALE`` multiplies the per-figure defaults
    (preserving their relative lengths — e.g. the longer primary-failure
    recovery window stays proportionally longer).
    """
    override = os.environ.get("REPRO_BENCH_DURATION")
    if override:
        return float(override)
    scale = float(os.environ.get("REPRO_BENCH_TIME_SCALE", "1.0"))
    return default * scale


def point_config(protocol: str, num_clusters: int, replicas_per_cluster: int,
                 batch_size: int = 100, duration: float = 1.6,
                 warmup: float = 0.4, seed: int = 2,
                 **overrides: Any) -> ExperimentConfig:
    """One figure data point, with benchmark-appropriate defaults."""
    params: Dict[str, Any] = dict(
        protocol=protocol,
        num_clusters=num_clusters,
        replicas_per_cluster=replicas_per_cluster,
        batch_size=batch_size,
        duration=sim_duration(duration),
        warmup=warmup,
        seed=seed,
        record_count=10_000,
        fast_crypto=True,
    )
    if "duration" in overrides:
        overrides = dict(overrides)
        overrides["duration"] = sim_duration(overrides["duration"])
    params.update(overrides)
    return ExperimentConfig(**params)


def geo_scale_points() -> List[Tuple[int, int]]:
    """(z, n) pairs for Figure 10: fixed total replicas spread over a
    growing number of regions."""
    if full_scale():
        total = 60
        zs = [1, 2, 3, 4, 5, 6]
    else:
        total = 24
        zs = [1, 2, 3, 4, 6]
    return [(z, total // z) for z in zs]


def cluster_size_points() -> List[int]:
    """n values for Figure 11 (z = 4)."""
    return [4, 7, 10, 12, 15] if full_scale() else [4, 7, 10]


def failure_points() -> List[int]:
    """n values for Figure 12 (z = 4)."""
    return [4, 7, 10, 12] if full_scale() else [4, 7]


def batch_points() -> List[int]:
    """Batch sizes for Figure 13 (z = 4, n = 7)."""
    return [10, 50, 100, 200, 300]


def scale_config(total: int, seed: int = 2,
                 protocol: str = "geobft") -> ExperimentConfig:
    """Deployment config for ``total`` replicas (the scale sweep).

    n=91 reproduces the paper's six-region spread (16+15×5); the
    smaller points use four equal clusters so f ≥ 1 per cluster holds
    down to n=16.
    """
    if total == 91:
        z, sizes = 6, [16, 15, 15, 15, 15, 15]
    else:
        z, sizes = 4, [total // 4] * 4
    return ExperimentConfig(
        protocol=protocol,
        num_clusters=z,
        replicas_per_cluster=sizes[0],
        cluster_sizes=sizes,
        batch_size=100,
        duration=SCALE_SIM_DURATION,
        warmup=SCALE_SIM_WARMUP,
        seed=seed,
        record_count=10_000,
        fast_crypto=True,
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

CampaignFactory = Callable[[], Campaign]

_CAMPAIGNS: Dict[str, CampaignFactory] = {}


def register_campaign(name: str, factory: CampaignFactory,
                      replace: bool = False) -> None:
    """Register a campaign factory under ``name``.

    Mirrors :func:`repro.bench.scenarios.register_scenario`: re-using a
    name raises unless ``replace=True`` (tests and downstream projects
    may deliberately override a built-in).
    """
    if name in _CAMPAIGNS and not replace:
        raise ConfigurationError(
            f"campaign {name!r} is already registered "
            "(pass replace=True to override)")
    _CAMPAIGNS[name] = factory


def campaign_names() -> List[str]:
    """Registered campaign names, sorted."""
    return sorted(_CAMPAIGNS)


def get_campaign(name: str) -> Campaign:
    """Build the registered campaign ``name`` (grids read the current
    environment, so the same name can expand differently under
    ``REPRO_BENCH_FULL=1``)."""
    try:
        factory = _CAMPAIGNS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown campaign {name!r}; registered: "
            f"{', '.join(campaign_names())}") from None
    campaign = factory()
    if campaign.name != name:
        raise ConfigurationError(
            f"campaign factory for {name!r} built a campaign named "
            f"{campaign.name!r}")
    return campaign


# ----------------------------------------------------------------------
# Built-in campaigns
# ----------------------------------------------------------------------

def fig10_campaign() -> Campaign:
    points = geo_scale_points()
    runs = []
    for protocol in PROTOCOLS:
        for i, (z, n) in enumerate(points):
            runs.append(RunSpec(
                run_id=f"fig10/{protocol}/z{z}",
                config=point_config(protocol, z, n, duration=1.4),
                tags={"figure": "fig10", "protocol": protocol,
                      "x": z, "xi": i, "total": z * n}))
    return Campaign(
        name="fig10",
        description="Figure 10 — throughput/latency vs #clusters at a "
                    "fixed total replica budget",
        runs=tuple(runs),
        reports=(ReportSpec("fig10", "fig10.txt", build_fig10),))


def fig11_campaign() -> Campaign:
    z = 4
    runs = []
    for protocol in PROTOCOLS:
        for i, n in enumerate(cluster_size_points()):
            runs.append(RunSpec(
                run_id=f"fig11/{protocol}/n{n}",
                config=point_config(protocol, z, n, duration=1.4),
                tags={"figure": "fig11", "protocol": protocol,
                      "x": n, "xi": i}))
    return Campaign(
        name="fig11",
        description="Figure 11 — throughput/latency vs replicas per "
                    "cluster (z = 4)",
        runs=tuple(runs),
        reports=(ReportSpec("fig11", "fig11.txt", build_fig11),))


def fig12_campaign() -> Campaign:
    z = 4
    points = failure_points()

    def config(protocol: str, n: int, **overrides: Any) -> ExperimentConfig:
        params: Dict[str, Any] = dict(duration=2.0, warmup=0.5)
        params.update(overrides)
        return point_config(protocol, z, n, **params)

    runs = []
    for scenario in ("one_backup", "f_backups"):
        for protocol in PROTOCOLS:
            for i, n in enumerate(points):
                runs.append(RunSpec(
                    run_id=f"fig12/{scenario}/{protocol}/n{n}",
                    config=config(protocol, n),
                    scenario=scenario,
                    tags={"figure": "fig12", "panel": scenario,
                          "protocol": protocol, "x": n, "xi": i}))
    # Primary-crash panel (GeoBFT + PBFT only, as in the paper) with its
    # failure-free reference runs.  Recovery timers are absolute, so the
    # window must not shrink with REPRO_BENCH_TIME_SCALE — the duration
    # is forced after point_config applies the env knobs.
    for protocol in ("geobft", "pbft"):
        for i, n in enumerate(points):
            baseline = dataclasses.replace(
                config(protocol, n, warmup=0.4), duration=4.5)
            runs.append(RunSpec(
                run_id=f"fig12/baseline/{protocol}/n{n}",
                config=baseline,
                tags={"figure": "fig12", "panel": "baseline",
                      "protocol": protocol, "x": n, "xi": i}))
    for protocol in ("geobft", "pbft"):
        for i, n in enumerate(points):
            crashed = dataclasses.replace(
                config(protocol, n, warmup=0.4, view_change_timeout=0.6,
                       client_retry_timeout=1.2, checkpoint_interval=6),
                duration=4.5)
            runs.append(RunSpec(
                run_id=f"fig12/primary/{protocol}/n{n}",
                config=crashed,
                scenario="primary",
                fail_at=0.8,
                # The recovery run is judged against its failure-free
                # reference, so the reference must exist first.
                depends_on=(f"fig12/baseline/{protocol}/n{n}",),
                tags={"figure": "fig12", "panel": "primary",
                      "protocol": protocol, "x": n, "xi": i}))
    return Campaign(
        name="fig12",
        description="Figure 12 — throughput under crash failures "
                    "(one backup, f backups, primary)",
        runs=tuple(runs),
        reports=(ReportSpec("fig12", "fig12.txt", build_fig12),))


def fig13_campaign() -> Campaign:
    z, n = 4, 7
    runs = []
    for protocol in PROTOCOLS:
        for i, batch in enumerate(batch_points()):
            runs.append(RunSpec(
                run_id=f"fig13/{protocol}/b{batch}",
                config=point_config(protocol, z, n, batch_size=batch,
                                    duration=1.4),
                tags={"figure": "fig13", "protocol": protocol,
                      "x": batch, "xi": i}))
    return Campaign(
        name="fig13",
        description="Figure 13 — throughput vs batch size (z = 4, n = 7)",
        runs=tuple(runs),
        reports=(ReportSpec("fig13", "fig13.txt", build_fig13),))


def table1_campaign() -> Campaign:
    return Campaign(
        name="table1",
        description="Table 1 — simulated WAN RTT/bandwidth matrix "
                    "(network probes; no deployment runs)",
        runs=(),
        reports=(ReportSpec("table1", "table1.txt", build_table1),))


def table2_campaign() -> Campaign:
    z, n = 4, 7
    runs = []
    for protocol in PROTOCOLS:
        runs.append(RunSpec(
            run_id=f"table2/{protocol}",
            config=point_config(protocol, z, n, batch_size=50,
                                duration=1.2, warmup=0.3),
            tags={"figure": "table2", "protocol": protocol}))
    return Campaign(
        name="table2",
        description="Table 2 — message complexity per decision, "
                    "analytic vs measured",
        runs=tuple(runs),
        reports=(ReportSpec("table2", "table2.txt", build_table2),))


def _scale_runs(points: Tuple[int, ...],
                workers: Tuple[int, ...]) -> Tuple[RunSpec, ...]:
    runs = []
    for total in points:
        for w in workers:
            config = scale_config(total)
            if w > 1:
                config = dataclasses.replace(config, workers=w)
            # A parallel point depends on its serial twin: the digest-
            # parity gate needs the reference record first.
            deps = ((scale_run_id(total, 1),)
                    if w > 1 and 1 in workers else ())
            runs.append(RunSpec(
                run_id=scale_run_id(total, w),
                config=config,
                depends_on=deps,
                tags={"figure": "scale", "n": total, "workers": w}))
    return tuple(runs)


def scale_campaign() -> Campaign:
    return Campaign(
        name="scale",
        description="Engine wall-time sweep at paper scale; regenerates "
                    "BENCH_scale.json",
        runs=_scale_runs(SCALE_POINTS, SCALE_WORKERS),
        reports=(ReportSpec("bench-scale", "BENCH_scale.json",
                            build_scale),))


def overload_spec(protocol: str, x: float) -> TrafficSpec:
    """The open-loop traffic spec for one overload point.

    ``OVERLOAD_USERS`` users collectively offer ``x`` times the
    protocol's saturation goodput as a Poisson arrival process, with
    the client-side overload semantics fixed across the sweep: a
    bounded in-flight window (admission control), a 0.75 s commit
    deadline, and two seeded retries with exponential backoff.
    """
    rate = x * OVERLOAD_SATURATION[protocol] / OVERLOAD_USERS
    return TrafficSpec(
        process="poisson",
        users=OVERLOAD_USERS,
        rate_per_user=rate,
        tick=0.02,
        deadline=0.75,
        max_retries=2,
        retry_backoff=0.25,
        window=20_000,
    )


def overload_campaign() -> Campaign:
    """Offered-load sweep from 0.5x to 4x saturation, all protocols.

    GeoBFT — the protocol with region-affine sources and the parallel
    engine's natural partition — additionally runs every point at
    workers=2 for the serial/parallel digest-parity gate, and one 2x
    point swaps in the conflict-bearing payment workload.
    """
    runs = []
    for protocol in PROTOCOLS:
        worker_grid = (1, 2) if protocol == "geobft" else (1,)
        for i, x in enumerate(OVERLOAD_FACTORS):
            for w in worker_grid:
                config = point_config(
                    protocol, 2, 4, traffic=overload_spec(protocol, x))
                if w > 1:
                    config = dataclasses.replace(config, workers=w)
                # A parallel point depends on its serial twin: the
                # digest-parity gate needs the reference record first.
                deps = ((overload_run_id(protocol, x, 1),)
                        if w > 1 else ())
                runs.append(RunSpec(
                    run_id=overload_run_id(protocol, x, w),
                    config=config,
                    depends_on=deps,
                    tags={"figure": "overload", "protocol": protocol,
                          "x": x, "xi": i, "workers": w,
                          "workload": "ycsb"}))
    # One conflict-bearing point: interbank payments at 2x saturation.
    runs.append(RunSpec(
        run_id=overload_run_id("geobft", 2.0, 1, "payment"),
        config=point_config("geobft", 2, 4,
                            traffic=overload_spec("geobft", 2.0)),
        scenario="payment_network",
        tags={"figure": "overload", "protocol": "geobft", "x": 2.0,
              "xi": 2, "workers": 1, "workload": "payment"}))
    return Campaign(
        name="overload",
        description="Open-loop overload sweep (0.5x-4x saturation, "
                    f"{OVERLOAD_USERS:,} modeled users); regenerates "
                    "BENCH_overload.json",
        runs=tuple(runs),
        reports=(ReportSpec("bench-overload", "BENCH_overload.json",
                            build_overload),))


def chaos_config(protocol: str) -> ExperimentConfig:
    """The chaos-smoke deployment (mirrors ``tests/test_chaos.py``).

    A 2x4 deployment tuned so crash recovery, partition healing, and
    the view changes the Byzantine faults force all fit in the run.
    The duration is absolute — the timeline's fault instants and
    recovery timers are absolute simulated times, so the window must
    not shrink under ``REPRO_BENCH_TIME_SCALE``.
    """
    return ExperimentConfig(
        protocol=protocol, num_clusters=2, replicas_per_cluster=4,
        batch_size=5, clients_per_cluster=1, client_outstanding=2,
        duration=10.0, warmup=0.5, seed=3, fast_crypto=True,
        record_count=100, view_change_timeout=0.8,
        client_retry_timeout=2.0,
        geobft=GeoBftConfig(pbft=PbftConfig(view_change_timeout=0.8,
                                            new_view_timeout=0.8),
                            remote_timeout=0.8),
    )


def chaos_campaign() -> Campaign:
    """The chaos matrix: every protocol through the seeded
    ``chaos_smoke`` timeline (crash + partition/heal + Byzantine
    tampering), with the invariant audit as the report — the campaign
    form of the per-protocol CI chaos-smoke jobs."""
    runs = []
    for protocol in PROTOCOLS:
        runs.append(RunSpec(
            run_id=f"chaos/{protocol}",
            config=chaos_config(protocol),
            scenario="chaos_smoke",
            tags={"figure": "chaos", "protocol": protocol}))
    return Campaign(
        name="chaos",
        description="Chaos matrix — every protocol through the seeded "
                    "crash/partition/Byzantine timeline, audited",
        runs=tuple(runs),
        reports=(ReportSpec("chaos-audit", "chaos_audit.txt",
                            build_chaos),))


def ci_smoke_campaign() -> Campaign:
    return Campaign(
        name="ci-smoke",
        description="CI perf smoke: the scale sweep's n=16 "
                    "serial/parallel pair (digest parity + wall budget)",
        runs=_scale_runs((16,), SCALE_WORKERS))


def paper_campaign() -> Campaign:
    """The headline composite: geo-scale + cluster-size figures plus the
    engine scale sweep, as one DAG (run ids keep their own prefixes, so
    ``--filter fig10/`` etc. still select one figure)."""
    parts = (fig10_campaign(), fig11_campaign(), scale_campaign())
    runs: Tuple[RunSpec, ...] = ()
    reports: Tuple[ReportSpec, ...] = ()
    for part in parts:
        runs += part.runs
        reports += part.reports
    return Campaign(
        name="paper",
        description="Reproduce the paper's headline results: fig10 + "
                    "fig11 + the engine scale sweep",
        runs=runs,
        reports=reports)


register_campaign("fig10", fig10_campaign)
register_campaign("fig11", fig11_campaign)
register_campaign("fig12", fig12_campaign)
register_campaign("fig13", fig13_campaign)
register_campaign("table1", table1_campaign)
register_campaign("table2", table2_campaign)
register_campaign("scale", scale_campaign)
register_campaign("ci-smoke", ci_smoke_campaign)
register_campaign("paper", paper_campaign)
register_campaign("overload", overload_campaign)
register_campaign("chaos", chaos_campaign)


__all__ = [
    "OVERLOAD_FACTORS",
    "OVERLOAD_SATURATION",
    "OVERLOAD_USERS",
    "PROTOCOLS",
    "SCALE_POINTS",
    "SCALE_SIM_DURATION",
    "SCALE_SIM_WARMUP",
    "SCALE_WORKERS",
    "batch_points",
    "campaign_names",
    "chaos_config",
    "cluster_size_points",
    "failure_points",
    "full_scale",
    "geo_scale_points",
    "get_campaign",
    "overload_spec",
    "point_config",
    "register_campaign",
    "scale_config",
    "sim_duration",
]
