"""Report builders: campaign records in, figure/table artifacts out.

Each builder is a :class:`~repro.sweep.model.ReportSpec` ``build``
callable: it receives a campaign's successful records (in campaign run
order) and returns the artifact's full text.  Builders are pure
functions of the records — byte-identical records regenerate
byte-identical artifacts, which is what lets EXPERIMENTS.md tables,
figure files, and the ``BENCH_scale.json`` baseline all re-derive from
the result store.

Builders select their own records by the ``figure`` tag, so they
compose: the ``paper`` campaign concatenates several figures' runs and
hands every report the full record list.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from ..bench.charts import ascii_chart
from ..bench.reporting import format_figure_series, format_table
from .model import record_series
from .store import render_bench_overload, render_bench_scale


def figure_records(records: Iterable[Mapping[str, Any]],
                   figure: str) -> List[Mapping[str, Any]]:
    """The records tagged as belonging to ``figure``."""
    return [r for r in records
            if r.get("tags", {}).get("figure") == figure]


def _require(records: Sequence[Mapping[str, Any]], figure: str) -> None:
    if not records:
        raise ValueError(
            f"no records tagged figure={figure!r}; run the campaign "
            "(or drop the filter) before rendering this report")


# ----------------------------------------------------------------------
# Figures 10, 11, 13 — protocol series over one axis
# ----------------------------------------------------------------------

def build_fig10(records: Sequence[Mapping[str, Any]]) -> str:
    recs = figure_records(records, "fig10")
    _require(recs, "fig10")
    zs, throughput = record_series(recs, "throughput_txn_s")
    _, latency = record_series(recs, "avg_latency_s")
    total = recs[0]["tags"]["total"]
    return "\n".join([
        format_figure_series(
            f"Figure 10 (reproduced) — throughput vs #clusters "
            f"(zn = {total} replicas total)",
            "z", zs, throughput, "txn/s"),
        "",
        ascii_chart("Figure 10 — throughput (txn/s)", "clusters", zs,
                    throughput),
        "",
        format_figure_series(
            "Figure 10 (reproduced) — latency vs #clusters",
            "z", zs, latency, "s"),
    ]) + "\n"


def build_fig11(records: Sequence[Mapping[str, Any]]) -> str:
    recs = figure_records(records, "fig11")
    _require(recs, "fig11")
    ns, throughput = record_series(recs, "throughput_txn_s")
    _, latency = record_series(recs, "avg_latency_s")
    z = recs[0]["config"]["num_clusters"]
    return "\n".join([
        format_figure_series(
            f"Figure 11 (reproduced) — throughput vs replicas/cluster "
            f"(z={z})",
            "n", ns, throughput, "txn/s"),
        "",
        format_figure_series(
            "Figure 11 (reproduced) — latency vs replicas/cluster",
            "n", ns, latency, "s"),
    ]) + "\n"


def build_fig13(records: Sequence[Mapping[str, Any]]) -> str:
    recs = figure_records(records, "fig13")
    _require(recs, "fig13")
    batches, throughput = record_series(recs, "throughput_txn_s")
    config = recs[0]["config"]
    return "\n".join([
        format_figure_series(
            f"Figure 13 (reproduced) — throughput vs batch size "
            f"(z={config['num_clusters']}, "
            f"n={config['replicas_per_cluster']})",
            "batch", batches, throughput, "txn/s"),
        "",
        ascii_chart("Figure 13 — throughput (txn/s)", "batch size",
                    batches, throughput),
    ]) + "\n"


# ----------------------------------------------------------------------
# Figure 12 — failure panels
# ----------------------------------------------------------------------

def fig12_panels(records: Iterable[Mapping[str, Any]],
                 ) -> Tuple[List[Any], Dict[str, Dict[str, List[float]]]]:
    """``(n_points, {panel: {protocol: [txn/s, ...]}})`` for Figure 12."""
    recs = figure_records(records, "fig12")
    _require(recs, "fig12")
    panels: Dict[str, Dict[str, List[float]]] = {}
    points: List[Any] = []
    for panel in ("one_backup", "f_backups", "primary", "baseline"):
        sub = [r for r in recs if r["tags"].get("panel") == panel]
        if not sub:
            continue
        xs, series = record_series(sub, "throughput_txn_s")
        panels[panel] = series
        points = points or xs
    return points, panels


def build_fig12(records: Sequence[Mapping[str, Any]]) -> str:
    points, panels = fig12_panels(records)
    titles = {
        "one_backup": "Figure 12 left (reproduced) — one non-primary "
                      "failure",
        "f_backups": "Figure 12 middle (reproduced) — f non-primary "
                     "failures/cluster",
        "primary": "Figure 12 right (reproduced) — single primary "
                   "failure",
        "baseline": "(reference) failure-free runs for the "
                    "primary-failure panel",
    }
    parts = []
    for panel, title in titles.items():
        if panel in panels:
            parts.append(format_figure_series(
                title, "n", points, panels[panel], "txn/s"))
    return "\n\n".join(parts) + "\n"


# ----------------------------------------------------------------------
# Table 1 — the simulated WAN matrix (probe runs, no deployments)
# ----------------------------------------------------------------------

class _Probe:
    """A measurement endpoint that echoes pings."""

    def __init__(self, node_id: Any, region: str, network: Any):
        self.node_id = node_id
        self.region = region
        self.network = network
        self.received_at: Dict[str, float] = {}
        network.register(self)

    def deliver(self, message: Any, sender: Any) -> None:
        kind, ident, size = message
        if kind == "ping":
            self.network.send(self.node_id, sender,
                              _Sized(("pong", ident, size)))
        else:
            self.received_at[ident] = self.network.simulation.now


class _Sized(tuple):
    def size_bytes(self) -> int:
        return self[2]


def probe_pair(topology: Any, region_a: str,
               region_b: str) -> Tuple[float, float]:
    """Measure (rtt_ms, bandwidth_mbit) between two regions."""
    from ..net.network import Network
    from ..net.simulator import Simulation
    from ..types import replica_id

    sim = Simulation()
    network = Network(sim, topology)
    a = _Probe(replica_id(1, 1), region_a, network)
    b = _Probe(replica_id(2, 1), region_b, network)
    # Ping: 64-byte message both ways.
    start = sim.now
    network.send(a.node_id, b.node_id, _Sized(("ping", "p1", 64)))
    sim.run()
    rtt_ms = (a.received_at["p1"] - start) * 1000.0
    # Bandwidth: time a 4 MB bulk transfer, subtract propagation.
    size = 4_000_000
    start = sim.now
    network.send(a.node_id, b.node_id, _Sized(("data", "d1", size)))
    sim.run()
    elapsed = b.received_at["d1"] - start
    transfer = elapsed - topology.latency(region_a, region_b)
    bandwidth_mbit = size * 8 / transfer / 1e6
    return rtt_ms, bandwidth_mbit


def probe_table1() -> Tuple[Any, Dict[Tuple[str, str],
                                      Tuple[float, float]]]:
    """Probe the full paper topology; ``(topology, measured)``.

    ``measured`` maps upper-triangle ``(region_a, region_b)`` pairs to
    ``(rtt_ms, bandwidth_mbit)`` — the data behind both Table 1 halves.
    """
    from ..net.topology import PAPER_REGIONS, Topology

    topology = Topology.paper(6)
    measured: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for i, a in enumerate(PAPER_REGIONS):
        for j, b in enumerate(PAPER_REGIONS):
            if j < i:
                continue
            measured[(a, b)] = probe_pair(topology, a, b)
    return topology, measured


def format_table1(measured: Mapping[Tuple[str, str],
                                    Tuple[float, float]]) -> str:
    """Both halves of Table 1 from a probe matrix."""
    from ..net.topology import PAPER_REGIONS

    rtt_rows, bw_rows = [], []
    for i, a in enumerate(PAPER_REGIONS):
        rtt_row: List[Any] = [a]
        bw_row: List[Any] = [a]
        for j, b in enumerate(PAPER_REGIONS):
            if j < i:
                rtt_row.append("")
                bw_row.append("")
                continue
            rtt, bw = measured[(a, b)]
            rtt_row.append(round(rtt, 1))
            bw_row.append(round(bw))
        rtt_rows.append(rtt_row)
        bw_rows.append(bw_row)
    header = ["region"] + [r[:3].upper() for r in PAPER_REGIONS]
    return "\n".join([
        format_table(header, rtt_rows,
                     title="Table 1 (reproduced) — ping RTT (ms)"),
        "",
        format_table(header, bw_rows,
                     title="Table 1 (reproduced) — bandwidth (Mbit/s)"),
    ]) + "\n"


def build_table1(records: Sequence[Mapping[str, Any]]) -> str:
    """Table 1 measures the network substrate directly — it has no
    deployment runs, so ``records`` is unused."""
    del records
    _, measured = probe_table1()
    return format_table1(measured)


# ----------------------------------------------------------------------
# Table 2 — message complexity, analytic vs measured
# ----------------------------------------------------------------------

def table2_measured(record: Mapping[str, Any]) -> Tuple[float, float]:
    """Per-decision (local, global) message counts from one record."""
    result = record["result"]
    decisions = max(1, result["completed_txns"]
                    // record["config"]["batch_size"])
    return (result["local_messages"] / decisions,
            result["global_messages"] / decisions)


def build_table2(records: Sequence[Mapping[str, Any]]) -> str:
    from ..analysis.complexity import analytic_complexity

    recs = figure_records(records, "table2")
    _require(recs, "table2")
    rows = []
    z = recs[0]["config"]["num_clusters"]
    n = recs[0]["config"]["replicas_per_cluster"]
    for record in recs:
        protocol = record["tags"]["protocol"]
        analytic = analytic_complexity(protocol, z, n)
        local_pd, global_pd = table2_measured(record)
        rows.append([
            protocol,
            analytic.decisions_per_round,
            round(analytic.per_decision_local()),
            round(analytic.per_decision_global()),
            round(local_pd, 1),
            round(global_pd, 1),
            analytic.centralized,
        ])
    return format_table(
        ["protocol", "decisions", "local (analytic)", "global (analytic)",
         "local (measured)", "global (measured)", "centralized"],
        rows,
        title=f"Table 2 (reproduced) — messages per consensus decision, "
              f"z={z}, n={n}",
    ) + "\n"


# ----------------------------------------------------------------------
# Scale — the BENCH_scale.json baseline
# ----------------------------------------------------------------------

def build_scale(records: Sequence[Mapping[str, Any]]) -> str:
    recs = figure_records(records, "scale")
    _require(recs, "scale")
    return render_bench_scale(recs)


# ----------------------------------------------------------------------
# Overload — the BENCH_overload.json baseline
# ----------------------------------------------------------------------

def build_overload(records: Sequence[Mapping[str, Any]]) -> str:
    recs = figure_records(records, "overload")
    _require(recs, "overload")
    return render_bench_overload(recs)


# ----------------------------------------------------------------------
# Chaos — the invariant-audit matrix
# ----------------------------------------------------------------------

def build_chaos(records: Sequence[Mapping[str, Any]]) -> str:
    """The chaos-matrix audit: one row per protocol, with the
    safety/liveness verdicts the per-protocol CI smoke jobs used to
    assert individually."""
    recs = figure_records(records, "chaos")
    _require(recs, "chaos")
    rows = []
    failures = []
    for record in recs:
        result = record["result"]
        protocol = record["config"]["protocol"]
        safety = bool(result["safety_ok"])
        liveness = bool(result["liveness_ok"])
        throughput = result["throughput_txn_s"]
        rows.append([
            protocol,
            record.get("scenario", "none"),
            "PASS" if safety else "FAIL",
            "PASS" if liveness else "FAIL",
            round(throughput),
            record["digest"][:12],
        ])
        if not safety:
            failures.append(f"{protocol}: safety audit failed")
        if not liveness:
            failures.append(f"{protocol}: liveness audit failed")
        if throughput <= 0:
            failures.append(f"{protocol}: no committed transactions")
    verdict = ("all protocols within fault bounds" if not failures
               else "; ".join(failures))
    return format_table(
        ["protocol", "scenario", "safety", "liveness", "txn/s", "digest"],
        rows,
        title="Chaos matrix — crash + partition + Byzantine tampering, "
              "per protocol",
    ) + f"\nverdict: {verdict}\n"


def chaos_audit_failures(records: Sequence[Mapping[str, Any]]
                         ) -> List[str]:
    """Machine-checkable chaos verdicts (empty == every protocol
    passed its invariant audit with progress)."""
    failures: List[str] = []
    for record in figure_records(records, "chaos"):
        result = record["result"]
        protocol = record["config"]["protocol"]
        if not result["safety_ok"]:
            failures.append(f"{protocol}: safety audit failed")
        if not result["liveness_ok"]:
            failures.append(f"{protocol}: liveness audit failed")
        if result["throughput_txn_s"] <= 0:
            failures.append(f"{protocol}: no committed transactions")
    return failures


__all__ = [
    "build_fig10",
    "build_fig11",
    "build_fig12",
    "build_fig13",
    "build_chaos",
    "build_overload",
    "build_scale",
    "build_table1",
    "build_table2",
    "chaos_audit_failures",
    "fig12_panels",
    "figure_records",
    "format_table1",
    "probe_pair",
    "probe_table1",
    "table2_measured",
]
