"""The queryable result store: JSONL source of truth + SQLite index.

A store is a directory holding:

* ``records.jsonl`` — one canonical-JSON record per completed run,
  append-only.  This file *is* the store; everything else derives from
  it.
* ``index.sqlite`` — a query index over the JSONL (key, campaign,
  run id, protocol, deployment shape, scenario, digest → byte offset).
  Deleting it is safe: :meth:`ResultStore.reindex` rebuilds it from
  the JSONL on next open.

Records are keyed by :meth:`RunSpec.key` — a digest of the full config
+ fault spec — so a campaign re-run finds every point it already has
(cached hits) and executes nothing.  The ``deployment_digest`` of the
simulated run rides in each record, which is what the CI digest-drift
gate compares across machines.

``ResultStore(None)`` gives an ephemeral in-memory store (no files) —
used by the benchmark shims and tests that only need the query API.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..errors import ConfigurationError
from .model import SWEEP_SCHEMA

RECORDS_NAME = "records.jsonl"
INDEX_NAME = "index.sqlite"

#: Indexed columns: record-field path -> sqlite column.
_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS records (
    key TEXT PRIMARY KEY,
    campaign TEXT,
    run_id TEXT,
    protocol TEXT,
    num_clusters INTEGER,
    replicas_per_cluster INTEGER,
    batch_size INTEGER,
    seed INTEGER,
    workers INTEGER,
    scenario TEXT,
    status TEXT,
    digest TEXT,
    offset INTEGER
);
CREATE INDEX IF NOT EXISTS idx_campaign ON records (campaign);
CREATE INDEX IF NOT EXISTS idx_run_id ON records (run_id);
CREATE INDEX IF NOT EXISTS idx_digest ON records (digest);
"""


def _index_row(record: Mapping[str, Any], offset: int) -> tuple:
    config = record.get("config", {})
    return (
        record["key"],
        record.get("campaign", ""),
        record.get("run_id", ""),
        config.get("protocol", ""),
        config.get("num_clusters", 0),
        config.get("replicas_per_cluster", 0),
        config.get("batch_size", 0),
        config.get("seed", 0),
        config.get("workers", 1),
        record.get("scenario", "none"),
        record.get("status", "ok"),
        record.get("digest", ""),
        offset,
    )


def encode_record(record: Mapping[str, Any]) -> str:
    """Canonical single-line JSON for one record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Digest-keyed store of completed sweep runs.

    The public query surface:

    * :meth:`get` — the record for one run key (or ``None``).
    * :meth:`has` — whether a key has a successful record (the cached-
      hit test the scheduler uses).
    * :meth:`query` — records matching equality filters on the indexed
      columns, in insertion order (deterministic).
    * :meth:`add` — append a record (overwrites the key's previous
      record in the index; the JSONL keeps full history).
    """

    def __init__(self, path: Optional[str]):
        self.path = path
        self._memory: Dict[str, Dict[str, Any]] = {}
        self._order: List[str] = []
        self._db: Optional[sqlite3.Connection] = None
        if path is not None:
            os.makedirs(path, exist_ok=True)
            self._db = sqlite3.connect(self._index_path)
            self._db.executescript(_SCHEMA_SQL)
            if self._index_is_stale():
                self.reindex()

    # ------------------------------------------------------------------
    # Paths & lifecycle
    # ------------------------------------------------------------------
    @property
    def records_path(self) -> str:
        assert self.path is not None
        return os.path.join(self.path, RECORDS_NAME)

    @property
    def _index_path(self) -> str:
        assert self.path is not None
        return os.path.join(self.path, INDEX_NAME)

    def close(self) -> None:
        if self._db is not None:
            self._db.close()
            self._db = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _index_is_stale(self) -> bool:
        """True when the JSONL holds records the index does not."""
        assert self._db is not None
        count = self._db.execute(
            "SELECT count(*) FROM records").fetchone()[0]
        if not os.path.exists(self.records_path):
            return count > 0
        lines = 0
        with open(self.records_path, "rb") as fh:
            for line in fh:
                if line.strip():
                    lines += 1
        # Overwritten keys make lines >= count legitimate; a fresh or
        # deleted index (count == 0) with records present must rebuild.
        return count == 0 and lines > 0

    def reindex(self) -> int:
        """Rebuild the SQLite index from the JSONL; returns row count."""
        assert self._db is not None
        self._db.execute("DELETE FROM records")
        total = 0
        if os.path.exists(self.records_path):
            with open(self.records_path, "rb") as fh:
                offset = 0
                for line in fh:
                    stripped = line.strip()
                    if stripped:
                        record = json.loads(stripped.decode("utf-8"))
                        self._upsert(record, offset)
                        total += 1
                    offset += len(line)
        self._db.commit()
        return total

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _upsert(self, record: Mapping[str, Any], offset: int) -> None:
        assert self._db is not None
        self._db.execute(
            "INSERT OR REPLACE INTO records VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            _index_row(record, offset))

    def add(self, record: Mapping[str, Any]) -> None:
        """Append one record (must carry ``key``; schema-stamped)."""
        if "key" not in record:
            raise ConfigurationError("store record must carry a 'key'")
        doc = dict(record)
        doc.setdefault("schema", SWEEP_SCHEMA)
        if self.path is None:
            if doc["key"] not in self._memory:
                self._order.append(doc["key"])
            self._memory[doc["key"]] = doc
            return
        line = (encode_record(doc) + "\n").encode("utf-8")
        offset = (os.path.getsize(self.records_path)
                  if os.path.exists(self.records_path) else 0)
        with open(self.records_path, "ab") as fh:
            fh.write(line)
        self._upsert(doc, offset)
        assert self._db is not None
        self._db.commit()

    def add_all(self, records: Iterable[Mapping[str, Any]]) -> int:
        count = 0
        for record in records:
            self.add(record)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _load_at(self, offset: int) -> Dict[str, Any]:
        with open(self.records_path, "rb") as fh:
            fh.seek(offset)
            return json.loads(fh.readline().decode("utf-8"))

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The latest record for ``key``, or ``None``."""
        if self.path is None:
            return self._memory.get(key)
        assert self._db is not None
        row = self._db.execute(
            "SELECT offset FROM records WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        return self._load_at(row[0])

    def has(self, key: str) -> bool:
        """Whether ``key`` has a *successful* record (a cached hit)."""
        record = self.get(key)
        return record is not None and record.get("status") == "ok"

    def query(self, **filters: Any) -> List[Dict[str, Any]]:
        """Records matching equality ``filters`` on indexed columns.

        Supported filters: ``campaign``, ``run_id``, ``protocol``,
        ``num_clusters``, ``replicas_per_cluster``, ``batch_size``,
        ``seed``, ``workers``, ``scenario``, ``status``, ``digest``.
        Records come back in insertion order — deterministic, so
        report regeneration is byte-stable.
        """
        allowed = {"campaign", "run_id", "protocol", "num_clusters",
                   "replicas_per_cluster", "batch_size", "seed",
                   "workers", "scenario", "status", "digest"}
        unknown = set(filters) - allowed
        if unknown:
            raise ConfigurationError(
                f"unknown store filters {sorted(unknown)}; "
                f"expected a subset of {sorted(allowed)}")
        if self.path is None:
            out = []
            for key in self._order:
                record = self._memory[key]
                config = record.get("config", {})
                ok = True
                for name, value in filters.items():
                    actual = (record.get(name) if name in record
                              else config.get(name))
                    if actual != value:
                        ok = False
                        break
                if ok:
                    out.append(record)
            return out
        assert self._db is not None
        clauses, params = [], []
        for name, value in sorted(filters.items()):
            clauses.append(f"{name} = ?")
            params.append(value)
        sql = "SELECT offset FROM records"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY offset"
        rows = self._db.execute(sql, params).fetchall()
        return [self._load_at(offset) for (offset,) in rows]

    def count(self, **filters: Any) -> int:
        return len(self.query(**filters))

    def campaigns(self) -> List[str]:
        """Campaign names present in the store (sorted)."""
        if self.path is None:
            return sorted({r.get("campaign", "")
                           for r in self._memory.values()})
        assert self._db is not None
        rows = self._db.execute(
            "SELECT DISTINCT campaign FROM records ORDER BY campaign")
        return [name for (name,) in rows]


# ----------------------------------------------------------------------
# BENCH_scale.json interop
# ----------------------------------------------------------------------

#: The scale sweep's simulated window (mirrors benchmarks/bench_scale.py).
SCALE_SIM_DURATION = 1.2
SCALE_SCHEMA = "bench-scale/2"
SCALE_BENCHMARK = ("scale sweep (geobft, saturated, batch=100, "
                   f"duration={SCALE_SIM_DURATION}s)")

#: The exact per-point keys of a bench-scale baseline row, in the order
#: they are synthesized from a fresh record.
_SCALE_POINT_KEYS = ("avg_latency_s", "digest", "events", "events_per_s",
                     "max_queue_depth", "n", "protocol",
                     "throughput_txn_s", "wall_s", "workers")


def scale_run_id(n: int, workers: int) -> str:
    return f"scale/n{n}/w{workers}"


def import_bench_scale(path: str,
                       campaign: str = "scale") -> List[Dict[str, Any]]:
    """Store records from a committed ``BENCH_scale.json`` baseline.

    Each point becomes one record whose ``bench`` block is the point
    payload verbatim, so :func:`render_bench_scale` round-trips the
    file byte-identically.  Records are keyed ``bench-scale:<n>:<w>``
    rather than by config fingerprint — a baseline file does not carry
    the full config, and these records exist for regeneration and
    digest comparison, not run caching.
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCALE_SCHEMA:
        raise ConfigurationError(
            f"{path}: expected schema {SCALE_SCHEMA!r}, "
            f"got {payload.get('schema')!r}")
    records = []
    for point in payload.get("points", []):
        workers = point.get("workers", 1)
        records.append({
            "schema": SWEEP_SCHEMA,
            "key": f"bench-scale:{point['n']}:{workers}",
            "campaign": campaign,
            "run_id": scale_run_id(point["n"], workers),
            "tags": {"figure": "scale", "n": point["n"],
                     "workers": workers},
            "config": {"protocol": point.get("protocol", "geobft"),
                       "workers": workers},
            "scenario": "none",
            "status": "ok",
            "digest": point["digest"],
            "bench": dict(point),
            "host": dict(payload.get("host", {})),
        })
    return records


def scale_point_from_record(record: Mapping[str, Any]) -> Dict[str, Any]:
    """The bench-scale point row for one scale-campaign record.

    Imported records carry the row verbatim under ``bench``; fresh runs
    synthesize it from measured fields with the same rounding
    ``benchmarks/bench_scale.py`` has always applied.
    """
    bench = record.get("bench")
    if bench is not None:
        return {k: bench[k] for k in _SCALE_POINT_KEYS if k in bench}
    result = record["result"]
    wall = record["wall_s"]
    events = record["events"]
    return {
        "avg_latency_s": round(result["avg_latency_s"], 6),
        "digest": record["digest"],
        "events": events,
        "events_per_s": round(events / wall),
        "max_queue_depth": record["max_queue_depth"],
        "n": record["tags"]["n"],
        "protocol": record["config"]["protocol"],
        "throughput_txn_s": round(result["throughput_txn_s"]),
        "wall_s": round(wall, 3),
        "workers": record["config"].get("workers", 1),
    }


def render_bench_scale(records: Iterable[Mapping[str, Any]],
                       host: Optional[Mapping[str, Any]] = None) -> str:
    """``BENCH_scale.json`` content regenerated from store records.

    Byte-identical to what ``benchmarks/bench_scale.py`` writes for the
    same measurements: points ordered (n, workers), ``indent=1``,
    sorted keys, trailing newline.  ``host`` defaults to the host block
    of the first record (imported baselines carry the original host).
    """
    records = list(records)
    rows = sorted((scale_point_from_record(r) for r in records),
                  key=lambda p: (p["n"], p["workers"]))
    if not rows:
        raise ConfigurationError(
            "no scale records to render; run the scale campaign first")
    if host is None:
        for record in records:
            if record.get("host"):
                host = record["host"]
                break
        else:
            raise ConfigurationError(
                "no host calibration block in the scale records")
    payload = {
        "schema": SCALE_SCHEMA,
        "benchmark": SCALE_BENCHMARK,
        "host": dict(host),
        "points": rows,
    }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def compare_scale_baseline(records: Iterable[Mapping[str, Any]],
                           calibration: float, baseline: Mapping[str, Any],
                           tolerance: float = 0.30) -> List[str]:
    """The CI perf gate: scale records vs a committed baseline.

    Returns failure strings (empty == pass).  Two checks per point that
    exists in both: **digest equality** (the deployment digest is a pure
    function of the configuration, so it must match on any host — the
    digest-drift gate) and **calibrated rate regression** (events/s
    normalized by each host's calibration loop; a drop beyond
    ``tolerance`` fails).  Mirrors ``benchmarks/bench_scale.py``.

    Baseline rows measured with more workers than the baseline host had
    cpus encode *oversubscribed* wall times — worker processes that
    time-sliced one core look artificially slow, and a healthy
    multi-core host would "regress" against them in either direction.
    Those rows keep the digest gate but skip the rate gate.
    """
    failures: List[str] = []
    base_host = baseline.get("host", {})
    base_cal = base_host.get("calibration_ops_per_s")
    base_cpus = base_host.get("cpus")
    base_points = {(p["n"], p.get("workers", 1)): p
                   for p in baseline.get("points", [])}
    for record in records:
        point = scale_point_from_record(record)
        base = base_points.get((point["n"], point["workers"]))
        if base is None:
            continue
        label = f"n={point['n']} workers={point['workers']}"
        if base["digest"] != point["digest"]:
            failures.append(
                f"{label}: deployment_digest mismatch vs baseline "
                f"({point['digest'][:12]}… != {base['digest'][:12]}…) — "
                "simulated behaviour changed")
        if not base_cal or not calibration:
            continue
        if base_cpus and point["workers"] > base_cpus:
            continue
        current_rate = point["events_per_s"] / calibration
        base_rate = base["events_per_s"] / base_cal
        if current_rate < base_rate * (1.0 - tolerance):
            failures.append(
                f"{label}: calibrated event rate regressed "
                f"{(1.0 - current_rate / base_rate) * 100:.0f}% "
                f"(>{tolerance * 100:.0f}% tolerance): "
                f"{current_rate:.2f} vs baseline {base_rate:.2f} "
                "events per calibration-op")
    return failures


def scale_digest_parity(records: Iterable[Mapping[str, Any]]) -> List[str]:
    """Serial and parallel scale points at one n must share a digest."""
    failures: List[str] = []
    by_n: Dict[int, List[Dict[str, Any]]] = {}
    for record in records:
        point = scale_point_from_record(record)
        by_n.setdefault(point["n"], []).append(point)
    for total, group in sorted(by_n.items()):
        digests = {p["digest"] for p in group}
        if len(digests) > 1:
            detail = ", ".join(
                f"workers={p['workers']}:{p['digest'][:12]}…"
                for p in group)
            failures.append(
                f"n={total}: serial/parallel digest divergence ({detail})")
    return failures


# ----------------------------------------------------------------------
# BENCH_overload.json interop
# ----------------------------------------------------------------------

#: The overload sweep's simulated window (mirrors the overload campaign).
OVERLOAD_SIM_DURATION = 1.6
OVERLOAD_SCHEMA = "bench-overload/1"
OVERLOAD_BENCHMARK = ("overload sweep (open-loop traffic, 0.5x-4x "
                      f"saturation, duration={OVERLOAD_SIM_DURATION}s)")

#: The exact per-point keys of a bench-overload baseline row, in the
#: order they are synthesized from a fresh record.
_OVERLOAD_POINT_KEYS = (
    "abandonment_rate", "digest", "events", "events_per_s",
    "goodput_txn_s", "offered_txn_s", "p50_latency_s", "p95_latency_s",
    "p99_latency_s", "protocol", "users", "wall_s", "workers",
    "workload", "x")


def overload_run_id(protocol: str, x: float, workers: int = 1,
                    workload: str = "ycsb") -> str:
    """Run id of one overload point (``x`` = offered-load factor)."""
    if workload == "ycsb":
        return f"overload/{protocol}/x{x:g}/w{workers}"
    return f"overload/{workload}-{protocol}-x{x:g}"


def import_bench_overload(path: str,
                          campaign: str = "overload"
                          ) -> List[Dict[str, Any]]:
    """Store records from a committed ``BENCH_overload.json`` baseline.

    Mirrors :func:`import_bench_scale`: each point becomes one record
    whose ``bench`` block is the point payload verbatim, keyed
    ``bench-overload:<protocol>:<workload>:<x>:<w>`` for regeneration
    and digest comparison rather than run caching.
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != OVERLOAD_SCHEMA:
        raise ConfigurationError(
            f"{path}: expected schema {OVERLOAD_SCHEMA!r}, "
            f"got {payload.get('schema')!r}")
    records = []
    for point in payload.get("points", []):
        workers = point.get("workers", 1)
        workload = point.get("workload", "ycsb")
        records.append({
            "schema": SWEEP_SCHEMA,
            "key": (f"bench-overload:{point['protocol']}:{workload}:"
                    f"{point['x']:g}:{workers}"),
            "campaign": campaign,
            "run_id": overload_run_id(point["protocol"], point["x"],
                                      workers, workload),
            "tags": {"figure": "overload", "x": point["x"],
                     "workers": workers, "workload": workload},
            "config": {"protocol": point["protocol"], "workers": workers},
            "scenario": "none",
            "status": "ok",
            "digest": point["digest"],
            "bench": dict(point),
            "host": dict(payload.get("host", {})),
        })
    return records


def overload_point_from_record(record: Mapping[str, Any]
                               ) -> Dict[str, Any]:
    """The bench-overload point row for one overload-campaign record.

    Imported records carry the row verbatim under ``bench``; fresh runs
    synthesize it from the result's ``traffic`` block and tail-latency
    percentiles, rounded like the scale points.
    """
    bench = record.get("bench")
    if bench is not None:
        return {k: bench[k] for k in _OVERLOAD_POINT_KEYS if k in bench}
    result = record["result"]
    traffic = result["traffic"]
    wall = record["wall_s"]
    events = record["events"]
    return {
        "abandonment_rate": round(traffic["abandonment_rate"], 6),
        "digest": record["digest"],
        "events": events,
        "events_per_s": round(events / wall),
        "goodput_txn_s": round(traffic["goodput_txn_s"]),
        "offered_txn_s": round(traffic["offered_txn_s"]),
        "p50_latency_s": round(result["p50_latency_s"], 6),
        "p95_latency_s": round(result["p95_latency_s"], 6),
        "p99_latency_s": round(result["p99_latency_s"], 6),
        "protocol": record["config"]["protocol"],
        "users": traffic["modeled_users"],
        "wall_s": round(wall, 3),
        "workers": record["config"].get("workers", 1),
        "workload": record["tags"].get("workload", "ycsb"),
        "x": record["tags"]["x"],
    }


def render_bench_overload(records: Iterable[Mapping[str, Any]],
                          host: Optional[Mapping[str, Any]] = None) -> str:
    """``BENCH_overload.json`` content regenerated from store records.

    Points ordered (protocol, workload, x, workers); same canonical
    JSON shape as :func:`render_bench_scale`.
    """
    records = list(records)
    rows = sorted((overload_point_from_record(r) for r in records),
                  key=lambda p: (p["protocol"], p["workload"], p["x"],
                                 p["workers"]))
    if not rows:
        raise ConfigurationError(
            "no overload records to render; run the overload campaign "
            "first")
    if host is None:
        for record in records:
            if record.get("host"):
                host = record["host"]
                break
        else:
            raise ConfigurationError(
                "no host calibration block in the overload records")
    payload = {
        "schema": OVERLOAD_SCHEMA,
        "benchmark": OVERLOAD_BENCHMARK,
        "host": dict(host),
        "points": rows,
    }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def compare_overload_baseline(records: Iterable[Mapping[str, Any]],
                              calibration: float,
                              baseline: Mapping[str, Any],
                              tolerance: float = 0.30) -> List[str]:
    """The CI overload gate: campaign records vs a committed baseline.

    Same two gates as :func:`compare_scale_baseline` — digest equality
    on every shared point, calibrated events/s regression beyond
    ``tolerance`` — including the oversubscription skip for baseline
    rows measured with ``workers > host.cpus``.
    """
    failures: List[str] = []
    base_host = baseline.get("host", {})
    base_cal = base_host.get("calibration_ops_per_s")
    base_cpus = base_host.get("cpus")
    base_points = {(p["protocol"], p.get("workload", "ycsb"), p["x"],
                    p.get("workers", 1)): p
                   for p in baseline.get("points", [])}
    for record in records:
        point = overload_point_from_record(record)
        base = base_points.get((point["protocol"], point["workload"],
                                point["x"], point["workers"]))
        if base is None:
            continue
        label = (f"{point['protocol']} {point['workload']} "
                 f"x={point['x']:g} workers={point['workers']}")
        if base["digest"] != point["digest"]:
            failures.append(
                f"{label}: deployment_digest mismatch vs baseline "
                f"({point['digest'][:12]}… != {base['digest'][:12]}…) — "
                "simulated behaviour changed")
        if not base_cal or not calibration:
            continue
        if base_cpus and point["workers"] > base_cpus:
            continue
        current_rate = point["events_per_s"] / calibration
        base_rate = base["events_per_s"] / base_cal
        if current_rate < base_rate * (1.0 - tolerance):
            failures.append(
                f"{label}: calibrated event rate regressed "
                f"{(1.0 - current_rate / base_rate) * 100:.0f}% "
                f"(>{tolerance * 100:.0f}% tolerance): "
                f"{current_rate:.2f} vs baseline {base_rate:.2f} "
                "events per calibration-op")
    return failures


def overload_digest_parity(records: Iterable[Mapping[str, Any]]
                           ) -> List[str]:
    """Serial/parallel overload points at one (protocol, workload, x)
    must share a digest."""
    failures: List[str] = []
    groups: Dict[tuple, List[Dict[str, Any]]] = {}
    for record in records:
        point = overload_point_from_record(record)
        key = (point["protocol"], point["workload"], point["x"])
        groups.setdefault(key, []).append(point)
    for (protocol, workload, x), group in sorted(groups.items()):
        digests = {p["digest"] for p in group}
        if len(digests) > 1:
            detail = ", ".join(
                f"workers={p['workers']}:{p['digest'][:12]}…"
                for p in group)
            failures.append(
                f"{protocol} {workload} x={x:g}: serial/parallel digest "
                f"divergence ({detail})")
    return failures


__all__ = [
    "ResultStore",
    "OVERLOAD_BENCHMARK",
    "OVERLOAD_SCHEMA",
    "OVERLOAD_SIM_DURATION",
    "SCALE_BENCHMARK",
    "SCALE_SCHEMA",
    "SCALE_SIM_DURATION",
    "compare_overload_baseline",
    "compare_scale_baseline",
    "encode_record",
    "import_bench_overload",
    "import_bench_scale",
    "overload_digest_parity",
    "overload_point_from_record",
    "overload_run_id",
    "render_bench_overload",
    "render_bench_scale",
    "scale_digest_parity",
    "scale_point_from_record",
    "scale_run_id",
]
