"""Experiment-campaign orchestration: DAGs of deterministic runs.

The sweep package turns the repo's bespoke benchmark scripts into data:
a :class:`Campaign` is a DAG of :class:`RunSpec` nodes (grid expansion
plus explicit dependencies), a scheduler fans ready runs across a
process pool without oversubscribing the host, and a
:class:`ResultStore` keys every completed run by a config digest so a
warm campaign re-run executes nothing.  Figures, tables, and the
``BENCH_scale.json`` perf baseline regenerate byte-identically from the
store.

Entry points: ``repro sweep --campaign <name>`` on the CLI, or
:func:`run_campaign` / :func:`get_campaign` from code.
"""

from .calibrate import calibrate_host, host_info
from .campaigns import (PROTOCOLS, batch_points, campaign_names,
                        cluster_size_points, failure_points, full_scale,
                        geo_scale_points, get_campaign, point_config,
                        register_campaign, scale_config, sim_duration)
from .model import (Campaign, ReportSpec, RunSpec, SWEEP_SCHEMA,
                    config_fingerprint, expand_grid, record_series,
                    result_from_record)
from .runner import execute_run
from .scheduler import (CampaignOutcome, SweepScheduler, WorkerBudget,
                        engine_workers, run_campaign)
from .store import (ResultStore, import_bench_overload,
                    import_bench_scale, overload_point_from_record,
                    overload_run_id, render_bench_overload,
                    render_bench_scale, scale_point_from_record,
                    scale_run_id)

__all__ = [
    "Campaign",
    "CampaignOutcome",
    "PROTOCOLS",
    "ReportSpec",
    "ResultStore",
    "RunSpec",
    "SWEEP_SCHEMA",
    "SweepScheduler",
    "WorkerBudget",
    "batch_points",
    "calibrate_host",
    "campaign_names",
    "cluster_size_points",
    "config_fingerprint",
    "engine_workers",
    "execute_run",
    "expand_grid",
    "failure_points",
    "full_scale",
    "geo_scale_points",
    "get_campaign",
    "host_info",
    "import_bench_overload",
    "import_bench_scale",
    "overload_point_from_record",
    "overload_run_id",
    "point_config",
    "record_series",
    "register_campaign",
    "render_bench_overload",
    "render_bench_scale",
    "result_from_record",
    "run_campaign",
    "scale_config",
    "scale_point_from_record",
    "scale_run_id",
    "sim_duration",
]
