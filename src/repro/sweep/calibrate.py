"""Host calibration: the one pure-Python ops/s normalizer.

Every consumer of host wall-time numbers — ``benchmarks/bench_scale.py``,
the CI perf gate, and sweep-store records — used to carry its own copy
of this loop; this module is now the single source.  The simulator's
hot loop is interpreter-bound, so a small interpreter-bound loop is the
right normalizer for cross-machine rate comparisons (C-extension speed,
e.g. hashlib, matters far less).

This is *host-side* measurement code: it runs outside simulated time,
which is why its wall-clock reads are allowlisted from the
``no-wallclock`` lint rule.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, Dict


def calibrate_host(rounds: int = 400_000) -> float:
    """Pure-Python ops/s of this host — dict/tuple/arith mix.

    Best-of-three so a transient scheduling hiccup does not understate
    the host.
    """
    best = float("inf")
    for _ in range(3):
        d: Dict[int, Any] = {}
        acc = 0
        t0 = time.perf_counter()
        for i in range(rounds):
            d[i & 1023] = (i, acc)
            acc += i * 3 // 2
            if acc > 1 << 40:
                acc &= (1 << 30) - 1
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return rounds / best


def host_info(calibration: float) -> Dict[str, Any]:
    """The host block stamped into store records and BENCH baselines."""
    return {
        "calibration_ops_per_s": round(calibration),
        "cpus": os.cpu_count() or 1,
        "python": ".".join(map(str, sys.version_info[:3])),
    }


__all__ = ["calibrate_host", "host_info"]
