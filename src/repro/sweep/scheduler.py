"""The campaign scheduler: DAG wavefront over a process pool.

Modeled on the worker/orchestrator split of the parallel simulation
engine (:mod:`repro.bench.parallel`): the orchestrating process owns
the DAG, the store, and the report tail; ``--jobs N`` spawn-safe worker
processes pull :class:`RunSpec` tasks from a queue and push finished
records back.  Each run is itself deterministic and self-contained, so
fan-out order cannot change any record's content — only wall time.

Scheduling rules:

* a run becomes **ready** when every dependency has an ``ok`` record;
* a ready run whose key the store already holds is a **cached hit** —
  counted, never executed (re-running a warm campaign does nothing);
* a **failed** run (error or invariant violation) marks every
  transitive dependant **skipped**;
* the **worker-budget governor** composes pool fan-out with each run's
  own engine workers: a run with ``config.workers = w`` occupies
  ``min(w, num_clusters)`` slots of a ``cpu_budget``-slot budget
  (default: the host's cores), so pool × engine-workers never
  oversubscribes the host.  A run too wide for the budget runs alone.

With ``jobs = 1`` no pool is created at all: runs execute inline in
the orchestrating process (fastest path for small campaigns and the
benchmark shims).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from .calibrate import calibrate_host, host_info
from .model import Campaign, RunSpec
from .runner import execute_run
from .store import ResultStore


def engine_workers(spec: RunSpec) -> int:
    """Engine worker processes one run will actually use."""
    return max(1, min(spec.config.workers, spec.config.num_clusters))


class WorkerBudget:
    """Slot accounting for the pool × engine-workers product."""

    def __init__(self, jobs: int, cpu_budget: Optional[int] = None):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = jobs
        self.cpu_budget = max(1, cpu_budget if cpu_budget is not None
                              else (os.cpu_count() or 1))
        self.running = 0
        self.used_slots = 0

    def demand(self, spec: RunSpec) -> int:
        """Slots ``spec`` occupies (capped so it can always run alone)."""
        return min(engine_workers(spec), self.cpu_budget)

    def admits(self, spec: RunSpec) -> bool:
        if self.running >= self.jobs:
            return False
        if self.running == 0:
            return True  # never starve a wide run
        return self.used_slots + self.demand(spec) <= self.cpu_budget

    def acquire(self, spec: RunSpec) -> None:
        self.running += 1
        self.used_slots += self.demand(spec)

    def release(self, spec: RunSpec) -> None:
        self.running -= 1
        self.used_slots -= self.demand(spec)


@dataclass
class CampaignOutcome:
    """Everything one campaign execution produced."""

    campaign: str
    #: Records of runs executed this session, in completion order.
    executed: List[Dict[str, Any]] = field(default_factory=list)
    #: Records served straight from the store (never re-run).
    cached: List[Dict[str, Any]] = field(default_factory=list)
    #: run ids skipped because a dependency failed.
    skipped: List[str] = field(default_factory=list)
    #: run ids that failed (error or invariant violation).
    failed: List[str] = field(default_factory=list)
    #: Report name -> rendered artifact content.
    artifacts: Dict[str, str] = field(default_factory=dict)
    #: Report name -> artifact filename.
    artifact_names: Dict[str, str] = field(default_factory=dict)
    host: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed and not self.skipped

    @property
    def records(self) -> List[Dict[str, Any]]:
        """All successful records in campaign run order (cached +
        executed merged by run id order of the campaign)."""
        by_id = {r["run_id"]: r for r in self.cached}
        by_id.update({r["run_id"]: r for r in self.executed})
        ordered = sorted(by_id.values(),
                         key=lambda r: self._order.get(r["run_id"], 1 << 30))
        return [r for r in ordered if r.get("status") == "ok"]

    #: run id -> declaration index (set by the scheduler).
    _order: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        parts = [f"campaign {self.campaign}:",
                 f"{len(self.executed)} run(s) executed,",
                 f"{len(self.cached)} cached hit(s),",
                 f"{len(self.skipped)} skipped,",
                 f"{len(self.failed)} failed"]
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "ok": self.ok,
            "executed": [r["run_id"] for r in self.executed],
            "cached": [r["run_id"] for r in self.cached],
            "skipped": list(self.skipped),
            "failed": list(self.failed),
            "artifacts": sorted(self.artifacts),
            "host": dict(self.host),
        }


def _pool_worker(task_queue: Any, result_queue: Any,
                 campaign: str, host: Dict[str, Any]) -> None:
    """Worker-process main: drain specs until the ``None`` sentinel."""
    while True:
        spec = task_queue.get()
        if spec is None:
            break
        result_queue.put(execute_run(spec, campaign, host=host))


class SweepScheduler:
    """Drains one campaign DAG through the store and (optionally) a pool."""

    def __init__(self, campaign: Campaign, store: ResultStore,
                 jobs: int = 1, cpu_budget: Optional[int] = None,
                 rerun: bool = False,
                 host: Optional[Mapping[str, Any]] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 partial: bool = False):
        self.campaign = campaign
        self.store = store
        self.budget = WorkerBudget(jobs, cpu_budget)
        self.rerun = rerun
        self.host = dict(host) if host is not None else {}
        self._progress = progress or (lambda line: None)
        self.partial = partial

    def _say(self, line: str) -> None:
        self._progress(line)

    # ------------------------------------------------------------------
    def run(self) -> CampaignOutcome:
        if not self.host:
            self.host = host_info(calibrate_host())
        outcome = CampaignOutcome(campaign=self.campaign.name,
                                  host=dict(self.host))
        outcome._order = {spec.run_id: i
                          for i, spec in enumerate(self.campaign.runs)}
        order = self.campaign.toposort()
        status: Dict[str, str] = {}  # run_id -> ok|failed|skipped

        # Phase 1: serve cached hits and find what actually needs work.
        pending: List[RunSpec] = []
        for spec in order:
            if not self.rerun and self.store.has(spec.key()):
                record = self.store.get(spec.key())
                assert record is not None
                outcome.cached.append(record)
                status[spec.run_id] = "ok"
                self._say(f"  cached  {spec.run_id} "
                          f"(digest {record.get('digest', '')[:12]}…)")
            else:
                pending.append(spec)

        if pending:
            if self.budget.jobs > 1 and len(pending) > 1:
                self._run_pool(pending, status, outcome)
            else:
                self._run_inline(pending, status, outcome)

        self._render_reports(outcome)
        return outcome

    # ------------------------------------------------------------------
    def _dependency_block(self, spec: RunSpec,
                          status: Dict[str, str]) -> Optional[str]:
        """``None`` when runnable, else the failed/skipped dependency."""
        for dep in spec.depends_on:
            if status.get(dep) in ("failed", "skipped"):
                return dep
        return None

    def _ready(self, spec: RunSpec, status: Dict[str, str]) -> bool:
        return all(status.get(dep) == "ok" for dep in spec.depends_on)

    def _land(self, spec: RunSpec, record: Dict[str, Any],
              status: Dict[str, str], outcome: CampaignOutcome) -> None:
        self.store.add(record)
        outcome.executed.append(record)
        if record["status"] == "ok":
            status[spec.run_id] = "ok"
            self._say(f"  ok      {spec.run_id} "
                      f"wall={record['wall_s']}s "
                      f"digest={record['digest'][:12]}…")
        else:
            status[spec.run_id] = "failed"
            outcome.failed.append(spec.run_id)
            self._say(f"  FAILED  {spec.run_id}: "
                      f"{record.get('error', 'unknown error')}")

    def _skip(self, spec: RunSpec, dep: str, status: Dict[str, str],
              outcome: CampaignOutcome) -> None:
        status[spec.run_id] = "skipped"
        outcome.skipped.append(spec.run_id)
        self._say(f"  skipped {spec.run_id} "
                  f"(dependency {dep} did not complete)")

    # ------------------------------------------------------------------
    def _run_inline(self, pending: List[RunSpec], status: Dict[str, str],
                    outcome: CampaignOutcome) -> None:
        for spec in pending:
            blocker = self._dependency_block(spec, status)
            if blocker is not None:
                self._skip(spec, blocker, status, outcome)
                continue
            self._say(f"  run     {spec.run_id}")
            record = execute_run(spec, self.campaign.name, host=self.host)
            self._land(spec, record, status, outcome)

    def _run_pool(self, pending: List[RunSpec], status: Dict[str, str],
                  outcome: CampaignOutcome) -> None:
        ctx = multiprocessing.get_context("spawn")
        workers = min(self.budget.jobs, len(pending))
        task_queue: Any = ctx.Queue()
        result_queue: Any = ctx.Queue()
        procs = [ctx.Process(target=_pool_worker,
                             args=(task_queue, result_queue,
                                   self.campaign.name, self.host),
                             name=f"sweep-worker-{rank}")
                 for rank in range(workers)]
        for proc in procs:
            proc.start()
        specs = {spec.run_id: spec for spec in pending}
        waiting = list(pending)
        in_flight: Dict[str, RunSpec] = {}
        try:
            while waiting or in_flight:
                # Launch every admissible ready run.
                launched = True
                while launched:
                    launched = False
                    for spec in list(waiting):
                        blocker = self._dependency_block(spec, status)
                        if blocker is not None:
                            waiting.remove(spec)
                            self._skip(spec, blocker, status, outcome)
                            launched = True
                        elif (self._ready(spec, status)
                              and self.budget.admits(spec)):
                            waiting.remove(spec)
                            in_flight[spec.run_id] = spec
                            self.budget.acquire(spec)
                            self._say(f"  run     {spec.run_id}")
                            task_queue.put(spec)
                            launched = True
                if not in_flight:
                    if waiting:
                        # Nothing running and nothing launchable: the
                        # remaining runs wait on each other — impossible
                        # after toposort, so treat it as a hard error.
                        raise ConfigurationError(
                            "scheduler deadlock: "
                            + ", ".join(s.run_id for s in waiting))
                    break
                record = result_queue.get()
                spec = in_flight.pop(record["run_id"])
                self.budget.release(spec)
                self._land(spec, record, status, outcome)
        finally:
            for _ in procs:
                task_queue.put(None)
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():
                    proc.terminate()
        del specs

    # ------------------------------------------------------------------
    def _render_reports(self, outcome: CampaignOutcome) -> None:
        records = outcome.records
        for report in self.campaign.reports:
            try:
                content = report.build(records)
            # A report failure must not discard the run records that
            # already landed in the store; it is recorded on the
            # outcome instead of raising.  On a deliberately partial
            # campaign (--filter), sibling reports are *expected* to
            # lack their points, so they are dropped with a note
            # rather than failing the invocation.
            # repro: allow[no-silent-except]
            except Exception as exc:
                if self.partial:
                    self._say(f"  (report {report.name} not rendered "
                              f"on the filtered campaign: {exc})")
                    continue
                outcome.failed.append(f"report:{report.name}")
                outcome.artifacts[report.name] = (
                    f"(report {report.name} failed: "
                    f"{type(exc).__name__}: {exc})\n")
                outcome.artifact_names[report.name] = report.filename
                continue
            outcome.artifacts[report.name] = content
            outcome.artifact_names[report.name] = report.filename


def run_campaign(campaign: Campaign, store: Optional[ResultStore] = None,
                 jobs: int = 1, cpu_budget: Optional[int] = None,
                 rerun: bool = False,
                 host: Optional[Mapping[str, Any]] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 partial: bool = False) -> CampaignOutcome:
    """Execute ``campaign`` against ``store`` (default: in-memory).

    The one-call form of the scheduler; see :class:`SweepScheduler`.
    ``host`` defaults to a fresh host calibration — pass a previously
    measured block to skip the ~1 s calibration loop (tests do).
    ``partial`` marks a deliberately filtered campaign: reports whose
    points were filtered away are dropped instead of failing.
    """
    if store is None:
        store = ResultStore(None)
    scheduler = SweepScheduler(campaign, store, jobs=jobs,
                               cpu_budget=cpu_budget, rerun=rerun,
                               host=host, progress=progress,
                               partial=partial)
    return scheduler.run()


__all__ = [
    "CampaignOutcome",
    "SweepScheduler",
    "WorkerBudget",
    "engine_workers",
    "run_campaign",
]
