"""Run execution: one :class:`RunSpec` in, one store record out.

This is the code both execution paths share — the inline path
(``--jobs 1``: runs in the orchestrating process) and the pool path
(spawned worker processes) — so a campaign lands identical records
either way.  Each run builds a fresh deployment, arranges the spec's
faults, runs it through the serial or parallel engine (per
``config.workers``), and packages the result row, the deployment
digest, engine counters, and host wall-time into a JSON-able record.

Wall-clock reads here time *host* execution of a run (the numbers the
perf gates compare after host calibration); they never execute inside
simulated time, which is why this module is allowlisted from the
``no-wallclock`` lint rule.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, Mapping, Optional

from ..bench.deployment import Deployment, deployment_digest
from .model import RunSpec, SWEEP_SCHEMA, config_fingerprint


def _arrange(deployment: Deployment, spec: RunSpec) -> None:
    if spec.scenario != "none":
        from ..bench.scenarios import apply_scenario
        apply_scenario(deployment, spec.scenario, fail_at=spec.fail_at)
    if spec.faults is not None:
        from ..net.chaos import FaultTimeline
        FaultTimeline.from_dict(spec.faults).install(deployment)


def _execute(spec: RunSpec) -> Dict[str, Any]:
    """Run the experiment; returns the measured core of the record."""
    config = spec.config
    timeline = None
    if spec.faults is not None:
        from ..net.chaos import FaultTimeline
        timeline = FaultTimeline.from_dict(spec.faults)
    if config.workers > 1:
        from ..bench.parallel import (parallel_unsupported_reason,
                                      run_parallel)
        scenario = spec.scenario if spec.scenario != "none" else None
        if parallel_unsupported_reason(config, timeline=timeline,
                                       scenario=scenario) is None:
            t0 = time.perf_counter()
            run = run_parallel(config, timeline=timeline,
                               scenario=scenario, fail_at=spec.fail_at)
            wall = time.perf_counter() - t0
            return {
                "result": run.result.to_dict(),
                "digest": run.digest,
                "events": run.events_processed,
                "max_queue_depth": run.max_queue_depth,
                "wall_s": wall,
                "engine": "parallel",
                "invariants_ok": run.invariants.ok,
            }
    deployment = Deployment(config)
    _arrange(deployment, spec)
    t0 = time.perf_counter()
    result = deployment.run()
    wall = time.perf_counter() - t0
    report = deployment.invariants
    invariants_ok = (report.ok if report is not None
                     else result.safety_ok and result.liveness_ok)
    return {
        "result": result.to_dict(),
        "digest": deployment_digest(deployment, result),
        "events": deployment.sim.events_processed,
        "max_queue_depth": deployment.sim.max_queue_depth,
        "wall_s": wall,
        "engine": "serial",
        "invariants_ok": invariants_ok,
    }


def execute_run(spec: RunSpec, campaign: str,
                host: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Execute one run and return its full store record.

    Failures never propagate: a run that raises produces a
    ``status="failed"`` record carrying the error, so the scheduler can
    skip its dependants and keep draining the rest of the DAG.
    """
    record: Dict[str, Any] = {
        "schema": SWEEP_SCHEMA,
        "key": spec.key(),
        "campaign": campaign,
        "run_id": spec.run_id,
        "tags": dict(spec.tags),
        "config": config_fingerprint(spec.config),
        "scenario": spec.scenario,
        "fail_at": spec.fail_at,
        "faults": spec.faults,
        "host": dict(host) if host is not None else {},
    }
    try:
        measured = _execute(spec)
    # The record *is* the error report: the scheduler fails the run,
    # skips its dependants, and surfaces the message — nothing is
    # swallowed.  # repro: allow[no-silent-except]
    except Exception as exc:
        record.update({
            "status": "failed",
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        })
        return record
    record.update(measured)
    wall = record["wall_s"]
    record["wall_s"] = round(wall, 3)
    record["events_per_s"] = round(record["events"] / wall) if wall else 0
    record["status"] = ("ok" if measured["invariants_ok"] else "failed")
    if not measured["invariants_ok"]:
        record["error"] = "invariant audit failed (safety or liveness)"
    return record


__all__ = ["execute_run"]
