"""The campaign model: runs, dependencies, and grid expansion.

A :class:`Campaign` is a DAG of :class:`RunSpec` nodes.  Each node is
one deterministic, self-contained experiment (an
:class:`~repro.bench.deployment.ExperimentConfig` plus an optional
failure scenario or fault-timeline spec); edges (``depends_on``) order
runs that must happen first — e.g. a parallel-engine point depends on
its serial twin so the digest-parity gate always has the reference
record, or a figure regeneration depends on every point it reads.

Every run has a deterministic **key**: a SHA-256 over the canonical
JSON of its config, scenario, and fault spec (plus the result-schema
version).  The key is what the result store indexes on, which is what
makes re-running a campaign against a warm store a no-op: a run whose
key already has an ``ok`` record is a cached hit and is never executed
again.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple)

from ..bench.deployment import ExperimentConfig, RESULT_SCHEMA
from ..errors import ConfigurationError

#: Version tag stamped on every store record.
SWEEP_SCHEMA = "repro-sweep/1"


def config_fingerprint(config: ExperimentConfig) -> Dict[str, Any]:
    """The canonical, JSON-able form of an experiment config.

    ``asdict`` flattens the nested dataclasses (GeoBFT knobs, crypto
    cost model); anything non-JSON-able (a custom topology object) is
    rendered through ``str`` so it still contributes to the key.
    """
    doc = asdict(config)
    # Round-trip through canonical JSON so the fingerprint is a pure
    # value (tuples become lists, custom objects become strings).
    return json.loads(json.dumps(doc, sort_keys=True, default=str))


@dataclass(frozen=True)
class RunSpec:
    """One node of a campaign DAG: a single deterministic experiment.

    * ``run_id`` — unique within the campaign; hierarchical ids
      (``"fig10/geobft/z4"``) keep ``--filter`` useful.
    * ``config`` — the full experiment configuration.
    * ``scenario`` / ``fail_at`` — a named failure scenario from the
      open registry, applied to the built deployment.
    * ``faults`` — a :meth:`~repro.net.chaos.FaultTimeline.to_dict`
      spec, installed on the built deployment (JSON-able so specs
      travel to pool workers and into store records).
    * ``depends_on`` — run ids that must complete *successfully*
      before this run starts; a failed dependency skips this run.
    * ``tags`` — free-form labels (figure name, series, x position)
      that the store indexes for querying and report regeneration.
    """

    run_id: str
    config: ExperimentConfig
    scenario: str = "none"
    fail_at: float = 0.0
    faults: Optional[Dict[str, Any]] = None
    depends_on: Tuple[str, ...] = ()
    tags: Mapping[str, Any] = field(default_factory=dict)

    def key(self) -> str:
        """Digest key of this run: what the result store indexes on."""
        payload = json.dumps(
            {
                "schema": RESULT_SCHEMA,
                "config": config_fingerprint(self.config),
                "scenario": self.scenario,
                "fail_at": self.fail_at,
                "faults": self.faults,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        cfg = self.config
        extra = ""
        if self.scenario != "none":
            extra += f" scenario={self.scenario}"
        if self.faults is not None:
            extra += f" faults={self.faults.get('name', 'timeline')!r}"
        if self.depends_on:
            extra += f" after={','.join(self.depends_on)}"
        return (f"{self.run_id}: {cfg.protocol} z={cfg.num_clusters} "
                f"n={cfg.replicas_per_cluster} b={cfg.batch_size} "
                f"d={cfg.duration}s workers={cfg.workers}{extra}")


@dataclass(frozen=True)
class ReportSpec:
    """A post-run artifact regenerated from the result store.

    ``build`` receives the campaign's records (in run order) and
    returns the artifact's full content; byte-identical output from
    identical records is part of its contract.  Reports run in the
    orchestrating process after every run has landed, which is the
    "then regenerate figures" tail of the campaign DAG.
    """

    name: str
    filename: str
    build: Callable[[Sequence[Dict[str, Any]]], str]


@dataclass(frozen=True)
class Campaign:
    """A named experiment campaign: a DAG of runs plus its reports."""

    name: str
    description: str
    runs: Tuple[RunSpec, ...]
    reports: Tuple[ReportSpec, ...] = ()

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject duplicate ids, unknown dependencies, and cycles."""
        seen: Dict[str, RunSpec] = {}
        for spec in self.runs:
            if spec.run_id in seen:
                raise ConfigurationError(
                    f"campaign {self.name!r}: duplicate run id "
                    f"{spec.run_id!r}")
            seen[spec.run_id] = spec
        for spec in self.runs:
            for dep in spec.depends_on:
                if dep not in seen:
                    raise ConfigurationError(
                        f"campaign {self.name!r}: run {spec.run_id!r} "
                        f"depends on unknown run {dep!r}")
        self.toposort()  # raises on cycles

    def run_ids(self) -> Tuple[str, ...]:
        return tuple(spec.run_id for spec in self.runs)

    def get(self, run_id: str) -> RunSpec:
        for spec in self.runs:
            if spec.run_id == run_id:
                return spec
        raise ConfigurationError(
            f"campaign {self.name!r} has no run {run_id!r}")

    def toposort(self) -> List[RunSpec]:
        """Dependency-respecting run order (Kahn's algorithm).

        Stable: among simultaneously-ready runs, declaration order is
        preserved, so scheduling is deterministic.
        """
        order: List[RunSpec] = []
        done: set = set()
        pending = list(self.runs)
        while pending:
            progressed = False
            remaining: List[RunSpec] = []
            for spec in pending:
                if all(dep in done for dep in spec.depends_on):
                    order.append(spec)
                    done.add(spec.run_id)
                    progressed = True
                else:
                    remaining.append(spec)
            if not progressed:
                cycle = ", ".join(spec.run_id for spec in remaining)
                raise ConfigurationError(
                    f"campaign {self.name!r}: dependency cycle among "
                    f"{cycle}")
            pending = remaining
        return order

    def subset(self, predicate: Callable[[RunSpec], bool]) -> "Campaign":
        """The sub-campaign of runs matching ``predicate``, closed over
        dependencies (a selected run drags its ancestors in so the DAG
        stays executable)."""
        by_id = {spec.run_id: spec for spec in self.runs}
        selected: set = set()

        def pull(run_id: str) -> None:
            if run_id in selected:
                return
            selected.add(run_id)
            for dep in by_id[run_id].depends_on:
                pull(dep)

        for spec in self.runs:
            if predicate(spec):
                pull(spec.run_id)
        runs = tuple(spec for spec in self.runs
                     if spec.run_id in selected)
        return Campaign(name=self.name, description=self.description,
                        runs=runs, reports=self.reports)

    def filtered(self, pattern: str) -> "Campaign":
        """``--filter``: keep runs whose id contains ``pattern``."""
        sub = self.subset(lambda spec: pattern in spec.run_id)
        if not sub.runs:
            raise ConfigurationError(
                f"campaign {self.name!r}: no run id matches "
                f"{pattern!r}; ids are {', '.join(self.run_ids())}")
        return sub


def expand_grid(**axes: Sequence[Any]) -> Iterator[Dict[str, Any]]:
    """Cartesian grid expansion in stable axis order.

    ``expand_grid(protocol=("a", "b"), n=(4, 7))`` yields the four
    combinations with the *first* axis varying slowest — the order the
    figure scripts have always used (protocol-major), so migrated
    campaigns execute their points in the historical order.
    """
    names = list(axes)
    if not names:
        yield {}
        return

    def rec(i: int, acc: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        if i == len(names):
            yield dict(acc)
            return
        name = names[i]
        for value in axes[name]:
            acc[name] = value
            yield from rec(i + 1, acc)
        acc.pop(name, None)

    yield from rec(0, {})


def result_from_record(record: Mapping[str, Any]):
    """Rebuild an :class:`ExperimentResult` from a store record."""
    from ..bench.deployment import ExperimentResult
    return ExperimentResult.from_dict(record["result"])


def record_series(records: Iterable[Mapping[str, Any]], value: str,
                  series_tag: str = "protocol",
                  x_tag: str = "x") -> Tuple[List[Any],
                                             Dict[str, List[float]]]:
    """Pivot records into figure series.

    Returns ``(x_values, {series_name: [value, ...]})`` with x values
    ordered by their ``xi`` grid-index tag and series in first-seen
    order — the exact shape
    :func:`repro.bench.reporting.format_figure_series` takes.
    """
    xs: Dict[Any, int] = {}
    series: Dict[str, Dict[Any, float]] = {}
    for record in records:
        tags = record.get("tags", {})
        if x_tag not in tags or series_tag not in tags:
            continue
        x = tags[x_tag]
        xs.setdefault(x, int(tags.get("xi", len(xs))))
        row = record["result"]
        series.setdefault(str(tags[series_tag]), {})[x] = row[value]
    ordered_x = [x for x, _ in sorted(xs.items(), key=lambda kv: kv[1])]
    return ordered_x, {
        name: [points.get(x, float("nan")) for x in ordered_x]
        for name, points in series.items()
    }


__all__ = [
    "Campaign",
    "ReportSpec",
    "RunSpec",
    "SWEEP_SCHEMA",
    "config_fingerprint",
    "expand_grid",
    "record_series",
    "result_from_record",
]
