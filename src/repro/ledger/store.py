"""The YCSB-style key-value table replicas execute against.

The paper's workload is YCSB (§4): a table with an active set of 600 k
records, initialized identically on every replica, queried with
write-heavy transactions under a Zipfian key distribution.  This module
provides that table.  Records are materialized lazily — a record that
has never been written reads as its deterministic initial value — so a
"600 k-record" store costs memory only for keys actually touched, which
keeps large simulations cheap without changing observable behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..crypto.digests import digest_of
from ..errors import WorkloadError

DEFAULT_RECORD_COUNT = 600_000


def _initial_value(key: int) -> str:
    """The deterministic value every replica's record ``key`` starts with."""
    return f"init-{key}"


class YcsbStore:
    """A deterministic key-value table with YCSB-style operations."""

    def __init__(self, record_count: int = DEFAULT_RECORD_COUNT):
        if record_count < 1:
            raise WorkloadError(
                f"record_count must be positive, got {record_count}"
            )
        self._record_count = record_count
        self._data: Dict[int, str] = {}
        self._writes = 0
        self._reads = 0

    @property
    def record_count(self) -> int:
        """Size of the active record set (keys ``0 .. record_count-1``)."""
        return self._record_count

    @property
    def write_count(self) -> int:
        """Total write operations applied (diagnostics)."""
        return self._writes

    @property
    def read_count(self) -> int:
        """Total read operations served (diagnostics)."""
        return self._reads

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self._record_count:
            raise WorkloadError(
                f"key {key} outside active set [0, {self._record_count})"
            )

    def read(self, key: int) -> str:
        """Read a record (its initial value if never written)."""
        self._check_key(key)
        self._reads += 1
        return self._data.get(key, _initial_value(key))

    def update(self, key: int, value: str) -> None:
        """Overwrite a record."""
        self._check_key(key)
        self._writes += 1
        self._data[key] = value

    def insert(self, key: int, value: str) -> None:
        """Insert behaves as update on the fixed active set (YCSB-D style
        growing sets are out of scope for the paper's workload)."""
        self.update(key, value)

    def update_many(self, pairs: List[Tuple[int, str]]) -> None:
        """Bulk overwrite: apply ``(key, value)`` pairs in order.

        All-or-nothing — keys are validated up front and nothing is
        applied on a violation (callers needing the sequential
        partial-application semantics use :meth:`update` per record).
        Equivalent to updating each pair in a loop, at C speed; the
        execution engine's write-only batch fast path relies on it.
        """
        if pairs:
            keys = [k for k, _ in pairs]
            low, high = min(keys), max(keys)
            if low < 0 or high >= self._record_count:
                bad = low if low < 0 else high
                raise WorkloadError(
                    f"key {bad} outside active set [0, {self._record_count})"
                )
            self._apply_writes(pairs)

    def _apply_writes(self, pairs: List[Tuple[int, str]]) -> None:
        """Bulk overwrite with no key validation — callers (the
        execution engine's compiled-plan path) have already bounds-
        checked every key against the active set."""
        self._writes += len(pairs)
        self._data.update(pairs)

    def modify(self, key: int, suffix: str) -> str:
        """Read-modify-write: append ``suffix`` and return the new value."""
        new_value = self.read(key) + "|" + suffix
        self.update(key, new_value)
        return new_value

    def scan(self, start_key: int, length: int) -> List[Tuple[int, str]]:
        """Read ``length`` consecutive records starting at ``start_key``."""
        if length < 0:
            raise WorkloadError(f"scan length must be >= 0, got {length}")
        end = min(start_key + length, self._record_count)
        return [(key, self.read(key)) for key in range(start_key, end)]

    def state_digest(self) -> bytes:
        """Digest of the materialized state.

        Used by checkpoint messages: replicas with identical execution
        histories produce identical digests, so a quorum of matching
        checkpoint digests proves a consistent prefix.
        """
        items = tuple(sorted(self._data.items()))
        return digest_of(("ycsb", self._record_count, items))

    def snapshot(self) -> Dict[int, str]:
        """Copy of the materialized (written) records."""
        return dict(self._data)

    def restore(self, snapshot: Dict[int, str],
                record_count: Optional[int] = None) -> None:
        """Replace state with ``snapshot`` (checkpoint-based recovery)."""
        if record_count is not None:
            self._record_count = record_count
        self._data = dict(snapshot)
