"""Deterministic transaction execution.

Paper §2.4: non-faulty replicas are deterministic — on identical inputs
they produce identical outputs — so executing the same block sequence
yields the same state and the same client results everywhere.  The
:class:`ExecutionEngine` enforces that contract: it is a pure function
of (initial store state, executed batch sequence).
"""

from __future__ import annotations

from typing import List

from ..crypto.digests import digest_of
from ..errors import WorkloadError
from .block import Batch, Transaction
from .store import YcsbStore


# Result lists repeat across replicas (deterministic execution), so their
# digests are memoized process-wide, FIFO-bounded.
_results_digest_memo: dict = {}
_RESULTS_MEMO_MAX = 4096


class ExecutionEngine:
    """Applies request batches to a :class:`YcsbStore` deterministically."""

    def __init__(self, store: YcsbStore):
        self._store = store
        self._executed_txns = 0

    @property
    def store(self) -> YcsbStore:
        """The backing table."""
        return self._store

    @property
    def executed_txns(self) -> int:
        """Total transactions executed (no-ops included)."""
        return self._executed_txns

    def execute_txn(self, txn: Transaction) -> str:
        """Execute one transaction, returning its client-visible result."""
        if txn.op == "noop":
            result = "ok"
        elif txn.op == "read":
            result = self._store.read(txn.key)
        elif txn.op == "update":
            self._store.update(txn.key, txn.value)
            result = "ok"
        elif txn.op == "insert":
            self._store.insert(txn.key, txn.value)
            result = "ok"
        elif txn.op == "modify":
            result = self._store.modify(txn.key, txn.value)
        else:
            raise WorkloadError(f"unknown operation {txn.op!r}")
        self._executed_txns += 1
        return result

    def execute_batch(self, batch: Batch) -> List[str]:
        """Execute a batch in order, returning per-transaction results."""
        return [self.execute_txn(txn) for txn in batch]

    def results_digest(self, results: List[str]) -> bytes:
        """Digest of a result list — what clients compare across the
        ``f + 1`` replies they need (§2.4).

        Memoized process-wide: replicas execute identical batches, so
        the same result list is digested at every replica of every
        cluster.  The digest is a pure function of the results, so the
        memo is a host-CPU optimization with no observable effect.
        """
        key = tuple(results)
        cached = _results_digest_memo.get(key)
        if cached is None:
            cached = digest_of(key)
            if len(_results_digest_memo) >= _RESULTS_MEMO_MAX:
                _results_digest_memo.pop(next(iter(_results_digest_memo)))
            _results_digest_memo[key] = cached
        return cached

    def state_digest(self) -> bytes:
        """Digest of the current store state (checkpointing)."""
        return self._store.state_digest()
