"""Deterministic transaction execution.

Paper §2.4: non-faulty replicas are deterministic — on identical inputs
they produce identical outputs — so executing the same block sequence
yields the same state and the same client results everywhere.  The
:class:`ExecutionEngine` enforces that contract: it is a pure function
of (initial store state, executed batch sequence).
"""

from __future__ import annotations

from typing import List

from ..crypto.digests import digest_of
from ..errors import WorkloadError
from .block import Batch, Transaction
from .store import YcsbStore


# Result lists repeat across replicas (deterministic execution), so their
# digests are memoized process-wide, FIFO-bounded.
_results_digest_memo: dict = {}
_RESULTS_MEMO_MAX = 4096

# Write-only batches (the paper's YCSB workload is write-heavy; the
# default benchmarks are pure-write) produce results that do not depend
# on store state: every update/insert/noop yields "ok" and the state
# change is a plain sequence of key overwrites.  Since the simulator
# hands the *same* batch tuple to every replica, the per-transaction
# walk can be compiled once into a (writes, results) plan and applied
# everywhere else with one C-level ``dict.update``.  Keyed by object
# identity with a strong reference retained, so a recycled id can never
# alias a different batch (the ``is`` check rejects stale entries).
_batch_plan_memo: dict = {}
_PLAN_MEMO_MAX = 4096


def _compile_plan(batch: Batch):
    """``(max_key, write_pairs, results)`` for a write-only batch.

    Returns ``None`` when the batch contains any state-dependent or
    unknown operation (reads, read-modify-writes) or a negative key —
    those take the per-transaction path with its exact sequential
    semantics.
    """
    pairs: list = []
    results: list = []
    max_key = -1
    for txn in batch:
        op = txn.op
        if op == "update" or op == "insert":
            key = txn.key
            if key < 0:
                return None
            if key > max_key:
                max_key = key
            pairs.append((key, txn.value))
            results.append("ok")
        elif op == "noop":
            results.append("ok")
        else:
            return None
    return (max_key, pairs, results)


class ExecutionEngine:
    """Applies request batches to a :class:`YcsbStore` deterministically."""

    def __init__(self, store: YcsbStore):
        self._store = store
        self._executed_txns = 0

    @property
    def store(self) -> YcsbStore:
        """The backing table."""
        return self._store

    @property
    def executed_txns(self) -> int:
        """Total transactions executed (no-ops included)."""
        return self._executed_txns

    def execute_txn(self, txn: Transaction) -> str:
        """Execute one transaction, returning its client-visible result."""
        if txn.op == "noop":
            result = "ok"
        elif txn.op == "read":
            result = self._store.read(txn.key)
        elif txn.op == "update":
            self._store.update(txn.key, txn.value)
            result = "ok"
        elif txn.op == "insert":
            self._store.insert(txn.key, txn.value)
            result = "ok"
        elif txn.op == "modify":
            result = self._store.modify(txn.key, txn.value)
        else:
            raise WorkloadError(f"unknown operation {txn.op!r}")
        self._executed_txns += 1
        return result

    def execute_batch(self, batch: Batch) -> List[str]:
        """Execute a batch in order, returning per-transaction results.

        Write-only batches take a compiled-plan fast path (see
        :func:`_compile_plan`): identical observable behaviour — same
        results, same store state, same counters — at a fraction of the
        per-transaction interpretation cost.  Batches that could raise
        (a key outside the active set) or read state fall back to the
        sequential path so error and partial-application semantics stay
        exactly as before.
        """
        entry = _batch_plan_memo.get(id(batch))
        if entry is not None and entry[0] is batch:
            plan = entry[1]
        else:
            plan = _compile_plan(batch)
            if len(_batch_plan_memo) >= _PLAN_MEMO_MAX:
                _batch_plan_memo.pop(next(iter(_batch_plan_memo)))
            _batch_plan_memo[id(batch)] = (batch, plan)
        if plan is None:
            return [self.execute_txn(txn) for txn in batch]
        max_key, pairs, results = plan
        store = self._store
        if max_key >= store.record_count:
            # Would raise mid-batch: keep sequential partial application.
            return [self.execute_txn(txn) for txn in batch]
        if pairs:
            # Keys were validated at plan compile time (non-negative)
            # and against this store's active set just above.
            store._apply_writes(pairs)
        self._executed_txns += len(results)
        return list(results)

    def results_digest(self, results: List[str]) -> bytes:
        """Digest of a result list — what clients compare across the
        ``f + 1`` replies they need (§2.4).

        Memoized process-wide: replicas execute identical batches, so
        the same result list is digested at every replica of every
        cluster.  The digest is a pure function of the results, so the
        memo is a host-CPU optimization with no observable effect.
        """
        key = tuple(results)
        cached = _results_digest_memo.get(key)
        if cached is None:
            cached = digest_of(key)
            if len(_results_digest_memo) >= _RESULTS_MEMO_MAX:
                _results_digest_memo.pop(next(iter(_results_digest_memo)))
            _results_digest_memo[key] = cached
        return cached

    def state_digest(self) -> bytes:
        """Digest of the current store state (checkpointing)."""
        return self._store.state_digest()
