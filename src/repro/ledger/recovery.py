"""Replica recovery from a peer's ledger.

Paper §3: "a recovering replica can simply read the ledger of any
replica it chooses and directly verify whether the ledger can be
trusted (is not tampered with)" — the immutable hash-chained structure
makes any single peer a sufficient recovery source.

:func:`audit_ledger` performs that trust check (chain links, block
hashes, per-block content digests), and :func:`rebuild_state` replays
the audited chain through a fresh deterministic execution engine,
yielding exactly the state every non-faulty replica holds (§2.4).
"""

from __future__ import annotations

from typing import Tuple

from ..errors import TamperedLedgerError
from .blockchain import Blockchain
from .execution import ExecutionEngine
from .store import YcsbStore


def audit_ledger(ledger: Blockchain) -> int:
    """Fully audit a peer's ledger before trusting it.

    Runs the deep verification (hash chain plus per-block transaction
    digests).  Returns the audited height.  Raises
    :class:`TamperedLedgerError` if the ledger was tampered with — the
    recovering replica should pick another peer.
    """
    ledger.verify(deep=True)
    return ledger.height


def rebuild_state(ledger: Blockchain,
                  record_count: int) -> Tuple[YcsbStore, ExecutionEngine]:
    """Replay an audited ledger into a fresh store.

    Deterministic execution (§2.4) guarantees the result matches every
    non-faulty replica's state at the same height.
    """
    store = YcsbStore(record_count)
    engine = ExecutionEngine(store)
    for block in ledger:
        engine.execute_batch(block.batch)
    return store, engine


def recover_from_peer(peer_ledger: Blockchain,
                      record_count: int) -> Tuple[Blockchain, YcsbStore]:
    """Complete recovery: audit a peer's ledger, adopt it, rebuild state.

    Returns the recovering replica's new (ledger copy, store).  The
    returned ledger is an independent chain re-built block by block —
    re-hashing everything — so a subtly corrupted in-memory source
    cannot survive the copy.
    """
    audit_ledger(peer_ledger)
    fresh = Blockchain()
    for block in peer_ledger:
        rebuilt = fresh.append(
            block.round_id, block.cluster_id, block.batch,
            peer_ledger.certificate(block.height),
            batch_digest=block.batch_digest,
            certificate_digest=block.certificate_digest,
        )
        if rebuilt.block_hash() != block.block_hash():
            raise TamperedLedgerError(
                f"peer block {block.height} does not re-hash identically"
            )
    store, _engine = rebuild_state(fresh, record_count)
    return fresh, store
