"""Ledger substrate: blocks, the blockchain, the YCSB table, execution."""

from .block import GENESIS_HASH, Batch, Block, Transaction, batch_digest, make_block
from .blockchain import Blockchain
from .execution import ExecutionEngine
from .recovery import audit_ledger, rebuild_state, recover_from_peer
from .store import DEFAULT_RECORD_COUNT, YcsbStore

__all__ = [
    "GENESIS_HASH",
    "Batch",
    "Block",
    "Transaction",
    "batch_digest",
    "make_block",
    "Blockchain",
    "ExecutionEngine",
    "audit_ledger",
    "rebuild_state",
    "recover_from_peer",
    "DEFAULT_RECORD_COUNT",
    "YcsbStore",
]
