"""Blocks of the ResilientDB ledger.

Paper §3 ("The ledger"): the i-th block of the ledger holds the i-th
executed client request (here: request *batch*) together with the commit
certificate that proves the batch was committed by its cluster — only a
single commit certificate can exist per cluster per GeoBFT round
(Lemma 2.3), which is what makes blocks tamper-evident.  Blocks chain by
hash, so any modification of a stored block is detectable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..crypto.digests import CachedEncodable, digest_of
from ..types import ClusterId, RoundId

GENESIS_HASH = b"\x00" * 32


@dataclass(frozen=True)
class Transaction(CachedEncodable):
    """One client operation against the YCSB table.

    ``op`` is one of ``"read"``, ``"update"``, ``"insert"``,
    ``"modify"`` (read-modify-write), or ``"noop"``.

    Transactions are encoded into every request, pre-prepare, and
    certificate that carries them; :class:`CachedEncodable` makes that a
    one-time cost per transaction instance.
    """

    txn_id: str
    op: str
    key: int
    value: str = ""

    def payload(self) -> tuple:
        """Canonical primitive form for hashing/signing."""
        return ("txn", self.txn_id, self.op, self.key, self.value)

    def prime_encoding(self) -> "Transaction":
        """Precompute the canonical encoding in one interpolation.

        Byte-identical to what the generic encoder would cache on first
        use (the determinism suite pins this); callers that mint
        transactions at workload rates (YCSB) prime eagerly so the hot
        batch-digest path never enters the encoder's dispatch loop.
        Only valid for exact ``str``/``int`` field types.
        """
        tid = self.txn_id.encode()
        op = self.op.encode()
        val = self.value.encode()
        key = b"%d" % self.key
        object.__setattr__(
            self, "_encoded_cache",
            b"l5:s3:txns%d:%bs%d:%bi%d:%bs%d:%b;"
            % (len(tid), tid, len(op), op, len(key), key, len(val), val))
        return self

    @classmethod
    def noop(cls, txn_id: str = "noop") -> "Transaction":
        """The paper's no-op request, proposed when a cluster has no
        client requests for a round (§2.5)."""
        return cls(txn_id, "noop", 0, "")


#: A request batch as circulated by the consensus protocols.
Batch = Tuple[Transaction, ...]


def batch_digest(batch: Batch) -> bytes:
    """SHA256 digest of a request batch.

    Encoding a :class:`Transaction` object is byte-identical to encoding
    its ``payload()`` tuple, so this digest matches the historical
    definition while reusing each transaction's cached bytes.  When
    every transaction's encoding is already cached (workload-minted
    batches always are), the digest is one join + one hash — the
    encoder's dispatch loop is skipped entirely.
    """
    parts = [b"l%d:" % len(batch)]
    append = parts.append
    for txn in batch:
        try:
            append(txn._encoded_cache)
        except AttributeError:
            return digest_of(tuple(batch))
    append(b";")
    return hashlib.sha256(b"".join(parts)).digest()


@dataclass(frozen=True)
class Block:
    """One ledger entry: an executed batch plus its commitment proof.

    ``certificate_digest`` records the commit certificate this replica
    holds for the block.  It is *not* covered by the block hash: any
    valid certificate proves the same request (Lemma 2.3), but different
    replicas legitimately assemble certificates from different quorum
    subsets of commit signatures, and the hash chain must agree across
    replicas.  Certificates are fully verified at admission instead, and
    retained by :class:`~repro.ledger.blockchain.Blockchain` for audit.
    """

    height: int
    round_id: RoundId
    cluster_id: ClusterId
    batch: Batch
    batch_digest: bytes
    certificate_digest: bytes
    prev_hash: bytes

    def payload(self) -> tuple:
        """Canonical primitive form of everything the hash covers.

        The hash covers the *digest* of the batch, which commits to the
        full content (SHA256 is collision resistant) while keeping
        block hashing O(1) in the batch size.  :meth:`verify_content`
        re-derives the digest from the stored transactions.
        """
        return (
            "block",
            self.height,
            self.round_id,
            self.cluster_id,
            self.batch_digest,
            self.prev_hash,
        )

    def block_hash(self) -> bytes:
        """SHA256 over the block payload (cached by the blockchain)."""
        return digest_of(self.payload())

    def verify_content(self) -> bool:
        """Whether the stored transactions match ``batch_digest``."""
        return batch_digest(self.batch) == self.batch_digest


def make_block(height: int, round_id: RoundId, cluster_id: ClusterId,
               batch: Batch, certificate: Any,
               prev_hash: Optional[bytes],
               precomputed_batch_digest: Optional[bytes] = None,
               precomputed_certificate_digest: Optional[bytes] = None,
               ) -> Block:
    """Construct a block, hashing the certificate into it.

    ``certificate`` may be any canonically encodable object (commit
    certificates expose ``payload()``).  Digests that protocol code has
    already computed (and cached on its message objects) can be passed
    in to avoid re-encoding large batches on the hot path.
    """
    if precomputed_batch_digest is None:
        precomputed_batch_digest = batch_digest(tuple(batch))
    if precomputed_certificate_digest is None:
        precomputed_certificate_digest = digest_of(certificate)
    return Block(
        height=height,
        round_id=round_id,
        cluster_id=cluster_id,
        batch=tuple(batch),
        batch_digest=precomputed_batch_digest,
        certificate_digest=precomputed_certificate_digest,
        prev_hash=prev_hash if prev_hash is not None else GENESIS_HASH,
    )
