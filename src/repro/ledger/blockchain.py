"""The immutable append-only blockchain maintained by every replica.

ResilientDB is fully replicated: each replica independently maintains a
full copy of the ledger (paper §3).  The chain supports:

* append with automatic hash linking,
* full-chain verification (:meth:`Blockchain.verify`), which is how a
  recovering replica audits a peer's ledger before trusting it,
* tamper detection tests — replacing or reordering any block breaks the
  hash chain and raises :class:`TamperedLedgerError`.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from ..errors import LedgerError, TamperedLedgerError
from ..types import ClusterId, RoundId
from .block import GENESIS_HASH, Batch, Block, make_block


class Blockchain:
    """An append-only, hash-linked sequence of :class:`Block` objects."""

    def __init__(self) -> None:
        self._blocks: List[Block] = []
        self._hashes: List[bytes] = []
        self._certificates: List[Any] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    @property
    def head_hash(self) -> bytes:
        """Hash of the latest block (genesis hash when empty)."""
        return self._hashes[-1] if self._hashes else GENESIS_HASH

    @property
    def height(self) -> int:
        """Number of blocks appended so far."""
        return len(self._blocks)

    def block(self, height: int) -> Block:
        """The block at ``height`` (0-based)."""
        try:
            return self._blocks[height]
        except IndexError as exc:
            raise LedgerError(
                f"no block at height {height} (chain height {self.height})"
            ) from exc

    def certificate(self, height: int) -> Any:
        """The commit certificate retained for the block at ``height``."""
        try:
            return self._certificates[height]
        except IndexError as exc:
            raise LedgerError(
                f"no certificate at height {height}"
            ) from exc

    def append(self, round_id: RoundId, cluster_id: ClusterId, batch: Batch,
               certificate: Any,
               batch_digest: Optional[bytes] = None,
               certificate_digest: Optional[bytes] = None) -> Block:
        """Append the next block for ``batch``, linking it to the head.

        ``batch_digest``/``certificate_digest`` accept digests the
        caller already holds (protocol messages cache them), avoiding a
        re-hash of the full batch on the append path.
        """
        block = make_block(
            height=self.height,
            round_id=round_id,
            cluster_id=cluster_id,
            batch=batch,
            certificate=certificate,
            prev_hash=self.head_hash,
            precomputed_batch_digest=batch_digest,
            precomputed_certificate_digest=certificate_digest,
        )
        self._blocks.append(block)
        self._hashes.append(block.block_hash())
        self._certificates.append(certificate)
        return block

    def verify(self, deep: bool = True) -> None:
        """Re-verify the whole hash chain.

        Raises :class:`TamperedLedgerError` on the first inconsistency:
        a block whose stored hash no longer matches its payload, a
        broken ``prev_hash`` link, or a height mismatch.  With ``deep``
        (the default) each block's transactions are additionally
        re-hashed against its ``batch_digest`` — the full content
        audit a recovering replica performs; ``deep=False`` checks only
        the chain structure (cheap, used by run-time safety audits).
        """
        prev = GENESIS_HASH
        for height, block in enumerate(self._blocks):
            if block.height != height:
                raise TamperedLedgerError(
                    f"block at position {height} claims height {block.height}"
                )
            if block.prev_hash != prev:
                raise TamperedLedgerError(
                    f"block {height} does not link to its predecessor"
                )
            if deep and not block.verify_content():
                raise TamperedLedgerError(
                    f"block {height} transactions do not match their digest"
                )
            recomputed = block.block_hash()
            if recomputed != self._hashes[height]:
                raise TamperedLedgerError(
                    f"block {height} contents do not match stored hash"
                )
            prev = recomputed

    def tamper_for_test(self, height: int, block: Block) -> None:
        """Overwrite a block *without* fixing hashes.

        Exists solely so tests can demonstrate that :meth:`verify`
        detects tampering; real code never mutates the chain.
        """
        self._blocks[height] = block

    def matches_prefix_of(self, other: "Blockchain") -> bool:
        """Whether this chain is a prefix of (or equal to) ``other``.

        The non-divergence tests use this: any two non-faulty replicas'
        ledgers must be prefix-comparable at all times.
        """
        if self.height > other.height:
            return False
        return all(
            mine == theirs
            for mine, theirs in zip(self._hashes, other._hashes)
        )

    def last_block(self) -> Optional[Block]:
        """The most recent block, or ``None`` for an empty chain."""
        return self._blocks[-1] if self._blocks else None
