"""Structured event tracing for deployments.

A :class:`MessageTracer` attaches to a network as a send observer and
records a bounded, filterable log of protocol traffic.  It exists for
debugging, for the failure-resilience example's narrative output, and
for tests that assert on *when* and *where* specific messages flowed
(e.g. "the remote view change fired before the new primary's resend").

:func:`load_trace_jsonl` is the read path for exported phase traces:
it replays a JSONL file written by
:meth:`~repro.bench.instrumentation.Instrumentation.export_jsonl` back
into a fresh hub, so ``repro trace --summary`` can print phase tables
and engine stats from an artifact without re-running the experiment.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Type

from ..net.network import Network
from ..types import NodeId
from .instrumentation import Instrumentation


class _ReplayClock:
    """Stand-in simulator for offline replay: just a settable ``now``."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0


def load_trace_jsonl(path: str) -> Instrumentation:
    """Rebuild an :class:`Instrumentation` hub from an exported JSONL.

    Phase-event lines replay through :meth:`Instrumentation.phase`
    (nodes stay strings — the read side only ever stringifies them), so
    marks, spans, phase durations, and the share-latency breakdown are
    reconstructed exactly.  ``engine_window`` / ``engine_worker`` lines
    (present when the trace came from a parallel run) reattach the
    engine track.  Sample streams and counters are not exported and so
    cannot be recovered here.
    """
    hub = Instrumentation(sim=None)
    clock = _ReplayClock()
    hub._sim = clock
    engine_windows: List[dict] = []
    engine_workers: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not a JSON object: {exc}") from exc
            if "engine_window" in obj:
                engine_windows.append(obj["engine_window"])
            elif "engine_worker" in obj:
                engine_workers.append(obj["engine_worker"])
            else:
                try:
                    clock.now = obj["t"]
                    hub.phase(obj["phase"], obj["node"], obj["cluster"],
                              obj["round"], obj.get("detail"))
                except (KeyError, TypeError) as exc:
                    raise ValueError(
                        f"{path}:{line_no}: not a phase-event record "
                        f"({exc})") from exc
    hub._sim = None
    if engine_windows or engine_workers:
        hub.set_engine_track(engine_windows, engine_workers)
    return hub


@dataclass(frozen=True)
class TraceEvent:
    """One recorded send."""

    time: float
    kind: str
    src: NodeId
    dst: NodeId
    size_bytes: int
    is_local: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        scope = "local " if self.is_local else "global"
        return (f"[{self.time:10.6f}] {scope} {self.kind:<22} "
                f"{str(self.src):>6} -> {str(self.dst):<6} "
                f"({self.size_bytes} B)")


class MessageTracer:
    """Bounded send log with type filtering.

    When the buffer fills, ``keep="first"`` (the default) drops new
    events and ``keep="last"`` runs as a ring buffer retaining the most
    recent ``max_events``; either way ``dropped`` counts the casualties
    and the first drop emits a one-line warning through the optional
    :class:`~repro.bench.instrumentation.Instrumentation` hub.

    Usage::

        tracer = MessageTracer.attach(deployment.network,
                                      kinds=(GlobalShare, Rvc))
        ...run...
        for event in tracer.events:
            print(event)
    """

    def __init__(self, network: Network,
                 kinds: Optional[Iterable[Type]] = None,
                 max_events: int = 100_000,
                 predicate: Optional[Callable[..., bool]] = None,
                 keep: str = "first",
                 instrumentation=None):
        if keep not in ("first", "last"):
            raise ValueError(f"keep must be 'first' or 'last', got {keep!r}")
        self._network = network
        self._kinds = tuple(kinds) if kinds is not None else None
        self._max_events = max_events
        self._predicate = predicate
        self._keep = keep
        self._instrumentation = instrumentation
        if keep == "last":
            self._events: "deque[TraceEvent]" = deque(maxlen=max_events)
        else:
            self._events = []
        self._dropped = 0

    @classmethod
    def attach(cls, network: Network,
               kinds: Optional[Iterable[Type]] = None,
               max_events: int = 100_000,
               predicate: Optional[Callable[..., bool]] = None,
               keep: str = "first",
               instrumentation=None,
               ) -> "MessageTracer":
        """Create a tracer and register it with ``network``."""
        tracer = cls(network, kinds=kinds, max_events=max_events,
                     predicate=predicate, keep=keep,
                     instrumentation=instrumentation)
        network.add_observer(tracer._observe)
        return tracer

    def _note_drop(self) -> None:
        self._dropped += 1
        if self._dropped == 1 and self._instrumentation is not None:
            self._instrumentation.warn_once(
                ("tracer-full", id(self)),
                f"MessageTracer buffer full ({self._max_events} events); "
                f"{'overwriting oldest' if self._keep == 'last' else 'dropping new'} events")

    def _observe(self, src: NodeId, dst: NodeId, message, size: int,
                 is_local: bool) -> None:
        if self._kinds is not None and not isinstance(message, self._kinds):
            return
        if self._predicate is not None and not self._predicate(
                src, dst, message):
            return
        if len(self._events) >= self._max_events:
            self._note_drop()
            if self._keep == "first":
                return
        self._events.append(TraceEvent(
            time=self._network.simulation.now,
            kind=type(message).__name__,
            src=src,
            dst=dst,
            size_bytes=size,
            is_local=is_local,
        ))

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events, in send order."""
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events not recorded because the buffer was full."""
        return self._dropped

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Events whose message type name is ``kind``."""
        return [e for e in self._events if e.kind == kind]

    def between(self, src_cluster: int, dst_cluster: int) -> List[TraceEvent]:
        """Events sent from one cluster to another."""
        return [
            e for e in self._events
            if e.src.cluster == src_cluster and e.dst.cluster == dst_cluster
        ]

    def first_time_of(self, kind: str) -> Optional[float]:
        """Time of the first event of ``kind``, or ``None``."""
        for event in self._events:
            if event.kind == kind:
                return event.time
        return None

    def summary(self) -> str:
        """Per-kind counts, one line per message type."""
        counts = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        lines = [f"{kind}: {count}"
                 for kind, count in sorted(counts.items())]
        if self._dropped:
            lines.append(f"(dropped {self._dropped} events)")
        return "\n".join(lines)
