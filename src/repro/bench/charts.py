"""Plain-text charts for benchmark output.

The paper presents its evaluation as line charts (Figures 10-13).  The
benchmarks print the underlying series as tables; this module adds a
terminal-friendly rendering so trends (who wins, where curves cross,
what collapses) are visible at a glance in CI logs — no plotting
dependency required.
"""

from __future__ import annotations

from typing import Dict, Sequence

_GLYPHS = "ox+*#@%&"


def _format_value(value: float) -> str:
    if value >= 10_000:
        return f"{value / 1000:.0f}k"
    if value >= 1000:
        return f"{value / 1000:.1f}k"
    if value >= 10:
        return f"{value:.0f}"
    return f"{value:.2f}"


def ascii_chart(title: str,
                x_label: str,
                x_values: Sequence,
                series: Dict[str, Sequence[float]],
                height: int = 12,
                width: int = 64) -> str:
    """Render one or more series as a scatter/line chart in ASCII.

    Each series gets a glyph; points landing on the same cell show the
    glyph of the last series drawn.  The y-axis is linear from 0 to the
    maximum observed value.
    """
    if not series or not x_values:
        return f"{title}\n(no data)"
    max_y = max((max(values) for values in series.values() if values),
                default=0.0)
    if max_y <= 0:
        max_y = 1.0
    n_points = len(x_values)
    grid = [[" "] * width for _ in range(height)]

    def cell(i: int, value: float):
        col = (0 if n_points == 1
               else round(i * (width - 1) / (n_points - 1)))
        row = height - 1 - round(value / max_y * (height - 1))
        return max(0, min(height - 1, row)), max(0, min(width - 1, col))

    for s_index, (name, values) in enumerate(series.items()):
        glyph = _GLYPHS[s_index % len(_GLYPHS)]
        for i, value in enumerate(values[:n_points]):
            row, col = cell(i, value)
            grid[row][col] = glyph

    lines = [title]
    for r, row in enumerate(grid):
        if r == 0:
            label = _format_value(max_y)
        elif r == height - 1:
            label = "0"
        else:
            label = ""
        lines.append(f"{label:>8} |{''.join(row)}|")
    x_axis = " " * 9 + "+" + "-" * width + "+"
    lines.append(x_axis)
    first, last = str(x_values[0]), str(x_values[-1])
    padding = max(1, width - len(first) - len(last))
    lines.append(" " * 10 + first + " " * padding + last
                 + f"   ({x_label})")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def bar_chart(title: str, labels: Sequence[str],
              values: Sequence[float], width: int = 48) -> str:
    """Horizontal bar chart, one row per label."""
    if not labels:
        return f"{title}\n(no data)"
    max_value = max(values) if values else 0.0
    if max_value <= 0:
        max_value = 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title]
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(value / max_value * width))
        lines.append(f"{str(label):>{label_width}} |{bar:<{width}}| "
                     f"{_format_value(value)}")
    return "\n".join(lines)
