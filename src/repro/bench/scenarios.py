"""Failure scenarios of the evaluation (paper §4.3).

Three scenarios are measured in Figure 12:

* ``one_backup``  — a single non-primary replica crashes.
* ``f_backups``   — ``f`` non-primary replicas crash in *every* cluster
  (the worst case GeoBFT and Steward are designed for; within the flat
  protocols' tolerance per Remark 2.1).
* ``primary``     — one primary crashes mid-run, forcing a view change
  (the Oregon cluster's primary for GeoBFT, the global primary for
  PBFT).

Scenarios are applied to a built :class:`~repro.bench.deployment.
Deployment` before (or during) the run; they only touch the failure
model, never protocol state.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError
from ..types import NodeId
from .deployment import Deployment

SCENARIOS = ("none", "one_backup", "f_backups", "primary")


def _non_primary_victims(deployment: Deployment) -> List[NodeId]:
    """The last ``f`` replicas of each cluster (per-cluster fault
    bound) — never index 1, so no initial primary (local or global) is
    selected."""
    victims: List[NodeId] = []
    for members in deployment.cluster_members.values():
        f_cluster = (len(members) - 1) // 3
        if f_cluster >= len(members):
            raise ConfigurationError(
                "cannot crash an entire cluster and stay within n > 3f"
            )
        if f_cluster > 0:
            victims.extend(members[-f_cluster:])
    return victims


def apply_scenario(deployment: Deployment, scenario: str,
                   fail_at: float = 0.0) -> List[NodeId]:
    """Arrange the scenario's crashes; returns the victims.

    ``fail_at`` schedules the crash at a simulated time (used by the
    primary-failure experiment, which fails the primary mid-run after a
    committed prefix exists); ``0.0`` crashes immediately.
    """
    if scenario not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; expected one of {SCENARIOS}"
        )
    if scenario == "none":
        return []
    if scenario == "one_backup":
        last_cluster = max(deployment.cluster_members)
        victims = [deployment.cluster_members[last_cluster][-1]]
    elif scenario == "f_backups":
        victims = _non_primary_victims(deployment)
    else:  # primary
        victims = [deployment.cluster_members[1][0]]
    failures = deployment.network.failures
    if fail_at <= 0.0:
        for victim in victims:
            failures.crash(victim)
    else:
        for victim in victims:
            deployment.sim.schedule(fail_at, failures.crash, victim)
    return victims
