"""Failure scenarios of the evaluation (paper §4.3) — now a registry.

Three scenarios are measured in Figure 12:

* ``one_backup``  — a single non-primary replica crashes.
* ``f_backups``   — ``f`` non-primary replicas crash in *every* cluster
  (the worst case GeoBFT and Steward are designed for; within the flat
  protocols' tolerance per Remark 2.1).
* ``primary``     — one primary crashes mid-run, forcing a view change
  (the Oregon cluster's primary for GeoBFT, the global primary for
  PBFT).

Scenarios are applied to a built :class:`~repro.bench.deployment.
Deployment` before (or during) the run; they only touch the failure
model (or install a fault timeline), never protocol state.

The closed scenario tuple is gone: :func:`register_scenario` adds named
scenarios to a registry, so experiment front-ends (`--scenario`) accept
extensions without editing this module.  Scheduled multi-fault plans go
through :class:`~repro.net.chaos.FaultTimeline` instead — the built-in
``chaos_smoke`` scenario installs one such seeded timeline (crash +
inter-cluster partition/heal + Byzantine tampering) as a ready-made
resilience probe for any protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..errors import ConfigurationError
from ..net.chaos import (CrashFault, EquivocateFault, FaultTimeline,
                         PartitionFault, TamperFault, _live_primary)
from ..types import NodeId
from .deployment import Deployment

#: The paper's own Figure 12 scenario names (always registered).
SCENARIOS = ("none", "one_backup", "f_backups", "primary")

#: A scenario arranges faults on a built deployment and returns the
#: statically-known victims (empty when targets resolve at runtime).
ScenarioFn = Callable[[Deployment, float], List[NodeId]]

_REGISTRY: Dict[str, ScenarioFn] = {}


def register_scenario(name: str, fn: ScenarioFn,
                      replace: bool = False) -> ScenarioFn:
    """Register ``fn`` under ``name``; returns ``fn`` for decorator use."""
    if not replace and name in _REGISTRY:
        raise ConfigurationError(f"scenario {name!r} is already registered")
    _REGISTRY[name] = fn
    return fn


def scenario_names() -> Tuple[str, ...]:
    """Every registered scenario name (paper names first)."""
    extras = sorted(name for name in _REGISTRY if name not in SCENARIOS)
    return SCENARIOS + tuple(extras)


def _non_primary_victims(deployment: Deployment) -> List[NodeId]:
    """The last ``f`` *non-primary* replicas of each cluster.

    Computed against live view state: after a mid-run view change the
    primary may be any member (at ``n = 4`` even the last one), so the
    victim set excludes whichever replica currently leads the cluster
    rather than assuming index 1 does.
    """
    victims: List[NodeId] = []
    for cluster, members in deployment.cluster_members.items():
        f_cluster = (len(members) - 1) // 3
        if f_cluster >= len(members):
            raise ConfigurationError(
                "cannot crash an entire cluster and stay within n > 3f"
            )
        if f_cluster > 0:
            primary = _live_primary(deployment, cluster)
            backups = [m for m in members if m != primary]
            victims.extend(backups[-f_cluster:])
    return victims


def _crash_victims(deployment: Deployment, victims: List[NodeId],
                   fail_at: float) -> List[NodeId]:
    failures = deployment.network.failures
    if fail_at <= 0.0:
        for victim in victims:
            failures.crash(victim)
    else:
        for victim in victims:
            deployment.sim.schedule(fail_at, failures.crash, victim)
    return victims


def _scenario_none(deployment: Deployment, fail_at: float) -> List[NodeId]:
    return []


def _scenario_one_backup(deployment: Deployment,
                         fail_at: float) -> List[NodeId]:
    last_cluster = max(deployment.cluster_members)
    members = deployment.cluster_members[last_cluster]
    primary = _live_primary(deployment, last_cluster)
    backups = [m for m in members if m != primary]
    return _crash_victims(deployment, backups[-1:], fail_at)


def _scenario_f_backups(deployment: Deployment,
                        fail_at: float) -> List[NodeId]:
    return _crash_victims(deployment, _non_primary_victims(deployment),
                          fail_at)


def _scenario_primary(deployment: Deployment,
                      fail_at: float) -> List[NodeId]:
    return _crash_victims(deployment,
                          [_live_primary(deployment, 1)], fail_at)


def chaos_smoke_timeline(protocol: str) -> FaultTimeline:
    """The seeded resilience probe run by CI for every protocol.

    The common shape — crash at t=1s, partition over [2s, 3.5s) healed
    mid-run, a Byzantine replica 2.1 tampering its payloads throughout
    (every honest verify path must reject them) — is specialized so
    each protocol stays *within its fault bounds* (ISSUE acceptance;
    Remark 2.1), reproducing the Figure 12 qualitative story:

    * **Clustered protocols (GeoBFT, Steward)** take a full
      inter-cluster partition: each cluster keeps its local quorum, so
      GeoBFT keeps replicating locally, fires a remote view change on
      the silent remote cluster, and resumes ordering after the heal —
      recovery is cluster-local.
    * **PBFT** also takes the full partition (neither half holds a
      global quorum, so commits stall), surviving on its view-change
      retransmission machinery once healed — stalling globally first,
      per Figure 12.
    * **Zyzzyva and HotStuff** have no view-change/pacemaker
      retransmission (omitted like the paper's own Zyzzyva), so their
      partition isolates a single replica — a WAN blip the remaining
      ``2f + 1`` quorum masks.
    * The crash hits the *live* cluster-1 primary where a view change
      exists to replace it, and a backup for Zyzzyva and Steward.
    * GeoBFT and PBFT additionally get an equivocating Byzantine
      primary from t=0 (conflicting, well-formed proposals split the
      backups; quorum intersection blocks both, and the view change
      replaces the equivocator).
    """
    clustered = protocol in ("geobft", "steward")
    has_view_change = protocol not in ("zyzzyva", "steward")
    crash = CrashFault("primary:1" if has_view_change else "backup:1",
                       name="crash-c1", at=1.0)
    if clustered or protocol == "pbft":
        partition = PartitionFault(["cluster:1"], ["cluster:2"], at=2.0,
                                   until=3.5, name="partition-c1-c2")
    else:
        partition = PartitionFault(["replica:2.4"], ["all"], at=2.0,
                                   until=3.5, name="partition-r2.4")
    if protocol == "hotstuff":
        # HotStuff quorums are n - f: with the crash and the partition
        # both spending a replica, replica 2.1's *votes* must stay
        # honest to stay within bounds — it corrupts the proposals of
        # its own instance instead (every backup rejects them).
        tamper = TamperFault("replica:2.1", messages=("HsProposal",),
                             name="byzantine-r2.1")
    else:
        tamper = TamperFault("replica:2.1", name="byzantine-r2.1")
    faults = [crash, partition, tamper]
    if protocol == "geobft":
        faults.append(EquivocateFault(2, name="equivocate-c2"))
    elif protocol == "pbft":
        faults.append(EquivocateFault(1, name="equivocate-c1"))
    return FaultTimeline(faults, name=f"chaos-smoke-{protocol}")


def _scenario_chaos_smoke(deployment: Deployment,
                          fail_at: float) -> List[NodeId]:
    """Install the seeded chaos timeline (``fail_at`` is ignored — the
    timeline carries its own schedule).  Victims resolve at activation
    time, so none are known statically."""
    chaos_smoke_timeline(deployment.config.protocol).install(deployment)
    return []


def _scenario_payment_network(deployment: Deployment,
                              fail_at: float) -> List[NodeId]:
    """Swap every driver's workload for interbank payment transfers.

    Not a fault scenario: it retargets the workload (``fail_at`` is
    ignored) at the conflict-bearing read-modify-write payment
    generator, with each driver branded as a branch of its region.  The
    swap resolves at build time against the (identical) initial client
    list, so it is parallel-safe — workers brand the same drivers with
    the same seeds.
    """
    from ..workload.payment import DEFAULT_ACCOUNTS, PaymentWorkload
    accounts = min(DEFAULT_ACCOUNTS, deployment.config.record_count)
    for i, client in enumerate(deployment.clients):
        client._workload = PaymentWorkload(
            client.region, seed=100 + i, accounts=accounts)
    return []


register_scenario("none", _scenario_none)
register_scenario("one_backup", _scenario_one_backup)
register_scenario("f_backups", _scenario_f_backups)
register_scenario("primary", _scenario_primary)
register_scenario("chaos_smoke", _scenario_chaos_smoke)
register_scenario("payment_network", _scenario_payment_network)


def apply_scenario(deployment: Deployment, scenario: str,
                   fail_at: float = 0.0) -> List[NodeId]:
    """Arrange the named scenario's faults; returns the known victims.

    ``fail_at`` schedules crash-type scenarios at a simulated time (used
    by the primary-failure experiment, which fails the primary mid-run
    after a committed prefix exists); ``0.0`` crashes immediately.
    """
    fn = _REGISTRY.get(scenario)
    if fn is None:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; expected one of "
            f"{scenario_names()}"
        )
    return fn(deployment, fail_at)
