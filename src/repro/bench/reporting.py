"""Plain-text reporting of reproduced tables and figures.

The benchmark harness prints the same rows/series the paper reports:
Table 1's latency/bandwidth matrix, Table 2's complexity comparison, and
the throughput/latency series of Figures 10–13.  Everything is plain
monospace text so results are diffable and readable in CI logs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .deployment import ExperimentResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_figure_series(title: str, x_label: str,
                         x_values: Sequence,
                         series: Dict[str, Sequence[float]],
                         unit: str) -> str:
    """Render one paper figure as a table: protocols x sweep values."""
    headers = [x_label] + list(series.keys())
    rows: List[List] = []
    for i, x in enumerate(x_values):
        row: List = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=f"{title}  [{unit}]")


def summarize_results(results: Iterable[ExperimentResult]) -> str:
    """Render a list of experiment results as a comparison table."""
    headers = ["protocol", "z", "n", "batch", "tput (txn/s)",
               "avg lat (s)", "global msgs", "global MB", "safety"]
    rows = [
        [
            r.protocol,
            r.num_clusters,
            r.replicas_per_cluster,
            r.batch_size,
            r.throughput_txn_s,
            r.avg_latency_s,
            r.global_messages,
            r.global_bytes / 1e6,
            "ok" if r.safety_ok else "VIOLATED",
        ]
        for r in results
    ]
    return format_table(headers, rows)
