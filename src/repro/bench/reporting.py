"""Plain-text reporting of reproduced tables and figures.

The benchmark harness prints the same rows/series the paper reports:
Table 1's latency/bandwidth matrix, Table 2's complexity comparison, and
the throughput/latency series of Figures 10–13.  Everything is plain
monospace text so results are diffable and readable in CI logs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .deployment import ExperimentResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_figure_series(title: str, x_label: str,
                         x_values: Sequence,
                         series: Dict[str, Sequence[float]],
                         unit: str) -> str:
    """Render one paper figure as a table: protocols x sweep values."""
    headers = [x_label] + list(series.keys())
    rows: List[List] = []
    for i, x in enumerate(x_values):
        row: List = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=f"{title}  [{unit}]")


def _ms(seconds: float) -> float:
    return seconds * 1e3


def format_phase_durations(instrumentation) -> str:
    """Per-phase latency table from an :class:`Instrumentation` hub.

    One row per consecutive lifecycle transition (``proposed->prepared``
    and so on) plus the end-to-end ``proposed->executed`` total, all in
    simulated milliseconds.
    """
    durations = instrumentation.phase_durations()
    if not durations:
        return "(no completed phase transitions recorded)"
    rows = []
    for name, hist in durations.items():
        p = hist.percentiles()
        rows.append([name, hist.count, _ms(hist.mean()), _ms(p["p50"]),
                     _ms(p["p95"]), _ms(p["p99"]), _ms(hist.max)])
    return format_table(
        ["phase", "rounds", "mean (ms)", "p50 (ms)", "p95 (ms)",
         "p99 (ms)", "max (ms)"],
        rows, title="consensus phase durations")


def format_share_latency(instrumentation) -> str:
    """Global-sharing latency table, one row per (origin, destination)
    cluster pair, in simulated milliseconds."""
    latency = instrumentation.share_latency()
    if not latency:
        return "(no global shares recorded)"
    rows = []
    for (origin, dst), hist in sorted(latency.items()):
        p = hist.percentiles()
        rows.append([f"c{origin}->c{dst}", hist.count, _ms(hist.mean()),
                     _ms(p["p50"]), _ms(p["p95"]), _ms(p["p99"])])
    return format_table(
        ["link", "rounds", "mean (ms)", "p50 (ms)", "p95 (ms)",
         "p99 (ms)"],
        rows, title="global share latency (origin -> destination)")


def format_queue_samples(instrumentation) -> str:
    """Runtime-sample table (queue depths etc.) from the hub."""
    if not instrumentation.samples:
        return "(no runtime samples recorded)"
    rows = []
    for name, hist in sorted(instrumentation.samples.items()):
        p = hist.percentiles()
        rows.append([name, hist.count, hist.mean(), p["p50"], p["p95"],
                     hist.max])
    return format_table(
        ["sample", "n", "mean", "p50", "p95", "max"],
        rows, title="runtime samples (per committed round)")


def format_engine_stats(per_worker: Sequence[Dict[str, object]],
                        lookahead: float = 0.0,
                        windows: int = 0) -> str:
    """Per-worker parallel-engine table from :class:`EngineReport`
    rows (or ``engine_worker`` records replayed from a JSONL trace).

    Busy/wait are *host* seconds (where wall-clock went), idle is the
    fraction of a worker's wall time spent blocked at barriers — the
    measured form of the "no speedup on one core" caveat.
    """
    if not per_worker:
        return "(no engine telemetry recorded)"
    rows = []
    for w in per_worker:
        clusters = ",".join(str(c) for c in w.get("clusters", ()))
        rows.append([
            f"w{w['worker']}", clusters, w.get("windows", 0),
            f"{w.get('busy_s', 0.0):.3f}", f"{w.get('wait_s', 0.0):.3f}",
            f"{w.get('idle_fraction', 0.0):.1%}", w.get("events", 0),
            w.get("exports", 0), w.get("imports", 0),
        ])
    title = "parallel engine (per worker)"
    if lookahead > 0:
        title += (f" — lookahead {lookahead * 1e3:.1f} ms, "
                  f"{windows} windows")
    return format_table(
        ["worker", "clusters", "windows", "busy (s)", "wait (s)",
         "idle", "events", "exports", "imports"],
        rows, title=title)


def _rate(hits: int, misses: int) -> str:
    total = hits + misses
    if total == 0:
        return "-"
    return f"{hits / total:.1%}"


def format_cache_report(deployment) -> str:
    """Hit/miss telemetry for the crypto-side caches of a deployment:
    the shared :class:`VerificationCache` (per signature/MAC kind) and
    the process-wide :class:`CachedEncodable` encode/digest caches."""
    rows = []
    cache = deployment.verification_cache
    for kind, st in cache.kind_stats().items():
        rows.append([f"verification[{kind}]", st["hits"], st["misses"],
                     _rate(st["hits"], st["misses"])])
    if not cache.kind_stats():
        rows.append(["verification", cache.hits, cache.misses,
                     _rate(cache.hits, cache.misses)])
    delta = deployment.encoding_cache_delta()
    rows.append(["encoding", delta["encode_hits"], delta["encode_misses"],
                 _rate(delta["encode_hits"], delta["encode_misses"])])
    rows.append(["payload digest", delta["digest_hits"],
                 delta["digest_misses"],
                 _rate(delta["digest_hits"], delta["digest_misses"])])
    rows.append(["encode splice", delta["splice_hits"],
                 delta["splice_misses"],
                 _rate(delta["splice_hits"], delta["splice_misses"])])
    return format_table(["cache", "hits", "misses", "hit rate"], rows,
                        title="cache telemetry")


def format_runtime_telemetry(deployment) -> str:
    """Simulator and network counters for one finished deployment."""
    net = deployment.network.telemetry()
    rows = [
        ["events processed", deployment.sim.events_processed],
        ["max event-queue depth", deployment.sim.max_queue_depth],
        ["messages sent", net["sends"]],
        ["self-sends (no hop)", net["self_sends"]],
        ["suppressed sends", net["suppressed_sends"]],
        ["in-flight drops", net["in_flight_drops"]],
        ["receiver drops", net["receiver_drops"]],
    ]
    return format_table(["counter", "value"], rows,
                        title="runtime telemetry")


def format_latency_percentiles(result: ExperimentResult) -> str:
    """One-line client latency digest for a result row."""
    return (f"  latency: avg {result.avg_latency_s:.3f}s  "
            f"p50 {result.p50_latency_s:.3f}s  "
            f"p95 {result.p95_latency_s:.3f}s  "
            f"p99 {result.p99_latency_s:.3f}s   "
            f"offered load: {result.offered_load_txn_s:,.0f} txn/s")


def summarize_results(results: Iterable[ExperimentResult]) -> str:
    """Render a list of experiment results as a comparison table."""
    headers = ["protocol", "z", "n", "batch", "tput (txn/s)",
               "avg lat (s)", "global msgs", "global MB", "safety"]
    rows = [
        [
            r.protocol,
            r.num_clusters,
            r.replicas_per_cluster,
            r.batch_size,
            r.throughput_txn_s,
            r.avg_latency_s,
            r.global_messages,
            r.global_bytes / 1e6,
            "ok" if r.safety_ok else "VIOLATED",
        ]
        for r in results
    ]
    return format_table(headers, rows)
