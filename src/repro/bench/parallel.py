"""Parallel simulation engine: per-cluster worker processes.

The serial engine is a single discrete-event loop; at paper scale
(z=13, n=91) one core does all the work.  This module shards the loop
across cores with the classic conservative-lookahead (CMB-style)
synchronization:

* **Partitioning** — the z clusters are split into contiguous groups,
  one worker process per group.  Every worker builds the *complete*
  deployment from the picklable :class:`ExperimentConfig` (identical
  initial state everywhere), but only its own clusters' clients are
  started and only its own replicas ever receive messages — foreign
  replicas stay inert.
* **Lookahead** — the minimum one-way latency between any two clusters
  owned by *different* workers (Table 1 floors this at 16.5 ms for the
  paper topology).  A message posted inside a window cannot arrive at
  a remote worker before the window ends, so workers can burn through
  one full window of events with no communication at all.
* **Barriers** — workers advance in lockstep windows of exactly the
  lookahead.  At each barrier the orchestrator routes the cross-worker
  deliveries each worker captured (:class:`ExportedSend` records) to
  the destination cluster's owner, which injects them verbatim into
  its calendar queue.

Determinism is the whole point: the exported records carry the
composite tie keys minted by :class:`WorkerSimulation`, so every
worker fires its events in exactly the serial engine's ``(deadline,
seq)`` order and the merged run — metrics replayed in completion
order, events-processed corrected for per-worker duplication of
orchestration events, ledgers collected per owner — produces a
byte-identical ``deployment_digest``.  The 13-case golden matrix
asserts this for every protocol.

Instrumented runs are parallel-native: each worker records into its
own :class:`WorkerInstrumentation` hub (phase events stamped with the
engine's composite tie keys) and the orchestrator folds the hubs into
one with :meth:`Instrumentation.merge`, so the merged trace's span set
equals the serial engine's.  The engine additionally measures itself —
per-worker busy/barrier-wait host time, window widths, export volumes
— shipped as an :class:`EngineReport` and rendered as a dedicated
"engine" track in the Chrome trace.

Configurations the engine cannot run bit-identically (single cluster,
zero-latency topologies, stochastic or live-targeted fault timelines)
are detected by :func:`parallel_unsupported_reason`; callers fall back
to the serial engine, which is always correct.
"""

from __future__ import annotations

import gc
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError, TamperedLedgerError
from ..net.chaos import FaultTimeline
from ..net.simulator import WorkerSimulation
from ..net.topology import Topology
from .deployment import (Deployment, ExperimentConfig, ExperimentResult,
                         InvariantReport, digest_from_parts)
from .instrumentation import Instrumentation, WorkerInstrumentation
from ..workload.traffic import traffic_summary
from .metrics import Metrics, WorkerMetrics, merge_worker_metrics

#: Scenarios that resolve their victims at install time against the
#: (identical) initial state — safe to replay in every worker.  The
#: others (e.g. ``chaos_smoke``) install live-selector timelines whose
#: resolution depends on mid-run state a single worker cannot see.
PARALLEL_SAFE_SCENARIOS = frozenset(
    {"none", "one_backup", "f_backups", "primary", "payment_network"})

#: Selector prefixes that resolve against *live* deployment state
#: (current primary / current backups) rather than static topology.
_LIVE_SELECTOR_PREFIXES = ("primary:", "backup:", "backups:")

#: Hard cap on post-final exchange rounds; anything above ~2 indicates
#: a lookahead violation, so fail loudly rather than spin.
_MAX_FINAL_ROUNDS = 32


# ---------------------------------------------------------------------------
# Partitioning and lookahead
# ---------------------------------------------------------------------------
def partition_clusters(num_clusters: int,
                       workers: int) -> List[Tuple[int, ...]]:
    """Contiguous, balanced split of clusters ``1..z`` over workers.

    Contiguity keeps each worker's clusters geographically adjacent in
    the paper's region order, which maximizes the cross-worker latency
    floor (the lookahead) for the Table 1 topology.
    """
    workers = max(1, min(workers, num_clusters))
    base, extra = divmod(num_clusters, workers)
    parts: List[Tuple[int, ...]] = []
    start = 1
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        parts.append(tuple(range(start, start + size)))
        start += size
    return parts


def lookahead_s(topology: Topology,
                parts: Sequence[Tuple[int, ...]],
                affinity: Optional[frozenset] = None) -> float:
    """The conservative lookahead: min one-way latency between any two
    clusters owned by different workers (0.0 if there is no such pair,
    which disables the parallel engine).

    ``affinity`` (see :func:`cluster_affinity_pairs`) restricts the
    minimum to cluster pairs the protocol actually exchanges messages
    between — links that can never carry a cross-worker message impose
    no synchronization constraint, so skipping them widens the window.
    """
    owner: Dict[int, int] = {}
    for w, part in enumerate(parts):
        for cluster in part:
            owner[cluster] = w
    best = math.inf
    clusters = sorted(owner)
    for a in clusters:
        for b in clusters:
            if a < b and owner[a] != owner[b]:
                if affinity is not None and (a, b) not in affinity \
                        and (b, a) not in affinity:
                    continue
                latency = topology.link(topology.regions[a - 1],
                                        topology.regions[b - 1]).latency_s
                if latency < best:
                    best = latency
    return 0.0 if best is math.inf else best


def cluster_affinity_pairs(config: ExperimentConfig
                           ) -> Optional[frozenset]:
    """The protocol's declared cross-cluster traffic pairs, or ``None``
    when every pair may exchange messages (the flat protocols run one
    group across all clusters, so any message may cross any link)."""
    clusters = range(1, config.num_clusters + 1)
    if config.protocol == "geobft":
        from ..core.geobft import GeoBftReplica
        return GeoBftReplica.cluster_affinity(clusters)
    if config.protocol == "steward":
        from ..consensus.steward import StewardReplica
        # Deployment._build_steward pins the primary cluster to 1.
        return StewardReplica.cluster_affinity(clusters,
                                               primary_cluster=1)
    return None


# ---------------------------------------------------------------------------
# Serial-fallback gates
# ---------------------------------------------------------------------------
def _fault_unsupported_reason(fault) -> Optional[str]:
    if fault.kind == "loss":
        return ("loss faults draw per-send randomness from a "
                "process-local RNG")
    if fault.kind == "delay" and getattr(fault, "jitter_ms", 0.0) > 0:
        return ("delay jitter draws per-send randomness from a "
                "process-local RNG")
    if fault.at > 0:
        # After t=0 worker states include in-flight view changes a
        # single worker cannot resolve consistently; at t=0 every
        # worker resolves live selectors against identical initial
        # state, which is safe.
        if fault.kind == "equivocate":
            return (f"fault {fault.name!r} resolves the live primary "
                    f"at t={fault.at:g}s")
        selectors: List = []
        for attr in ("targets", "a", "b", "node", "to"):
            value = getattr(fault, attr, None)
            if value:
                selectors.extend(value)
        for selector in selectors:
            if (isinstance(selector, str) and selector.strip()
                    .startswith(_LIVE_SELECTOR_PREFIXES)):
                return (f"fault {fault.name!r} resolves live selector "
                        f"{selector!r} at t={fault.at:g}s")
    return None


def parallel_unsupported_reason(config: ExperimentConfig,
                                timeline=None,
                                scenario: Optional[str] = None,
                                ) -> Optional[str]:
    """Why this run must use the serial engine, or ``None`` if the
    parallel engine reproduces it bit-identically.

    ``timeline`` may be a :class:`FaultTimeline` or its declarative
    dict form; ``scenario`` a registered scenario name.
    """
    if config.workers <= 1:
        return "workers <= 1"
    if config.num_clusters < 2:
        return "single-cluster deployment cannot be partitioned"
    parts = partition_clusters(config.num_clusters, config.workers)
    if lookahead_s(config.resolved_topology(), parts,
                   cluster_affinity_pairs(config)) <= 0.0:
        return "topology has a zero-latency cross-worker link"
    if scenario is not None and scenario not in PARALLEL_SAFE_SCENARIOS:
        return (f"scenario {scenario!r} resolves targets against live "
                f"mid-run state")
    if timeline is not None:
        if isinstance(timeline, dict):
            timeline = FaultTimeline.from_dict(timeline)
        for fault in timeline.faults:
            reason = _fault_unsupported_reason(fault)
            if reason is not None:
                return reason
    return None


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------
def _worker_loop(conn, spec) -> None:
    (config, owned_clusters, worker_index, worker_count, timeline_dict,
     scenario, fail_at) = spec
    owned_set = frozenset(owned_clusters)
    sim = WorkerSimulation(seed=config.seed, worker_index=worker_index,
                           worker_count=worker_count)
    metrics = WorkerMetrics(warmup=config.warmup)
    instrumentation = (WorkerInstrumentation(sim, worker_index)
                       if config.instrument else None)
    deployment = Deployment(config, _sim=sim, _metrics=metrics,
                            _instrumentation=instrumentation)

    owned_nodes = set()
    for cluster, members in deployment.cluster_members.items():
        if cluster in owned_set:
            owned_nodes.update(members)
    for client in deployment.clients:
        if client.node_id.cluster in owned_set:
            owned_nodes.add(client.node_id)
    deployment.network.enable_partition(owned_nodes)

    # Pre-run orchestration in the CLI's order — scenario first, then
    # timeline — so the rank-0 tie counters match the serial engine's
    # smallest sequence numbers exactly.
    if scenario:
        from .scenarios import apply_scenario
        apply_scenario(deployment, scenario, fail_at)
    if timeline_dict is not None:
        FaultTimeline.from_dict(timeline_dict).install(deployment)

    # Only owned clients start; the stamped rank makes same-instant
    # chains from different clusters compare in serial post order.
    for client in deployment.clients:
        cluster = client.node_id.cluster
        if cluster in owned_set:
            sim.schedule_ranked(0.0, cluster, client.start)

    network = deployment.network
    # The engine measures its own host-side behavior per barrier
    # window: time inside the event loop (busy), time blocked on the
    # orchestrator (barrier wait), and export/import volumes.  All
    # host-clock reads below feed *telemetry only* — never simulated
    # state — so determinism is untouched.
    engine_windows: List[Dict[str, object]] = []
    window_start = 0.0
    # One gc window around the whole run (the serial engine toggles per
    # ``run()`` call; per-window toggling would churn for nothing).
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        while True:
            waited_at = time.perf_counter()  # repro: allow[no-wallclock] host-side engine telemetry (barrier wait)
            msg = conn.recv()
            wait_s = time.perf_counter() - waited_at  # repro: allow[no-wallclock] host-side engine telemetry
            tag = msg[0]
            if tag == "advance" or tag == "final":
                _, end, imports = msg
                for rec in imports:
                    network.inject_import(rec)
                events_before = sim.events_processed
                busy_at = time.perf_counter()  # repro: allow[no-wallclock] host-side engine telemetry (worker busy time)
                if tag == "advance":
                    sim.run_window(end)
                else:
                    sim.run(until=end)
                busy_s = time.perf_counter() - busy_at  # repro: allow[no-wallclock] host-side engine telemetry
                exports = network.drain_exports()
                engine_windows.append({
                    "worker": worker_index,
                    "window": len(engine_windows),
                    "start": window_start,
                    "end": end,
                    "busy_s": busy_s,
                    "wait_s": wait_s,
                    "events": sim.events_processed - events_before,
                    "exports": len(exports),
                    "export_events": sum(len(rec.dsts) for rec in exports),
                    "imports": len(imports),
                })
                window_start = end
                conn.send(("exports", exports))
            elif tag == "summary":
                conn.send(("summary",
                           _summarize(deployment, owned_nodes,
                                      engine_windows)))
            elif tag == "exit":
                return
            else:  # pragma: no cover - protocol bug guard
                raise SimulationError(f"unknown worker command {tag!r}")
    finally:
        if gc_was_enabled:
            gc.enable()


def _worker_main(conn, spec) -> None:
    """Spawn entry point: run the loop, ship any failure as a message.

    ``REPRO_PROFILE=1`` profiles this worker under :mod:`cProfile` and
    dumps ``<REPRO_PROFILE_OUT or 'repro-profile'>-w<rank>.pstats`` on
    exit (the orchestrator process is profiled separately by the CLI),
    so parallel hot spots are attributable per worker.
    """
    profiler = None
    if os.environ.get("REPRO_PROFILE") == "1":
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    try:
        _worker_loop(conn, spec)
    # Not swallowed: the traceback is shipped to the orchestrator,
    # which re-raises it as SimulationError (_recv).
    # repro: allow[no-silent-except] failure is forwarded, not dropped
    except BaseException:
        import traceback
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass
    finally:
        if profiler is not None:
            profiler.disable()
            prefix = os.environ.get("REPRO_PROFILE_OUT", "repro-profile")
            profiler.dump_stats(f"{prefix}-w{spec[2]}.pstats")
        conn.close()


def _summarize(deployment: Deployment, owned_nodes,
               engine_windows: List[Dict[str, object]]) -> dict:
    """Everything the orchestrator needs to merge this worker's share."""
    sim = deployment.sim
    network = deployment.network
    crashed = network.failures.crashed_nodes
    timeline = deployment.timeline
    byzantine = (timeline.byzantine_nodes() if timeline is not None
                 else frozenset())

    ledger_rows: List[Tuple[str, int, str]] = []
    chains: Dict[str, List[str]] = {}
    hotstuff: Dict[str, List[Tuple[int, int, tuple]]] = {}
    verify_errors: List[str] = []
    final_height = 0
    for node, replica in deployment.replicas.items():
        final_height += replica.ledger.height
        if node not in owned_nodes:
            continue
        ledger_rows.append((str(node), replica.ledger.height,
                            replica.ledger.head_hash.hex()))
        if node in crashed or node in byzantine:
            continue
        # Alive (honest) replicas: the safety audit's inputs.  Verify
        # locally but let the *parent* decide whether the error counts
        # (the serial engine skips the audit entirely when fewer than
        # two replicas are alive deployment-wide).
        try:
            replica.ledger.verify(deep=False)
        except TamperedLedgerError as exc:
            verify_errors.append(str(exc))
        if deployment.config.protocol == "hotstuff":
            hotstuff[str(node)] = [
                (block.cluster_id, block.round_id,
                 tuple(txn.txn_id for txn in block.batch))
                for block in replica.ledger
            ]
        else:
            chains[str(node)] = [h.hex()
                                 for h in replica.ledger._hashes]
    return {
        "metrics": deployment.metrics,
        "events_processed": sim.events_processed,
        "shared_fired": sim.shared_fired,
        "max_queue_depth": sim.max_queue_depth,
        "now": sim.now,
        "telemetry": network.telemetry(),
        "ledger_rows": ledger_rows,
        "chains": chains,
        "hotstuff": hotstuff,
        "verify_errors": verify_errors,
        "crashed": sorted(crashed, key=str),
        "byzantine": sorted(byzantine, key=str),
        "activated": dict(timeline._activated) if timeline else {},
        "deactivated": dict(timeline._deactivated) if timeline else {},
        "final_height": final_height,
        # Pickled with _sim stripped (Instrumentation.__getstate__);
        # None on uninstrumented runs.
        "instrumentation": deployment.instrumentation,
        "engine_windows": engine_windows,
    }


# ---------------------------------------------------------------------------
# Orchestrator
# ---------------------------------------------------------------------------
@dataclass
class EngineReport:
    """The parallel engine's own telemetry for one run.

    ``per_worker`` holds one totals dict per worker with keys
    ``worker``, ``clusters``, ``windows``, ``busy_s``, ``wait_s``,
    ``idle_fraction``, ``events``, ``exports``, ``export_events``,
    ``imports``.  Host-time figures (``busy_s``/``wait_s``) measure
    where *wall-clock* goes — they vary run to run and are telemetry
    only; everything else is deterministic.
    """

    workers: int
    lookahead: float
    windows: int
    per_worker: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (what ``repro run --json`` embeds)."""
        return {
            "workers": self.workers,
            "lookahead_s": self.lookahead,
            "windows": self.windows,
            "per_worker": [dict(w) for w in self.per_worker],
        }

    @staticmethod
    def worker_totals(worker: int, clusters: Sequence[int],
                      windows: Sequence[Dict[str, object]]
                      ) -> Dict[str, object]:
        """Aggregate one worker's per-window log into its totals row."""
        busy = sum(w["busy_s"] for w in windows)
        wait = sum(w["wait_s"] for w in windows)
        elapsed = busy + wait
        return {
            "worker": worker,
            "clusters": list(clusters),
            "windows": len(windows),
            "busy_s": busy,
            "wait_s": wait,
            "idle_fraction": (wait / elapsed) if elapsed > 0 else 0.0,
            "events": sum(w["events"] for w in windows),
            "exports": sum(w["exports"] for w in windows),
            "export_events": sum(w["export_events"] for w in windows),
            "imports": sum(w["imports"] for w in windows),
        }


@dataclass
class ParallelRun:
    """Outcome of one parallel run, with the merged observability the
    serial :class:`Deployment` would have exposed."""

    result: ExperimentResult
    digest: str
    events_processed: int
    max_queue_depth: int
    telemetry: Dict[str, int]
    invariants: InvariantReport
    metrics: Metrics
    workers: int
    lookahead: float
    windows: int
    #: Merged observability hub (None unless ``config.instrument``).
    instrumentation: Optional[Instrumentation] = None
    #: The engine's own telemetry (always present).
    engine: Optional[EngineReport] = None


def run_parallel(config: ExperimentConfig, timeline=None,
                 scenario: Optional[str] = None,
                 fail_at: float = 0.0) -> ParallelRun:
    """Run one experiment on the parallel engine.

    Callers should gate on :func:`parallel_unsupported_reason` first;
    this function trusts its verdict.  ``timeline`` may be a
    :class:`FaultTimeline` (not yet installed) or its dict form — each
    worker instantiates its own copy from the declarative spec.
    """
    reason = parallel_unsupported_reason(config, timeline=timeline,
                                         scenario=scenario)
    if reason is not None:
        raise SimulationError(f"configuration needs the serial engine: "
                              f"{reason}")
    timeline_dict = (timeline.to_dict()
                     if isinstance(timeline, FaultTimeline) else timeline)
    parts = partition_clusters(config.num_clusters, config.workers)
    topology = config.resolved_topology()
    lookahead = lookahead_s(topology, parts, cluster_affinity_pairs(config))
    duration = config.duration
    n_windows = max(1, math.ceil(duration / lookahead))
    owner_of: Dict[int, int] = {}
    for w, part in enumerate(parts):
        for cluster in part:
            owner_of[cluster] = w

    ctx = multiprocessing.get_context("spawn")
    conns = []
    procs = []
    try:
        for index, part in enumerate(parts):
            parent_conn, child_conn = ctx.Pipe()
            spec = (config, part, index, len(parts), timeline_dict,
                    scenario, fail_at)
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, spec), daemon=True)
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        inboxes: List[list] = [[] for _ in parts]

        def route(exports) -> None:
            for rec in exports:
                # Serial leaves deliveries past the horizon queued and
                # unfired; dropping them keeps event counts identical.
                if rec.arrival > duration:
                    continue
                inboxes[owner_of[rec.dsts[0].cluster]].append(rec)

        for k in range(1, n_windows + 1):
            end = min(k * lookahead, duration)
            tag = "final" if k == n_windows else "advance"
            outgoing, inboxes = inboxes, [[] for _ in parts]
            for w, conn in enumerate(conns):
                conn.send((tag, end, outgoing[w]))
            for conn in conns:
                route(_recv(conn, "exports"))

        # Boundary imports that land exactly on the horizon (arrival ==
        # duration) still fire in the serial engine; re-run the final
        # window until the exchange drains (their descendants arrive
        # strictly past the horizon, so this converges immediately).
        rounds = 0
        while any(inboxes):
            rounds += 1
            if rounds > _MAX_FINAL_ROUNDS:
                raise SimulationError(
                    "parallel final exchange did not converge; "
                    "lookahead violation?")
            outgoing, inboxes = inboxes, [[] for _ in parts]
            for w, conn in enumerate(conns):
                if outgoing[w]:
                    conn.send(("final", duration, outgoing[w]))
            for w, conn in enumerate(conns):
                if outgoing[w]:
                    route(_recv(conn, "exports"))

        summaries = []
        for conn in conns:
            conn.send(("summary",))
        for conn in conns:
            summaries.append(_recv(conn, "summary"))
        for conn in conns:
            conn.send(("exit",))
        for proc in procs:
            proc.join(timeout=60)
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)

    run = _merge(config, summaries, timeline_dict)
    run.workers = len(parts)
    run.lookahead = lookahead
    run.windows = n_windows
    per_worker = [
        EngineReport.worker_totals(w, parts[w], s["engine_windows"])
        for w, s in enumerate(summaries)
    ]
    run.engine = EngineReport(workers=len(parts), lookahead=lookahead,
                              windows=n_windows, per_worker=per_worker)
    if run.instrumentation is not None:
        all_windows = [w for s in summaries for w in s["engine_windows"]]
        run.instrumentation.set_engine_track(all_windows, per_worker)
    return run


def _recv(conn, expected: str):
    reply = conn.recv()
    if reply[0] == "error":
        raise SimulationError(f"parallel worker failed:\n{reply[1]}")
    if reply[0] != expected:  # pragma: no cover - protocol bug guard
        raise SimulationError(f"expected {expected!r} from worker, got "
                              f"{reply[0]!r}")
    return reply[1]


# ---------------------------------------------------------------------------
# Merge: rebuild the serial engine's outputs from worker shares
# ---------------------------------------------------------------------------
def _merge(config: ExperimentConfig, summaries: List[dict],
           timeline_dict) -> ParallelRun:
    workers = len(summaries)
    shared = {s["shared_fired"] for s in summaries}
    if len(shared) != 1:
        raise SimulationError(
            f"workers disagree on shared orchestration events "
            f"({sorted(shared)}); the runs diverged")
    # Rank-0 (orchestration) events fire once *per worker*; the serial
    # engine fired each exactly once.
    events_processed = (sum(s["events_processed"] for s in summaries)
                        - (workers - 1) * shared.pop())
    end_time = summaries[0]["now"]

    metrics = merge_worker_metrics([s["metrics"] for s in summaries],
                                   warmup=config.warmup,
                                   end_time=end_time)
    telemetry: Dict[str, int] = {}
    for s in summaries:
        for key, value in s["telemetry"].items():
            telemetry[key] = telemetry.get(key, 0) + value
    max_queue_depth = max(s["max_queue_depth"] for s in summaries)
    ledger_rows = [row for s in summaries for row in s["ledger_rows"]]

    byzantine: set = set()
    for s in summaries:
        byzantine.update(s["byzantine"])
    safety_ok = _merge_safety(config, summaries)
    failures = _merge_liveness(summaries, timeline_dict)
    report = InvariantReport(
        safety_ok=safety_ok,
        liveness_ok=not failures,
        liveness_failures=tuple(failures),
        byzantine_excluded=tuple(sorted(byzantine, key=str)),
    )

    result = ExperimentResult(
        protocol=config.protocol,
        num_clusters=config.num_clusters,
        replicas_per_cluster=config.replicas_per_cluster,
        batch_size=config.batch_size,
        throughput_txn_s=metrics.throughput_txn_s(),
        avg_latency_s=metrics.avg_latency_s(),
        p50_latency_s=metrics.p50_latency_s(),
        completed_txns=metrics.completed_txns,
        duration=end_time,
        local_messages=metrics.local_messages,
        global_messages=metrics.global_messages,
        local_bytes=metrics.local_bytes,
        global_bytes=metrics.global_bytes,
        safety_ok=report.safety_ok,
        p95_latency_s=metrics.p95_latency_s(),
        p99_latency_s=metrics.p99_latency_s(),
        submitted_txns=metrics.submitted_txns,
        measured_submitted_txns=metrics.measured_submitted_txns,
        offered_load_txn_s=metrics.offered_load_txn_s(),
        liveness_ok=report.liveness_ok,
        traffic=(traffic_summary(metrics, config.traffic)
                 if config.traffic is not None else None),
    )
    instrumentation: Optional[Instrumentation] = None
    if config.instrument:
        # Fold worker hubs in worker order; merge() re-sorts events by
        # their composite tie keys, so the result is independent of
        # fold order anyway.
        instrumentation = Instrumentation(None)
        for s in summaries:
            instrumentation.merge(s["instrumentation"])

    digest = digest_from_parts(result, events_processed, ledger_rows)
    return ParallelRun(
        result=result,
        digest=digest,
        events_processed=events_processed,
        max_queue_depth=max_queue_depth,
        telemetry=telemetry,
        invariants=report,
        metrics=metrics,
        workers=workers,
        lookahead=0.0,
        windows=0,
        instrumentation=instrumentation,
    )


def _merge_safety(config: ExperimentConfig,
                  summaries: List[dict]) -> bool:
    """Replay :meth:`Deployment.check_safety` from worker shares."""
    if config.protocol == "hotstuff":
        alive = sum(len(s["hotstuff"]) for s in summaries)
    else:
        alive = sum(len(s["chains"]) for s in summaries)
    if alive < 2:
        return True
    for s in summaries:
        if s["verify_errors"]:
            raise TamperedLedgerError(s["verify_errors"][0])
    if config.protocol == "hotstuff":
        slots: Dict[tuple, tuple] = {}
        for s in summaries:
            for blocks in s["hotstuff"].values():
                for cluster_id, round_id, txns in blocks:
                    txns = tuple(txns)
                    seen = slots.setdefault((cluster_id, round_id), txns)
                    if seen != txns:
                        return False
        return True
    chains = [chain for s in summaries for chain in s["chains"].values()]
    # Any maximal chain works as the reference: if two maximal chains
    # differ the check fails for either choice, and if they agree the
    # choice is irrelevant.
    reference = max(chains, key=len)
    return all(chain == reference[:len(chain)] for chain in chains)


def _merge_liveness(summaries: List[dict], timeline_dict) -> List[str]:
    """Replay :meth:`FaultTimeline.liveness_failures` from worker
    shares: each worker snapshots the heights of *its* replicas at the
    (identical) activation instants, so summing per-index snapshots
    reconstructs the deployment-wide totals."""
    if timeline_dict is None:
        return []
    timeline = FaultTimeline.from_dict(timeline_dict)
    final = sum(s["final_height"] for s in summaries)
    activated: Dict[int, Tuple[float, int]] = {}
    deactivated: Dict[int, Tuple[float, int]] = {}
    for s in summaries:
        for index, (when, height) in s["activated"].items():
            prev = activated.get(index)
            activated[index] = (when,
                                (prev[1] if prev else 0) + height)
        for index, (when, height) in s["deactivated"].items():
            prev = deactivated.get(index)
            deactivated[index] = (when,
                                  (prev[1] if prev else 0) + height)
    failures: List[str] = []
    for index, fault in enumerate(timeline.faults):
        if index not in activated or not fault.expect_recovery:
            continue
        if fault.until is not None:
            if index not in deactivated:
                continue  # window still open when the run ended
            when, height = deactivated[index]
            what = "after its window closed"
        else:
            when, height = activated[index]
            what = "after it activated"
        if final <= height:
            failures.append(
                f"fault {fault.name!r}: no ledger progress {what} "
                f"(t={when:.3f}s, total height stuck at {height})")
    return failures
