"""Benchmark harness: deployments, metrics, failure scenarios, reports."""

from .deployment import (
    PROTOCOLS,
    Deployment,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from .charts import ascii_chart, bar_chart
from .metrics import Metrics
from .reporting import format_figure_series, format_table, summarize_results
from .scenarios import SCENARIOS, apply_scenario
from .tracing import MessageTracer, TraceEvent

__all__ = [
    "PROTOCOLS",
    "Deployment",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "Metrics",
    "format_figure_series",
    "format_table",
    "summarize_results",
    "SCENARIOS",
    "apply_scenario",
    "ascii_chart",
    "bar_chart",
    "MessageTracer",
    "TraceEvent",
]
