"""Experiment metrics.

Collects exactly what the paper reports:

* **throughput** — client-acknowledged transactions per second over the
  measurement window (the run minus its warmup, mirroring §4's 60 s
  warmup + 120 s measurement),
* **latency** — average and p50/p95/p99 client-observed end-to-end
  batch latency (tail quantiles come from a streaming log-bucket
  histogram, so memory stays O(1) in the sample count),
* **message and byte counts** — split into local (intra-region) and
  global (inter-region) traffic per message type, which is the data
  behind the Table 2 complexity comparison.

One :class:`Metrics` instance is shared by every node of a deployment
and attached to the network as a send observer.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple  # noqa: F401 (Tuple used)

from ..types import NodeId
from .instrumentation import LatencyHistogram


class Metrics:
    """Shared metrics sink for one experiment run."""

    def __init__(self, warmup: float = 0.0):
        self._warmup = warmup
        self._end_time: Optional[float] = None

        # Client-side accounting.
        self._submitted_txns = 0
        self._measured_submitted_txns = 0
        self._completed_txns = 0
        self._measured_completed_txns = 0
        self._latencies: List[float] = []
        self._latency_histogram = LatencyHistogram()
        self._completions: List[Tuple[float, int]] = []

        # Open-loop traffic accounting (zero on closed-loop runs).
        self._offered_txns = 0
        self._measured_offered_txns = 0
        self._rejected_txns = 0
        self._measured_rejected_txns = 0
        self._abandoned_txns = 0
        self._measured_abandoned_txns = 0
        self._retried_batches = 0
        self._measured_retried_batches = 0

        # Replica-side accounting.
        self._executed_txns: Dict[NodeId, int] = defaultdict(int)
        self._rounds: Dict[NodeId, int] = defaultdict(int)

        # Network accounting: type -> (count, bytes), split by locality.
        self._local_msgs: Dict[str, int] = defaultdict(int)
        self._global_msgs: Dict[str, int] = defaultdict(int)
        self._local_bytes = 0
        self._global_bytes = 0
        # Optional region map enabling per-region-pair byte accounting.
        self._region_of: Dict[NodeId, str] = {}
        self._pair_bytes: Dict[Tuple[str, str], int] = defaultdict(int)

    # ------------------------------------------------------------------
    # Recording interface (called by clients, replicas, the network)
    # ------------------------------------------------------------------
    @property
    def warmup(self) -> float:
        """Warmup horizon; events before it are excluded from rates."""
        return self._warmup

    def record_submitted(self, client: NodeId, txns: int,
                         now: float) -> None:
        """A client sent a batch of ``txns`` transactions."""
        self._submitted_txns += txns
        if now >= self._warmup:
            self._measured_submitted_txns += txns

    def record_completed(self, client: NodeId, txns: int, latency: float,
                         now: float) -> None:
        """A client's batch was acknowledged by a reply quorum."""
        self._completed_txns += txns
        self._completions.append((now, txns))
        if now >= self._warmup:
            self._measured_completed_txns += txns
            self._latencies.append(latency)
            self._latency_histogram.record(latency)

    def record_offered(self, client: NodeId, txns: int,
                       now: float) -> None:
        """An open-loop source saw ``txns`` arrivals (pre-admission)."""
        self._offered_txns += txns
        if now >= self._warmup:
            self._measured_offered_txns += txns

    def record_rejected(self, client: NodeId, txns: int,
                        now: float) -> None:
        """Arrivals turned away by admission control."""
        self._rejected_txns += txns
        if now >= self._warmup:
            self._measured_rejected_txns += txns

    def record_abandoned(self, client: NodeId, txns: int,
                         now: float) -> None:
        """In-flight transactions given up after the retry budget."""
        self._abandoned_txns += txns
        if now >= self._warmup:
            self._measured_abandoned_txns += txns

    def record_retried(self, client: NodeId, batches: int,
                       now: float) -> None:
        """Request batches re-sent after a deadline timeout."""
        self._retried_batches += batches
        if now >= self._warmup:
            self._measured_retried_batches += batches

    def record_executed(self, replica: NodeId, txns: int,
                        now: float) -> None:
        """A replica executed a batch."""
        self._executed_txns[replica] += txns

    def record_round(self, replica: NodeId, round_id: int,
                     now: float) -> None:
        """A replica completed a full GeoBFT round."""
        self._rounds[replica] += 1

    def set_region_map(self, region_of: Dict[NodeId, str]) -> None:
        """Enable per-region-pair accounting (used by traffic analysis)."""
        self._region_of = dict(region_of)

    def network_observer(self, src: NodeId, dst: NodeId, message,
                         size: int, is_local: bool) -> None:
        """Network send hook (attach via ``network.add_observer``)."""
        kind = type(message).__name__
        if is_local:
            self._local_msgs[kind] += 1
            self._local_bytes += size
        else:
            self._global_msgs[kind] += 1
            self._global_bytes += size
        if self._region_of:
            src_region = self._region_of.get(src)
            dst_region = self._region_of.get(dst)
            if src_region is not None and dst_region is not None:
                self._pair_bytes[(src_region, dst_region)] += size

    def network_observer_group(self, src: NodeId, dsts, message,
                               size: int, is_local: bool) -> None:
        """Batched variant of :meth:`network_observer` for multicast
        destination groups — identical totals, one call per group."""
        kind = type(message).__name__
        n = len(dsts)
        if is_local:
            self._local_msgs[kind] += n
            self._local_bytes += size * n
        else:
            self._global_msgs[kind] += n
            self._global_bytes += size * n
        region_of = self._region_of
        if region_of:
            src_region = region_of.get(src)
            if src_region is not None:
                pair_bytes = self._pair_bytes
                for dst in dsts:
                    dst_region = region_of.get(dst)
                    if dst_region is not None:
                        pair_bytes[(src_region, dst_region)] += size

    def pair_bytes(self) -> Dict[Tuple[str, str], int]:
        """Bytes sent per (source region, destination region)."""
        return dict(self._pair_bytes)

    def finish(self, now: float) -> None:
        """Freeze the measurement window at ``now``."""
        self._end_time = now

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def measurement_window(self) -> float:
        """Length of the measured interval (post-warmup)."""
        if self._end_time is None or self._end_time <= self._warmup:
            return 0.0
        return self._end_time - self._warmup

    def throughput_txn_s(self) -> float:
        """Client-acknowledged transactions per second, post-warmup."""
        window = self.measurement_window()
        if window <= 0:
            return 0.0
        return self._measured_completed_txns / window

    def avg_latency_s(self) -> float:
        """Mean client batch latency over the measured interval."""
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def p50_latency_s(self) -> float:
        """Median client batch latency (midpoint-interpolated)."""
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    def p95_latency_s(self) -> float:
        """95th-percentile client batch latency (histogram-backed)."""
        return self._latency_histogram.quantile(0.95)

    def p99_latency_s(self) -> float:
        """99th-percentile client batch latency (histogram-backed)."""
        return self._latency_histogram.quantile(0.99)

    def latency_histogram(self) -> LatencyHistogram:
        """The streaming histogram behind the tail quantiles."""
        return self._latency_histogram

    def offered_load_txn_s(self) -> float:
        """Post-warmup submitted transactions per second."""
        window = self.measurement_window()
        if window <= 0:
            return 0.0
        return self._measured_submitted_txns / window

    @property
    def completed_txns(self) -> int:
        """All client-acknowledged transactions (warmup included)."""
        return self._completed_txns

    @property
    def submitted_txns(self) -> int:
        """All submitted transactions."""
        return self._submitted_txns

    @property
    def measured_submitted_txns(self) -> int:
        """Transactions submitted after the warmup horizon."""
        return self._measured_submitted_txns

    @property
    def measured_offered_txns(self) -> int:
        """Open-loop arrivals after the warmup horizon."""
        return self._measured_offered_txns

    @property
    def measured_rejected_txns(self) -> int:
        """Admission-rejected arrivals after the warmup horizon."""
        return self._measured_rejected_txns

    @property
    def measured_abandoned_txns(self) -> int:
        """Abandoned transactions after the warmup horizon."""
        return self._measured_abandoned_txns

    @property
    def measured_retried_batches(self) -> int:
        """Retried request batches after the warmup horizon."""
        return self._measured_retried_batches

    def executed_txns(self, replica: NodeId) -> int:
        """Transactions executed at one replica."""
        return self._executed_txns.get(replica, 0)

    def total_executed_txns(self) -> int:
        """Transactions executed summed over all replicas."""
        return sum(self._executed_txns.values())

    def message_counts(self) -> Dict[str, Dict[str, int]]:
        """``{type: {"local": n, "global": n}}`` for all traffic."""
        kinds = set(self._local_msgs) | set(self._global_msgs)
        return {
            kind: {
                "local": self._local_msgs.get(kind, 0),
                "global": self._global_msgs.get(kind, 0),
            }
            for kind in sorted(kinds)
        }

    @property
    def local_messages(self) -> int:
        """Total intra-region messages."""
        return sum(self._local_msgs.values())

    @property
    def global_messages(self) -> int:
        """Total inter-region messages."""
        return sum(self._global_msgs.values())

    @property
    def local_bytes(self) -> int:
        """Total intra-region bytes."""
        return self._local_bytes

    @property
    def global_bytes(self) -> int:
        """Total inter-region bytes."""
        return self._global_bytes


class WorkerMetrics(Metrics):
    """Metrics sink for one parallel worker.

    Identical recording behaviour, plus a completion log tagging every
    sample with ``(time, cluster, per-worker index)`` — the key that
    lets :func:`merge_worker_metrics` interleave worker streams back
    into the serial engine's completion order (clients of one cluster
    run in exactly one worker, so within an equal ``(time, cluster)``
    the per-worker index *is* serial order).
    """

    def __init__(self, warmup: float = 0.0):
        super().__init__(warmup)
        #: (now, client cluster, per-worker index, txns, latency)
        self.completion_log: List[Tuple[float, int, int, int, float]] = []

    def record_completed(self, client: NodeId, txns: int, latency: float,
                         now: float) -> None:
        self.completion_log.append(
            (now, client.cluster, len(self.completion_log), txns, latency))
        super().record_completed(client, txns, latency, now)


def merge_worker_metrics(parts: List[WorkerMetrics], warmup: float,
                         end_time: float) -> Metrics:
    """Fold per-worker metric sinks into one deployment-wide sink.

    Everything order-insensitive (integer counters, per-kind message
    maps, per-replica dicts — disjoint across workers) is summed.  The
    completion stream is *replayed* in serial order — merged by
    ``(time, cluster, index)`` — because the mean latency is a float
    sum and float addition is order-sensitive: replaying reproduces the
    serial engine's accumulation order bit-for-bit, which the digest
    parity tests require.
    """
    merged = Metrics(warmup=warmup)
    completions: List[Tuple[float, int, int, int, float]] = []
    for part in parts:
        completions.extend(part.completion_log)
        merged._submitted_txns += part._submitted_txns
        merged._measured_submitted_txns += part._measured_submitted_txns
        merged._offered_txns += part._offered_txns
        merged._measured_offered_txns += part._measured_offered_txns
        merged._rejected_txns += part._rejected_txns
        merged._measured_rejected_txns += part._measured_rejected_txns
        merged._abandoned_txns += part._abandoned_txns
        merged._measured_abandoned_txns += part._measured_abandoned_txns
        merged._retried_batches += part._retried_batches
        merged._measured_retried_batches += part._measured_retried_batches
        for node, count in part._executed_txns.items():
            merged._executed_txns[node] += count
        for node, count in part._rounds.items():
            merged._rounds[node] += count
        for kind, count in part._local_msgs.items():
            merged._local_msgs[kind] += count
        for kind, count in part._global_msgs.items():
            merged._global_msgs[kind] += count
        merged._local_bytes += part._local_bytes
        merged._global_bytes += part._global_bytes
        for pair, count in part._pair_bytes.items():
            merged._pair_bytes[pair] += count
    completions.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
    for now, _cluster, _idx, txns, latency in completions:
        merged._completed_txns += txns
        merged._completions.append((now, txns))
        if now >= warmup:
            merged._measured_completed_txns += txns
            merged._latencies.append(latency)
            merged._latency_histogram.record(latency)
    merged._end_time = end_time
    return merged
