"""Deployment-wide observability: lifecycle spans, histograms, telemetry.

The paper's evaluation (§4) reasons about *where* a round's time goes —
local PBFT phases vs. inter-cluster global sharing vs. crypto CPU —
while :class:`~repro.bench.metrics.Metrics` only reports end-of-run
aggregates.  This module adds the missing per-stage accounting:

* :class:`Instrumentation` — a central hub protocol replicas emit typed
  *phase events* into (``proposed -> prepared -> committed -> shared ->
  ordered -> executed``, plus view-change and remote-view-change
  events).  The hub assembles per-round span trees with simulated-time
  durations and a per-remote-cluster global-share latency breakdown.
* :class:`LatencyHistogram` — a streaming fixed-log-bucket histogram
  (O(1) memory) behind the p50/p95/p99 figures in reports.
* Export to JSONL and to the Chrome ``trace_event`` format, loadable in
  ``chrome://tracing`` or Perfetto.

The hub is strictly an *observer*: it reads ``sim.now`` and appends to
host-side structures.  It never schedules events, charges CPU, or
consumes randomness, so a run's simulated results are byte-identical
with instrumentation enabled or disabled.  Disabled is represented by
``None`` — emission sites guard with ``if instr is not None`` so the
off path costs one attribute load and one comparison.

The parallel engine runs one :class:`WorkerInstrumentation` per worker
process: each records locally and stamps every event with the
``(post_time, parent_post, rank, k)`` composite tie key of the firing
simulator event; at run end the orchestrator folds the worker hubs
into one via :meth:`Instrumentation.merge` — first-seen marks by
per-key minimum (exact, since simulated time is nondecreasing),
histograms by exact bucket-wise :meth:`LatencyHistogram.merge`, events
re-sorted by their tie keys — so the merged hub's spans equal the
serial engine's.  A merged hub may also carry the parallel engine's
own telemetry (barrier waits, window widths, export volumes) as a
dedicated "engine" track in the Chrome trace export.
"""

from __future__ import annotations

import json
import math
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Canonical round lifecycle, in order.  ``shared``/``ordered`` only
#: occur in the geo-scale protocols (GeoBFT, Steward); span building
#: skips phases a protocol never emits.
LIFECYCLE = ("proposed", "prepared", "committed", "shared", "ordered",
             "executed")

#: Failure-handling events, exported as instants rather than spans.
#: ``fault_on``/``fault_off`` are emitted by the chaos engine
#: (:mod:`repro.net.chaos`) when a scheduled fault (de)activates; they
#: carry ``cluster = 0``, rendering on a dedicated "chaos" track.
EVENT_PHASES = ("view_change", "new_view", "drvc", "rvc_sent",
                "rvc_honored", "fault_on", "fault_off")

#: Sort key stamped on events emitted outside any firing simulator
#: event (deployment build time).  Sorts before every real tie key.
_PRE_RUN_KEY = (-1.0, -1.0, -1, -1)

#: Chrome-trace process id of the parallel engine's own telemetry
#: track (cluster pids are >= 0; 0 is the chaos track).
ENGINE_TRACK_PID = -1


@dataclass(frozen=True)
class PhaseEvent:
    """One typed lifecycle event emitted by a replica."""

    time: float
    phase: str
    node: object  # NodeId
    cluster: int
    round_id: int
    detail: object = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" detail={self.detail}" if self.detail is not None else ""
        return (f"[{self.time:10.6f}] {self.phase:<14} c{self.cluster} "
                f"r{self.round_id} @{self.node}{extra}")


class LatencyHistogram:
    """Streaming histogram with fixed logarithmic buckets.

    Memory is O(bucket count) regardless of sample count: each recorded
    value lands in the bucket whose geometric range contains it.
    Quantiles interpolate linearly inside the bucket and are clamped to
    the exact observed min/max, so the relative error of any quantile is
    bounded by the bucket growth factor (~19% with the default
    ``growth = 2 ** 0.25``), and p0/p100 are exact.

    The default geometry covers 1 µs .. ~10⁶ s, wide enough for both
    client latencies and consensus phase gaps; values at or below
    ``min_value`` share bucket 0.
    """

    __slots__ = ("_min_value", "_growth", "_log_growth", "_counts",
                 "count", "total", "min", "max")

    def __init__(self, min_value: float = 1e-6, growth: float = 2 ** 0.25,
                 buckets: int = 160):
        if min_value <= 0 or growth <= 1 or buckets < 2:
            raise ValueError("invalid histogram geometry")
        self._min_value = min_value
        self._growth = growth
        self._log_growth = math.log(growth)
        self._counts = [0] * buckets
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        if value <= self._min_value:
            return 0
        idx = 1 + int(math.log(value / self._min_value) / self._log_growth)
        last = len(self._counts) - 1
        return idx if idx < last else last

    def _bounds(self, index: int) -> Tuple[float, float]:
        if index == 0:
            return 0.0, self._min_value
        lo = self._min_value * self._growth ** (index - 1)
        return lo, lo * self._growth

    def record(self, value: float) -> None:
        """Add one sample (negative values clamp to zero)."""
        if value < 0:
            value = 0.0
        self._counts[self._index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        """Arithmetic mean of all samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1), interpolated in-bucket."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lo, hi = self._bounds(index)
                fraction = (target - cumulative) / bucket_count
                value = lo + (hi - lo) * max(0.0, fraction)
                return min(max(value, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def percentiles(self) -> Dict[str, float]:
        """The p50/p95/p99 triple reports print."""
        return {"p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same geometry) into this one."""
        if (other._min_value != self._min_value
                or other._growth != self._growth
                or len(other._counts) != len(self._counts)):
            raise ValueError("cannot merge histograms of different geometry")
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class Instrumentation:
    """Central observability hub for one deployment.

    Replicas call :meth:`phase` / :meth:`sample` / :meth:`count`;
    everything else here is read-side: span assembly, per-transition
    histograms, the global-share latency breakdown, and the two export
    formats.  All timestamps are *simulated* seconds read from the
    shared clock — the hub never writes to the simulation.
    """

    def __init__(self, sim, max_events: int = 500_000):
        self._sim = sim
        self._max_events = max_events
        self.events: List[PhaseEvent] = []
        self.dropped_events = 0
        self.warnings: List[str] = []
        self._warned: set = set()
        # (cluster, round) -> {lifecycle phase: first simulated time}.
        self._marks: Dict[Tuple[int, int], Dict[str, float]] = {}
        # (origin cluster, round) -> {receiving cluster: first recv time}.
        self._share_marks: Dict[Tuple[int, int], Dict[int, float]] = {}
        # Named sample streams (queue depths etc.) and event counters.
        self.samples: Dict[str, LatencyHistogram] = {}
        self.counters: Dict[str, int] = {}
        # Per-event composite tie keys, aligned with ``events``.  None
        # on serial hubs (fire order *is* emission order); worker hubs
        # populate it so merge() can restore the serial order.
        self._event_keys: Optional[List[tuple]] = None
        # Parallel-engine telemetry (see set_engine_track): one dict per
        # barrier window and one totals dict per worker.
        self.engine_windows: List[Dict[str, object]] = []
        self.engine_workers: List[Dict[str, object]] = []

    def __getstate__(self) -> dict:
        # Worker hubs are pickled back to the orchestrator at run end;
        # the simulator they observed holds unpicklable callbacks and is
        # never needed again (a shipped hub is read-only).
        state = self.__dict__.copy()
        state["_sim"] = None
        return state

    # ------------------------------------------------------------------
    # Write side (called from protocol code; must stay observation-only)
    # ------------------------------------------------------------------
    def phase(self, phase: str, node, cluster: int, round_id: int,
              detail=None) -> None:
        """Record one lifecycle event at the current simulated time."""
        now = self._sim.now
        if len(self.events) < self._max_events:
            self.events.append(PhaseEvent(now, phase, node, cluster,
                                          round_id, detail))
        else:
            self.dropped_events += 1
            self.warn_once("phase-events-full",
                           f"instrumentation event buffer full "
                           f"({self._max_events}); dropping phase events")
        if phase == "share_received":
            per_dst = self._share_marks.get((cluster, round_id))
            if per_dst is None:
                per_dst = {}
                self._share_marks[(cluster, round_id)] = per_dst
            if detail is not None and detail not in per_dst:
                per_dst[detail] = now
            return
        marks = self._marks.get((cluster, round_id))
        if marks is None:
            marks = {}
            self._marks[(cluster, round_id)] = marks
        if phase not in marks:
            marks[phase] = now

    def sample(self, name: str, value: float) -> None:
        """Record one sample into the named stream (e.g. queue depth)."""
        histogram = self.samples.get(name)
        if histogram is None:
            histogram = LatencyHistogram()
            self.samples[name] = histogram
        histogram.record(value)

    def count(self, name: str, delta: int = 1) -> None:
        """Bump a named event counter."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def warn_once(self, key: str, message: str) -> None:
        """Emit ``message`` (once per ``key``) to stderr and keep it."""
        if key in self._warned:
            return
        self._warned.add(key)
        self.warnings.append(message)
        print(f"[instrumentation] {message}", file=sys.stderr)

    # ------------------------------------------------------------------
    # Merge (parallel engine: fold per-worker hubs into one)
    # ------------------------------------------------------------------
    def merge(self, other: "Instrumentation") -> None:
        """Fold another hub's recordings from the *same run* into this.

        Deterministic and exact where the serial hub is exact:

        * first-seen marks merge by per-``(cluster, round, phase)``
          minimum — identical to serial first-seen, since simulated
          time never decreases;
        * per-destination share marks likewise;
        * sample histograms merge bucket-wise
          (:meth:`LatencyHistogram.merge`), counters sum;
        * events concatenate and, when tie keys are present (worker
          hubs), re-sort by ``(time, post_time, parent_post, rank, k)``
          — the engine's own composite order.  Keys minted by different
          workers never compare equal (disjoint ``k`` residues), and
          the sort is stable, so same-key events (several emissions
          from one firing event) keep their emission order.

        Merging an empty hub is a no-op.  Merging a keyed (worker) hub
        into an unkeyed one that already holds events is refused: their
        event streams cannot be interleaved deterministically.
        """
        if other.events:
            if other._event_keys is not None:
                if self._event_keys is None:
                    if self.events:
                        raise ValueError(
                            "cannot merge a keyed (worker) hub into an "
                            "unkeyed hub that already holds events")
                    self._event_keys = []
                other_keys = other._event_keys
            elif self._event_keys is not None:
                raise ValueError(
                    "cannot merge an unkeyed hub into a keyed (worker) "
                    "hub")
            else:
                other_keys = None
            self.events.extend(other.events)
            if self._event_keys is not None:
                self._event_keys.extend(other_keys)
                order = sorted(range(len(self.events)),
                               key=lambda i: (self.events[i].time,
                                              self._event_keys[i]))
                self.events = [self.events[i] for i in order]
                self._event_keys = [self._event_keys[i] for i in order]
        self.dropped_events += other.dropped_events
        for key in other._warned - self._warned:
            self._warned.add(key)
        for message in other.warnings:
            if message not in self.warnings:
                self.warnings.append(message)
        for span_key, other_marks in other._marks.items():
            marks = self._marks.setdefault(span_key, {})
            for phase, when in other_marks.items():
                if phase not in marks or when < marks[phase]:
                    marks[phase] = when
        for span_key, other_dsts in other._share_marks.items():
            per_dst = self._share_marks.setdefault(span_key, {})
            for dst, when in other_dsts.items():
                if dst not in per_dst or when < per_dst[dst]:
                    per_dst[dst] = when
        for name, histogram in other.samples.items():
            mine = self.samples.get(name)
            if mine is None:
                mine = LatencyHistogram()
                self.samples[name] = mine
            mine.merge(histogram)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def set_engine_track(self, windows: List[Dict[str, object]],
                         workers: List[Dict[str, object]]) -> None:
        """Attach the parallel engine's own telemetry to this hub.

        ``windows`` is one dict per (worker, barrier window) with keys
        ``worker``, ``window``, ``start``, ``end`` (simulated seconds),
        ``busy_s``, ``wait_s`` (host seconds), ``events``, ``exports``,
        ``export_events``, ``imports``.  ``workers`` is one totals dict
        per worker (see ``EngineReport`` in :mod:`repro.bench.parallel`).
        Rendered as the "engine" process in :meth:`chrome_trace` and as
        ``engine_window`` / ``engine_worker`` records in
        :meth:`export_jsonl`.
        """
        self.engine_windows = list(windows)
        self.engine_workers = list(workers)

    # ------------------------------------------------------------------
    # Read side: spans and histograms
    # ------------------------------------------------------------------
    def rounds(self) -> List[Tuple[int, int]]:
        """All (cluster, round) pairs with at least one lifecycle mark."""
        return sorted(self._marks)

    def round_span(self, cluster: int, round_id: int) -> Dict[str, float]:
        """First-seen time of each lifecycle phase of one round."""
        return dict(self._marks.get((cluster, round_id), {}))

    def committed_rounds(self) -> int:
        """Rounds that reached the ``committed`` phase."""
        return sum(1 for marks in self._marks.values()
                   if "committed" in marks)

    def phase_durations(self) -> Dict[str, LatencyHistogram]:
        """Histogram of each observed lifecycle transition's duration.

        Keys are ``"a->b"`` for consecutive *present* phases in
        :data:`LIFECYCLE` order, plus ``"proposed->executed"`` for the
        whole round when both endpoints exist.
        """
        out: Dict[str, LatencyHistogram] = {}
        for marks in self._marks.values():
            present = [(p, marks[p]) for p in LIFECYCLE if p in marks]
            for (phase_a, time_a), (phase_b, time_b) in zip(present,
                                                            present[1:]):
                key = f"{phase_a}->{phase_b}"
                histogram = out.get(key)
                if histogram is None:
                    histogram = LatencyHistogram()
                    out[key] = histogram
                histogram.record(time_b - time_a)
            if "proposed" in marks and "executed" in marks:
                key = "proposed->executed"
                histogram = out.get(key)
                if histogram is None:
                    histogram = LatencyHistogram()
                    out[key] = histogram
                histogram.record(marks["executed"] - marks["proposed"])
        return out

    def share_latency(self) -> Dict[Tuple[int, int], LatencyHistogram]:
        """Global-share latency per (origin cluster, receiving cluster).

        Measured from the origin's ``shared`` mark (falling back to
        ``committed``) to the first replica of the receiving cluster
        accepting the share — the paper's inter-cluster sharing cost
        (§2.3) per remote destination.
        """
        out: Dict[Tuple[int, int], LatencyHistogram] = {}
        for (cluster, round_id), per_dst in self._share_marks.items():
            marks = self._marks.get((cluster, round_id), {})
            base = marks.get("shared", marks.get("committed"))
            if base is None:
                continue
            for dst_cluster, received_at in per_dst.items():
                key = (cluster, dst_cluster)
                histogram = out.get(key)
                if histogram is None:
                    histogram = LatencyHistogram()
                    out[key] = histogram
                histogram.record(received_at - base)
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per event; returns the event count.

        Phase events come first (one per line, ``t``/``phase``/``node``/
        ``cluster``/``round``/``detail``); a merged parallel hub appends
        its engine telemetry as ``{"engine_window": {...}}`` and
        ``{"engine_worker": {...}}`` lines, so ``repro trace --summary``
        can rebuild both the phase tables and the engine report without
        re-running the experiment.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps({
                    "t": event.time,
                    "phase": event.phase,
                    "node": str(event.node),
                    "cluster": event.cluster,
                    "round": event.round_id,
                    "detail": (event.detail
                               if isinstance(event.detail, (int, float,
                                                            str, bool))
                               or event.detail is None
                               else str(event.detail)),
                }) + "\n")
            for window in self.engine_windows:
                fh.write(json.dumps({"engine_window": window}) + "\n")
            for worker in self.engine_workers:
                fh.write(json.dumps({"engine_worker": worker}) + "\n")
        return len(self.events)

    def chrome_trace(self) -> Dict[str, object]:
        """The run as a Chrome ``trace_event`` document.

        One *process* per cluster, one *thread* per round: every
        lifecycle transition becomes a complete ("X") event whose
        duration is the simulated gap between the two phases, so a round
        renders as a contiguous span stack in Perfetto.  View-change and
        remote-view-change events render as instants.  Timestamps are
        microseconds of simulated time.
        """
        trace_events: List[Dict[str, object]] = []
        clusters = sorted({c for c, _ in self._marks}
                          | {e.cluster for e in self.events})
        for cluster in clusters:
            # Cluster ids are 1-based; pid 0 is the chaos engine's track.
            label = f"cluster {cluster}" if cluster else "chaos"
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": cluster,
                "args": {"name": label},
            })
        for (cluster, round_id), marks in sorted(self._marks.items()):
            present = [(p, marks[p]) for p in LIFECYCLE if p in marks]
            for (phase_a, time_a), (phase_b, time_b) in zip(present,
                                                            present[1:]):
                trace_events.append({
                    "name": phase_b,
                    "cat": "lifecycle",
                    "ph": "X",
                    "ts": round(time_a * 1e6, 3),
                    "dur": round((time_b - time_a) * 1e6, 3),
                    "pid": cluster,
                    "tid": round_id,
                    "args": {"round": round_id, "from": phase_a},
                })
        for (cluster, round_id), per_dst in sorted(self._share_marks.items()):
            marks = self._marks.get((cluster, round_id), {})
            base = marks.get("shared", marks.get("committed"))
            if base is None:
                continue
            for dst_cluster, received_at in sorted(per_dst.items()):
                trace_events.append({
                    "name": f"share->c{dst_cluster}",
                    "cat": "global-share",
                    "ph": "X",
                    "ts": round(base * 1e6, 3),
                    "dur": round((received_at - base) * 1e6, 3),
                    "pid": cluster,
                    "tid": round_id,
                    "args": {"round": round_id, "to_cluster": dst_cluster},
                })
        for event in self.events:
            if event.phase not in EVENT_PHASES:
                continue
            args: Dict[str, object] = {"node": str(event.node),
                                       "round": event.round_id}
            if event.detail is not None:
                args["detail"] = str(event.detail)
            trace_events.append({
                "name": event.phase,
                "cat": ("chaos" if event.phase.startswith("fault_")
                        else "failure-handling"),
                "ph": "i",
                "s": "p",
                "ts": round(event.time * 1e6, 3),
                "pid": event.cluster,
                "tid": 0,
                "args": args,
            })
        if self.engine_windows or self.engine_workers:
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": ENGINE_TRACK_PID,
                "args": {"name": "engine"},
            })
            for worker in self.engine_workers:
                clusters = worker.get("clusters", ())
                label = (f"worker {worker['worker']} (clusters "
                         f"{', '.join(str(c) for c in clusters)})")
                trace_events.append({
                    "name": "thread_name", "ph": "M",
                    "pid": ENGINE_TRACK_PID, "tid": worker["worker"],
                    "args": {"name": label},
                })
            for window in self.engine_windows:
                start = window["start"]
                trace_events.append({
                    "name": f"window {window['window']}",
                    "cat": "engine",
                    "ph": "X",
                    "ts": round(start * 1e6, 3),
                    "dur": round((window["end"] - start) * 1e6, 3),
                    "pid": ENGINE_TRACK_PID,
                    "tid": window["worker"],
                    "args": {key: window[key]
                             for key in ("busy_s", "wait_s", "events",
                                         "exports", "export_events",
                                         "imports") if key in window},
                })
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path: str) -> int:
        """Write the Chrome trace JSON; returns the trace-event count."""
        document = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
        return len(document["traceEvents"])

    def summary(self) -> str:
        """One-paragraph plain-text digest of what was recorded."""
        per_phase: Dict[str, int] = {}
        for event in self.events:
            per_phase[event.phase] = per_phase.get(event.phase, 0) + 1
        lines = [f"{len(self.events)} phase events over "
                 f"{len(self._marks)} (cluster, round) spans, "
                 f"{self.committed_rounds()} committed rounds"]
        for phase, count in sorted(per_phase.items()):
            lines.append(f"  {phase}: {count}")
        if self.dropped_events:
            lines.append(f"  (dropped {self.dropped_events} events)")
        return "\n".join(lines)


class WorkerInstrumentation(Instrumentation):
    """Per-worker hub for the parallel engine.

    Behaves exactly like :class:`Instrumentation` for the worker's own
    events, with two parallel-specific twists:

    * every recorded event is stamped with the firing simulator event's
      composite tie key (``WorkerSimulation.fire_tie``), giving
      :meth:`Instrumentation.merge` a deterministic total order that
      matches the engine's own;
    * rank-0 (orchestration) emissions — chaos ``fault_on``/``fault_off``
      transitions and their counters — fire once *per worker* because
      every worker installs the full timeline; only worker 0 records
      them, mirroring how the orchestrator subtracts duplicated rank-0
      events from ``events_processed``.

    One deliberate divergence from serial: samples that read *global*
    simulator state (``sim.pending_events``) see only this worker's
    queue, so the merged histogram reflects per-worker depths.  See
    docs/observability.md.
    """

    def __init__(self, sim, worker_index: int,
                 max_events: int = 500_000):
        super().__init__(sim, max_events=max_events)
        self.worker_index = worker_index
        self._event_keys = []

    def _suppress_shared(self) -> bool:
        # Rank-0 chains replay identically in every worker; worker 0
        # is the canonical recorder.
        if self.worker_index == 0:
            return False
        tie = self._sim.fire_tie
        return tie is not None and tie[2] == 0

    def phase(self, phase: str, node, cluster: int, round_id: int,
              detail=None) -> None:
        if self._suppress_shared():
            return
        before = len(self.events)
        super().phase(phase, node, cluster, round_id, detail)
        if len(self.events) > before:
            tie = self._sim.fire_tie
            self._event_keys.append(_PRE_RUN_KEY if tie is None else tie)

    def count(self, name: str, delta: int = 1) -> None:
        if self._suppress_shared():
            return
        super().count(name, delta)
