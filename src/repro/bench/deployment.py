"""Deployment builder: turn an experiment config into a running system.

This module is the reproduction's stand-in for the paper's testbed
orchestration: it places ``z`` clusters of ``n`` replicas into the
Table 1 regions (in the paper's deployment order), wires up the network,
PKI, metrics, clients, and the chosen protocol, and runs the simulation
for a configured duration.

Protocol placement mirrors §4:

* **PBFT / Zyzzyva** — one flat group; the primary is the first replica
  of the first region (Oregon, the best-connected region).
* **HotStuff** — one flat group; every replica leads its own instance;
  clients submit to a home replica in their own region.
* **Steward** — clusters; the primary cluster is Oregon; replicas run
  with an inflated crypto cost model (RSA-era threshold primitives).
* **GeoBFT** — clusters; each cluster runs its own primary; clients
  talk only to their local cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..consensus.hotstuff import HotStuffReplica
from ..consensus.pbft import PbftConfig, PbftReplica
from ..consensus.steward import StewardReplica
from ..consensus.zyzzyva import ZyzzyvaClient, ZyzzyvaReplica
from ..core.config import GeoBftConfig
from ..core.geobft import GeoBftReplica
from ..crypto.costs import CryptoCostModel
from ..crypto.signatures import KeyRegistry, VerificationCache
from ..errors import ConfigurationError
from ..net.network import Network
from ..net.simulator import Simulation
from ..net.topology import Topology
from ..types import ClusterId, NodeId, client_id, max_faulty, replica_id
from ..workload.client import QuorumClient
from ..workload.traffic import (OpenLoopSource, TrafficSpec, split_users,
                                traffic_summary)
from ..workload.ycsb import YcsbWorkload
from ..crypto.digests import encoding_cache_stats
from .instrumentation import Instrumentation
from .metrics import Metrics

PROTOCOLS = ("geobft", "pbft", "zyzzyva", "hotstuff", "steward")

#: Version tag stamped on every serialized result row, so ad-hoc
#: ``repro run --json`` output and sweep-store records share one
#: versioned schema.  Bump when the row's fields change shape.
RESULT_SCHEMA = "repro-result/1"


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one data point of the evaluation."""

    protocol: str = "geobft"
    num_clusters: int = 4
    replicas_per_cluster: int = 7
    #: Optional per-cluster sizes (length num_clusters), overriding
    #: replicas_per_cluster.  GeoBFT and Steward support heterogeneous
    #: clusters (§2.5); the flat protocols simply get the union.
    cluster_sizes: Optional[List[int]] = None
    batch_size: int = 100
    clients_per_cluster: int = 4
    client_outstanding: int = 8
    duration: float = 10.0
    warmup: float = 2.0
    seed: int = 1
    record_count: int = 10_000
    write_fraction: float = 1.0
    distribution: str = "zipfian"
    pipeline_depth: int = 32
    checkpoint_interval: int = 6
    view_change_timeout: float = 2.0
    client_retry_timeout: float = 6.0
    zyzzyva_spec_timeout: float = 0.8
    steward_crypto_factor: float = 50.0
    hotstuff_pipeline: int = 16
    cores: int = 4
    #: Cheap structural signature checks (identical simulated-time cost
    #: model, no host-CPU HMAC work) — used by benchmarks; correctness
    #: tests run with real crypto.
    fast_crypto: bool = False
    geobft: GeoBftConfig = field(default_factory=GeoBftConfig)
    costs: CryptoCostModel = field(default_factory=CryptoCostModel)
    topology: Optional[Topology] = None
    max_batches_per_client: Optional[int] = None
    #: Enable the observability hub (consensus-phase spans, queue
    #: samples, exports).  Observation-only: simulated results are
    #: byte-identical with this on or off.
    instrument: bool = False
    #: Worker processes for the parallel backend (1 = serial engine).
    #: Clusters are partitioned contiguously over ``min(workers,
    #: num_clusters)`` processes; configurations the parallel backend
    #: cannot run bit-identically (single cluster, zero-delay
    #: topologies, stochastic fault timelines) fall back to the serial
    #: engine.  Instrumented runs are parallel-native: per-worker hubs
    #: are merged deterministically at run end.  The deployment digest
    #: is identical either way.
    workers: int = 1
    #: Open-loop aggregate traffic: a :class:`TrafficSpec` (or its
    #: ``"process:key=value,..."`` string / dict form) replaces the
    #: closed-loop ``clients_per_cluster`` clients with one
    #: :class:`OpenLoopSource` per region, modeling ``spec.users``
    #: users in O(arrivals).  ``None`` (the default) keeps the
    #: closed-loop clients — and their byte-identical digests.
    traffic: Optional[TrafficSpec] = None

    def __post_init__(self) -> None:
        self.traffic = TrafficSpec.from_value(self.traffic)
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; expected {PROTOCOLS}"
            )
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.num_clusters < 1:
            raise ConfigurationError("num_clusters must be >= 1")
        if self.replicas_per_cluster < 4:
            raise ConfigurationError(
                "replicas_per_cluster must be >= 4 (n > 3f)"
            )
        if self.cluster_sizes is not None:
            if len(self.cluster_sizes) != self.num_clusters:
                raise ConfigurationError(
                    "cluster_sizes must list one size per cluster"
                )
            if any(size < 4 for size in self.cluster_sizes):
                raise ConfigurationError(
                    "every cluster needs >= 4 replicas (n > 3f)"
                )
        if self.warmup >= self.duration:
            raise ConfigurationError("warmup must be shorter than duration")

    def size_of_cluster(self, cluster: int) -> int:
        """Replica count of ``cluster`` (1-based)."""
        if self.cluster_sizes is not None:
            return self.cluster_sizes[cluster - 1]
        return self.replicas_per_cluster

    def resolved_topology(self) -> Topology:
        """The configured topology, defaulting to the paper's regions."""
        if self.topology is not None:
            return self.topology
        return Topology.paper(self.num_clusters)


@dataclass
class ExperimentResult:
    """Aggregated outcome of one run (one point in a figure)."""

    protocol: str
    num_clusters: int
    replicas_per_cluster: int
    batch_size: int
    throughput_txn_s: float
    avg_latency_s: float
    p50_latency_s: float
    completed_txns: int
    duration: float
    local_messages: int
    global_messages: int
    local_bytes: int
    global_bytes: int
    safety_ok: bool
    # Trailing defaults: populated from Metrics on every run (with or
    # without instrumentation), so result digests are trace-independent.
    p95_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    submitted_txns: int = 0
    measured_submitted_txns: int = 0
    offered_load_txn_s: float = 0.0
    #: Whether throughput resumed after every expected-recoverable fault
    #: window (always True when no fault timeline was installed).
    liveness_ok: bool = True
    #: Open-loop traffic block (modeled users, offered load, goodput,
    #: abandonment, retries) — ``None`` on closed-loop runs, and then
    #: omitted from ``to_dict``/digest payloads so every pre-traffic
    #: golden digest is unchanged.
    traffic: Optional[Dict[str, object]] = None

    def describe(self) -> str:
        """One human-readable line, roughly a figure data point."""
        liveness = "" if self.liveness_ok else "  liveness=STALLED"
        line = (
            f"{self.protocol:>9}  z={self.num_clusters} "
            f"n={self.replicas_per_cluster} batch={self.batch_size}  "
            f"tput={self.throughput_txn_s:>10.0f} txn/s  "
            f"lat={self.avg_latency_s:7.3f} s  "
            f"safety={'ok' if self.safety_ok else 'VIOLATED'}{liveness}"
        )
        if self.traffic is not None:
            t = self.traffic
            line += (
                f"\n  open-loop: {t['modeled_users']:,} users "
                f"({t['process']})  offered {t['offered_txn_s']:,.0f} "
                f"txn/s  goodput {t['goodput_txn_s']:,.0f} txn/s  "
                f"rejected {t['rejected_txns']:,}  "
                f"abandoned {t['abandoned_txns']:,}  "
                f"retried {t['retried_batches']:,} batches"
            )
        return line

    def to_dict(self) -> Dict[str, object]:
        """The result row as a plain dict (machine-readable results).

        Carries the :data:`RESULT_SCHEMA` version tag so store records
        and ad-hoc ``--json`` output identify their shape; the digest
        computation uses the raw ``asdict`` form and is unaffected.
        """
        from dataclasses import asdict
        row: Dict[str, object] = {"schema": RESULT_SCHEMA}
        row.update(asdict(self))
        if row.get("traffic") is None:
            del row["traffic"]
        return row

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result row from :meth:`to_dict` output.

        Rejects rows from a different (future) schema version rather
        than mis-parsing them.
        """
        schema = data.get("schema", RESULT_SCHEMA)
        if schema != RESULT_SCHEMA:
            raise ConfigurationError(
                f"result row has schema {schema!r}; this version reads "
                f"{RESULT_SCHEMA!r}")
        fields = {k: v for k, v in data.items() if k != "schema"}
        return cls(**fields)  # type: ignore[arg-type]

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The result row as JSON (what ``repro run --json`` emits)."""
        import json
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class _FastKeyRegistry(KeyRegistry):
    """Structurally checked signatures for benchmark runs.

    ``sign`` returns a constant tag and ``verify`` only checks that the
    claimed signer is registered.  Simulated-time crypto *costs* are
    unchanged (they come from the cost model), so performance results
    are identical — only host CPU is saved.  Never use where tampering
    is part of the test.
    """

    _TAG = b"fast-signature"

    def register(self, node):
        signer = super().register(node)
        registry = self

        class _FastSigner:
            __slots__ = ("_node",)

            def __init__(self, n):
                self._node = n

            @property
            def node(self):
                return self._node

            def sign(self, payload):
                from ..crypto.signatures import Signature
                return Signature(self._node, registry._TAG)

        return _FastSigner(signer.node)

    def verify(self, payload, signature) -> bool:
        return (signature.tag == self._TAG
                and self.is_registered(signature.signer))


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of the post-run safety+liveness audit.

    * ``safety_ok`` — no two honest (non-crashed, non-Byzantine)
      replicas executed different requests in the same round.
    * ``liveness_ok`` — the ledgers made progress after every fault
      window that expected recovery (view change / remote view change
      actually fired); trivially true without a fault timeline.
    """

    safety_ok: bool
    liveness_ok: bool
    liveness_failures: tuple = ()
    byzantine_excluded: tuple = ()

    @property
    def ok(self) -> bool:
        """Both invariants held."""
        return self.safety_ok and self.liveness_ok

    def describe(self) -> str:
        """Short multi-line audit summary."""
        lines = [f"safety:   {'ok' if self.safety_ok else 'VIOLATED'}",
                 f"liveness: {'ok' if self.liveness_ok else 'STALLED'}"]
        for failure in self.liveness_failures:
            lines.append(f"  {failure}")
        if self.byzantine_excluded:
            excluded = ", ".join(str(n) for n in self.byzantine_excluded)
            lines.append(f"byzantine replicas excluded from the honest "
                         f"set: {excluded}")
        return "\n".join(lines)


class Deployment:
    """A built, runnable system: simulator, network, replicas, clients."""

    def __init__(self, config: ExperimentConfig, *,
                 _sim: Optional[Simulation] = None,
                 _metrics: Optional[Metrics] = None,
                 _instrumentation: Optional[Instrumentation] = None):
        # ``_sim``/``_metrics``/``_instrumentation`` let the parallel
        # backend's workers build an identical deployment on a
        # WorkerSimulation/WorkerMetrics/WorkerInstrumentation triple;
        # everything else about construction is shared, which is what
        # keeps worker-local state byte-identical to serial.
        self.config = config
        self.topology = config.resolved_topology()
        if len(self.topology.regions) < config.num_clusters:
            raise ConfigurationError(
                "topology has fewer regions than requested clusters"
            )
        self.sim = _sim if _sim is not None else Simulation(seed=config.seed)
        self.metrics = (_metrics if _metrics is not None
                        else Metrics(warmup=config.warmup))
        self.network = Network(self.sim, self.topology)
        self.network.add_observer(self.metrics.network_observer,
                                  self.metrics.network_observer_group)
        # Observability hub, or None (the zero-cost default): replicas
        # emit phase events into it; it only ever reads sim.now.
        if _instrumentation is not None:
            self.instrumentation: Optional[Instrumentation] = \
                _instrumentation
        else:
            self.instrumentation = (Instrumentation(self.sim)
                                    if config.instrument else None)
        # Encoding-cache counters are process-wide; snapshot them so this
        # run's delta can be reported.
        self._encoding_baseline = encoding_cache_stats().snapshot()
        # One verification memo for the whole deployment: replicas share
        # it through the registry (signatures) and their MAC
        # authenticators, so a certificate forwarded to n replicas is
        # HMAC-checked once on the host.  Purely a host-CPU cache —
        # simulated crypto delays are charged per replica regardless.
        self.verification_cache = VerificationCache()
        if config.fast_crypto:
            self.registry: KeyRegistry = _FastKeyRegistry(
                cache=self.verification_cache)
        else:
            self.registry = KeyRegistry(cache=self.verification_cache)

        self.cluster_members: Dict[ClusterId, List[NodeId]] = {}
        self.replicas: Dict[NodeId, object] = {}
        self.clients: List[object] = []
        #: Set by FaultTimeline.install(); consulted by check_invariants.
        self.timeline = None
        #: The last InvariantReport produced by run()/check_invariants().
        self.invariants: Optional[InvariantReport] = None
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _region_of(self, cluster: ClusterId) -> str:
        return self.topology.regions[cluster - 1]

    def _build(self) -> None:
        cfg = self.config
        for c in range(1, cfg.num_clusters + 1):
            self.cluster_members[c] = [
                replica_id(c, i)
                for i in range(1, cfg.size_of_cluster(c) + 1)
            ]
        builder = {
            "geobft": self._build_geobft,
            "pbft": self._build_pbft,
            "zyzzyva": self._build_zyzzyva,
            "hotstuff": self._build_hotstuff,
            "steward": self._build_steward,
        }[cfg.protocol]
        builder()
        region_map = {node: replica.region
                      for node, replica in self.replicas.items()}
        region_map.update(
            {client.node_id: client.region for client in self.clients})
        self.metrics.set_region_map(region_map)

    def _flat_members(self) -> List[NodeId]:
        """All replicas, Oregon (cluster 1) first — so the flat primary
        lands in the best-connected region, as in §4."""
        members: List[NodeId] = []
        for c in sorted(self.cluster_members):
            members.extend(self.cluster_members[c])
        return members

    def _workload(self, salt: int) -> YcsbWorkload:
        cfg = self.config
        return YcsbWorkload(
            record_count=cfg.record_count,
            write_fraction=cfg.write_fraction,
            distribution=cfg.distribution,
            seed=cfg.seed * 7919 + salt,
        )

    def _pbft_config(self) -> PbftConfig:
        cfg = self.config
        return PbftConfig(
            pipeline_depth=cfg.pipeline_depth,
            checkpoint_interval=cfg.checkpoint_interval,
            view_change_timeout=cfg.view_change_timeout,
        )

    def _make_traffic_sources(self, primary_for, fallback_for, quorum_for,
                              mode: str = "quorum",
                              members=None) -> None:
        """Create one open-loop aggregate source per cluster.

        Takes the same target/quorum callables as
        :meth:`_make_quorum_clients`; the modeled population is split
        evenly over the regions (sources are region-affine, which is
        what lets each parallel worker own its region's arrivals).
        """
        cfg = self.config
        spec = cfg.traffic
        assert spec is not None
        shares = split_users(spec.users, cfg.num_clusters)
        salt = 50_000
        for c in sorted(self.cluster_members):
            salt += 1
            source = OpenLoopSource(
                node_id=client_id(c, 1),
                region=self._region_of(c),
                sim=self.sim,
                network=self.network,
                registry=self.registry,
                workload=self._workload(salt),
                batch_size=cfg.batch_size,
                spec=spec,
                users=shares[c - 1],
                seed=cfg.seed,
                mode=mode,
                primary_targets=primary_for(c, 1),
                fallback_targets=fallback_for(c, 1),
                reply_quorum=quorum_for(c, 1),
                members=members,
                metrics=self.metrics,
            )
            self.clients.append(source)

    def _make_drivers(self, primary_for, fallback_for,
                      quorum_for) -> None:
        """Closed-loop clients, or open-loop sources when configured."""
        if self.config.traffic is not None:
            self._make_traffic_sources(primary_for, fallback_for,
                                       quorum_for)
        else:
            self._make_quorum_clients(primary_for, fallback_for,
                                      quorum_for)

    def _make_quorum_clients(self, primary_for, fallback_for,
                             quorum_for) -> None:
        """Create ``clients_per_cluster`` clients per cluster.

        The three callables map a cluster id to that cluster's clients'
        primary targets, fallback targets, and reply quorum.
        """
        cfg = self.config
        salt = 0
        for c in sorted(self.cluster_members):
            for j in range(1, cfg.clients_per_cluster + 1):
                salt += 1
                cid = client_id(c, j)
                client = QuorumClient(
                    node_id=cid,
                    region=self._region_of(c),
                    sim=self.sim,
                    network=self.network,
                    registry=self.registry,
                    workload=self._workload(salt),
                    batch_size=cfg.batch_size,
                    primary_targets=primary_for(c, j),
                    fallback_targets=fallback_for(c, j),
                    reply_quorum=quorum_for(c, j),
                    outstanding=cfg.client_outstanding,
                    retry_timeout=cfg.client_retry_timeout,
                    max_batches=cfg.max_batches_per_client,
                    metrics=self.metrics,
                )
                self.clients.append(client)

    def _build_geobft(self) -> None:
        import dataclasses

        cfg = self.config
        # The experiment-level PBFT knobs (pipeline depth, checkpoint
        # interval, view-change timeout) override the nested default.
        geo_cfg = dataclasses.replace(cfg.geobft, pbft=self._pbft_config())
        schemes = None
        if geo_cfg.threshold_certificates:
            from ..crypto.threshold import ThresholdScheme
            from ..types import max_faulty as _max_faulty
            schemes = {
                c: ThresholdScheme(
                    f"cluster-{c}", members,
                    k=len(members) - _max_faulty(len(members)),
                )
                for c, members in self.cluster_members.items()
            }
        for c, members in self.cluster_members.items():
            for node in members:
                self.replicas[node] = GeoBftReplica(
                    node_id=node,
                    region=self._region_of(c),
                    sim=self.sim,
                    network=self.network,
                    registry=self.registry,
                    cluster_members=self.cluster_members,
                    config=geo_cfg,
                    costs=cfg.costs,
                    cores=cfg.cores,
                    record_count=cfg.record_count,
                    metrics=self.metrics,
                    instrumentation=self.instrumentation,
                    threshold_schemes=schemes,
                )
        self._make_drivers(
            primary_for=lambda c, j: [self.cluster_members[c][0]],
            fallback_for=lambda c, j: list(self.cluster_members[c]),
            quorum_for=lambda c, j: max_faulty(
                len(self.cluster_members[c])) + 1,
        )

    def _build_pbft(self) -> None:
        cfg = self.config
        members = self._flat_members()
        for c, cluster in self.cluster_members.items():
            for node in cluster:
                self.replicas[node] = PbftReplica(
                    node_id=node,
                    region=self._region_of(c),
                    sim=self.sim,
                    network=self.network,
                    registry=self.registry,
                    members=members,
                    config=self._pbft_config(),
                    costs=cfg.costs,
                    cores=cfg.cores,
                    record_count=cfg.record_count,
                    metrics=self.metrics,
                    instrumentation=self.instrumentation,
                )
        big_f = max_faulty(len(members))
        self._make_drivers(
            primary_for=lambda c, j: [members[0]],
            fallback_for=lambda c, j: list(members),
            quorum_for=lambda c, j: big_f + 1,
        )

    def _build_zyzzyva(self) -> None:
        cfg = self.config
        members = self._flat_members()
        for c, cluster in self.cluster_members.items():
            for node in cluster:
                self.replicas[node] = ZyzzyvaReplica(
                    node_id=node,
                    region=self._region_of(c),
                    sim=self.sim,
                    network=self.network,
                    registry=self.registry,
                    members=members,
                    costs=cfg.costs,
                    cores=cfg.cores,
                    record_count=cfg.record_count,
                    metrics=self.metrics,
                    instrumentation=self.instrumentation,
                )
        if cfg.traffic is not None:
            self._make_traffic_sources(
                primary_for=lambda c, j: [members[0]],
                fallback_for=lambda c, j: list(members),
                quorum_for=lambda c, j: max_faulty(len(members)) + 1,
                mode="zyzzyva",
                members=members,
            )
            return
        salt = 10_000
        for c in sorted(self.cluster_members):
            for j in range(1, cfg.clients_per_cluster + 1):
                salt += 1
                cid = client_id(c, j)
                client = ZyzzyvaClient(
                    node_id=cid,
                    region=self._region_of(c),
                    sim=self.sim,
                    network=self.network,
                    registry=self.registry,
                    workload=self._workload(salt),
                    batch_size=cfg.batch_size,
                    members=members,
                    outstanding=cfg.client_outstanding,
                    spec_timeout=cfg.zyzzyva_spec_timeout,
                    max_batches=cfg.max_batches_per_client,
                    metrics=self.metrics,
                )
                self.clients.append(client)

    def _build_hotstuff(self) -> None:
        cfg = self.config
        members = self._flat_members()
        for c, cluster in self.cluster_members.items():
            for node in cluster:
                self.replicas[node] = HotStuffReplica(
                    node_id=node,
                    region=self._region_of(c),
                    sim=self.sim,
                    network=self.network,
                    registry=self.registry,
                    members=members,
                    pipeline_depth=cfg.hotstuff_pipeline,
                    costs=cfg.costs,
                    cores=cfg.cores,
                    record_count=cfg.record_count,
                    metrics=self.metrics,
                    instrumentation=self.instrumentation,
                )
        big_f = max_faulty(len(members))
        self._make_drivers(
            # Home replica: round-robin within the client's own region.
            primary_for=lambda c, j: [
                self.cluster_members[c][
                    (j - 1) % len(self.cluster_members[c])]
            ],
            fallback_for=lambda c, j: list(self.cluster_members[c]),
            quorum_for=lambda c, j: big_f + 1,
        )

    def _build_steward(self) -> None:
        cfg = self.config
        steward_costs = cfg.costs.scaled(cfg.steward_crypto_factor)
        for c, cluster in self.cluster_members.items():
            for node in cluster:
                self.replicas[node] = StewardReplica(
                    node_id=node,
                    region=self._region_of(c),
                    sim=self.sim,
                    network=self.network,
                    registry=self.registry,
                    cluster_members=self.cluster_members,
                    primary_cluster=1,
                    config=self._pbft_config(),
                    costs=steward_costs,
                    cores=cfg.cores,
                    record_count=cfg.record_count,
                    metrics=self.metrics,
                    instrumentation=self.instrumentation,
                )
        self._make_drivers(
            primary_for=lambda c, j: [self.cluster_members[c][0]],
            fallback_for=lambda c, j: list(self.cluster_members[c]),
            quorum_for=lambda c, j: max_faulty(
                len(self.cluster_members[c])) + 1,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Start the clients, run the clock out, and aggregate results."""
        for client in self.clients:
            self.sim.schedule(0.0, client.start)
        self.sim.run(until=self.config.duration)
        self.metrics.finish(self.sim.now)
        report = self.check_invariants()
        return ExperimentResult(
            protocol=self.config.protocol,
            num_clusters=self.config.num_clusters,
            replicas_per_cluster=self.config.replicas_per_cluster,
            batch_size=self.config.batch_size,
            throughput_txn_s=self.metrics.throughput_txn_s(),
            avg_latency_s=self.metrics.avg_latency_s(),
            p50_latency_s=self.metrics.p50_latency_s(),
            completed_txns=self.metrics.completed_txns,
            duration=self.sim.now,
            local_messages=self.metrics.local_messages,
            global_messages=self.metrics.global_messages,
            local_bytes=self.metrics.local_bytes,
            global_bytes=self.metrics.global_bytes,
            safety_ok=report.safety_ok,
            p95_latency_s=self.metrics.p95_latency_s(),
            p99_latency_s=self.metrics.p99_latency_s(),
            submitted_txns=self.metrics.submitted_txns,
            measured_submitted_txns=self.metrics.measured_submitted_txns,
            offered_load_txn_s=self.metrics.offered_load_txn_s(),
            liveness_ok=report.liveness_ok,
            traffic=(traffic_summary(self.metrics, self.config.traffic)
                     if self.config.traffic is not None else None),
        )

    def encoding_cache_delta(self) -> Dict[str, int]:
        """This deployment's CachedEncodable hit/miss increments.

        The underlying counters are process-wide; the delta is taken
        against a snapshot from construction time.  Other deployments
        running concurrently in the same process would pollute it — the
        CLI and tests run deployments one at a time.
        """
        return encoding_cache_stats().delta_since(self._encoding_baseline)

    # ------------------------------------------------------------------
    # Safety auditing (Theorem 2.8)
    # ------------------------------------------------------------------
    def check_invariants(self, timeline=None) -> InvariantReport:
        """The reusable safety+liveness audit (run after ``sim.run``).

        ``timeline`` defaults to the chaos timeline installed on this
        deployment (if any).  Byzantine actors the timeline names are
        excluded from the honest set before the divergence check, and
        each fault window that expects recovery must be followed by
        ledger progress.  The report is also kept on
        ``deployment.invariants``.
        """
        if timeline is None:
            timeline = self.timeline
        byzantine = (timeline.byzantine_nodes() if timeline is not None
                     else frozenset())
        failures = (list(timeline.liveness_failures(self))
                    if timeline is not None else [])
        report = InvariantReport(
            safety_ok=self.check_safety(exclude=byzantine),
            liveness_ok=not failures,
            liveness_failures=tuple(failures),
            byzantine_excluded=tuple(sorted(byzantine, key=str)),
        )
        self.invariants = report
        return report

    def check_safety(self, exclude=frozenset()) -> bool:
        """Audit non-divergence across all honest replicas.

        Honest = not crashed and not in ``exclude`` (the Byzantine
        actors of an installed fault timeline — their ledgers carry no
        safety obligation).  For the sequentially ordered protocols the
        whole ledgers must be prefix-comparable; for HotStuff
        (unsynchronized parallel instances) each instance's block
        subsequence must match.
        """
        alive = [
            replica for node, replica in self.replicas.items()
            if not self.network.failures.is_crashed(node)
            and node not in exclude
        ]
        if len(alive) < 2:
            return True
        for replica in alive:
            # Chain-structure audit; the deep content audit is exercised
            # by the test suite where tampering actually occurs.
            replica.ledger.verify(deep=False)
        if self.config.protocol == "hotstuff":
            return self._check_hotstuff_safety(alive)
        reference = max(alive, key=lambda r: r.ledger.height)
        return all(
            replica.ledger.matches_prefix_of(reference.ledger)
            for replica in alive
        )

    @staticmethod
    def _check_hotstuff_safety(alive) -> bool:
        # HotStuff runs one unsynchronized instance per replica and has
        # no retransmission, so a replica that missed a decide (e.g.
        # while partitioned) legitimately carries a *hole* at that
        # height.  Safety is therefore checked per slot, not per ledger
        # position: no two honest replicas may record different batches
        # at the same (instance, height).
        slots: Dict[tuple, tuple] = {}
        for replica in alive:
            for block in replica.ledger:
                key = (block.cluster_id, block.round_id)
                batch = tuple(txn.txn_id for txn in block.batch)
                seen = slots.setdefault(key, batch)
                if seen != batch:
                    return False
        return True


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Build and run one experiment (the harness's main entry point).

    ``config.workers > 1`` routes supported configurations through the
    parallel backend; anything it cannot run bit-identically falls back
    to the serial engine, so the result is the same either way.
    """
    if config.workers > 1:
        from .parallel import parallel_unsupported_reason, run_parallel
        if parallel_unsupported_reason(config) is None:
            return run_parallel(config).result
    return Deployment(config).run()


def digest_from_parts(result: ExperimentResult, events_processed: int,
                      ledgers) -> str:
    """Digest core shared by the serial and parallel engines.

    ``ledgers`` is an iterable of ``(str(node), height, head_hash_hex)``
    rows; it is sorted here so callers may supply it in any order (the
    parallel engine concatenates per-worker rows).
    """
    import hashlib
    import json
    from dataclasses import asdict

    result_row = asdict(result)
    if result_row.get("traffic") is None:
        # Closed-loop runs omit the traffic block entirely: the payload
        # (and so every pre-traffic golden digest) is byte-identical to
        # a result without the field.
        result_row.pop("traffic", None)
    payload = json.dumps(
        {
            "result": result_row,
            "events_processed": events_processed,
            "ledgers": sorted(tuple(row) for row in ledgers),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def deployment_digest(deployment: Deployment,
                      result: ExperimentResult) -> str:
    """SHA-256 over everything a run *simulates*.

    Covers the full result row, the simulator's event count, and every
    replica's ledger head/height.  Instrumentation is observation-only,
    so the digest of an instrumented run must equal the digest of the
    same configuration run without it — ``repro trace
    --assert-determinism`` and the tracing smoke test both check this.
    The parallel engine reproduces the same digest via
    :func:`digest_from_parts` over merged per-worker state.
    """
    ledgers = [
        (str(node), replica.ledger.height,
         replica.ledger.head_hash.hex())
        for node, replica in deployment.replicas.items()
    ]
    return digest_from_parts(result, deployment.sim.events_processed,
                             ledgers)
