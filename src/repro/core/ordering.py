"""Ordering and execution of GeoBFT rounds (paper §2.4).

In round ``rho`` every cluster contributes one certified client request.
Once a replica holds certified requests from *all* ``z`` clusters for
``rho``, it executes them in the pre-defined cluster order
``[T_1, ..., T_z]``.  The :class:`OrderingBuffer` collects shares per
round and releases complete rounds strictly in order, which — together
with deterministic execution — yields the paper's non-divergence
guarantee (Theorem 2.8).

Rounds are released to an ``execute`` callback; the buffer itself is
protocol-agnostic and fully unit-testable without a network.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..consensus.messages import ClientRequestBatch, CommitCertificate
from ..errors import ProtocolError
from ..types import ClusterId, RoundId

#: Execution callback: (round, [(cluster, request, certificate), ...])
#: with the list sorted by cluster id.
ExecuteCallback = Callable[
    [RoundId, List[Tuple[ClusterId, ClientRequestBatch, CommitCertificate]]],
    None,
]


class OrderingBuffer:
    """Collects per-cluster shares and releases rounds in order."""

    def __init__(self, cluster_ids: Iterable[ClusterId],
                 execute: ExecuteCallback):
        self._cluster_ids = tuple(sorted(cluster_ids))
        if not self._cluster_ids:
            raise ProtocolError("ordering buffer needs at least one cluster")
        self._execute = execute
        self._next_round: RoundId = 1
        self._pending: Dict[RoundId, Dict[
            ClusterId, Tuple[ClientRequestBatch, CommitCertificate]]] = {}

    @property
    def next_round(self) -> RoundId:
        """The next round awaiting execution."""
        return self._next_round

    @property
    def cluster_ids(self) -> Tuple[ClusterId, ...]:
        """All clusters whose shares each round requires."""
        return self._cluster_ids

    def executed_rounds(self) -> int:
        """Rounds fully executed so far."""
        return self._next_round - 1

    def has_share(self, round_id: RoundId, cluster_id: ClusterId) -> bool:
        """Whether the share of ``cluster_id`` for ``round_id`` is held
        (or the round already executed)."""
        if round_id < self._next_round:
            return True
        return cluster_id in self._pending.get(round_id, {})

    def get_share(self, round_id: RoundId, cluster_id: ClusterId
                  ) -> Optional[Tuple[ClientRequestBatch, CommitCertificate]]:
        """The pending share for (round, cluster), if buffered."""
        return self._pending.get(round_id, {}).get(cluster_id)

    def missing_clusters(self, round_id: RoundId) -> Tuple[ClusterId, ...]:
        """Clusters whose share for ``round_id`` has not arrived yet."""
        if round_id < self._next_round:
            return ()
        have = self._pending.get(round_id, {})
        return tuple(c for c in self._cluster_ids if c not in have)

    def add_share(self, round_id: RoundId, cluster_id: ClusterId,
                  request: ClientRequestBatch,
                  certificate: CommitCertificate) -> bool:
        """Buffer one cluster's certified request for a round.

        Returns ``True`` if this share was new.  Duplicate shares are
        ignored (agreement: only one certificate can exist per cluster
        per round, Lemma 2.3, so duplicates are identical).
        """
        if cluster_id not in self._cluster_ids:
            raise ProtocolError(f"share from unknown cluster {cluster_id}")
        if round_id < self._next_round:
            return False  # round already executed
        shares = self._pending.setdefault(round_id, {})
        if cluster_id in shares:
            return False
        shares[cluster_id] = (request, certificate)
        self._release_ready_rounds()
        return True

    def _release_ready_rounds(self) -> None:
        while True:
            shares = self._pending.get(self._next_round)
            if shares is None or len(shares) < len(self._cluster_ids):
                return
            round_id = self._next_round
            ordered = [
                (cid, shares[cid][0], shares[cid][1])
                for cid in self._cluster_ids
            ]
            del self._pending[round_id]
            self._next_round += 1
            self._execute(round_id, ordered)
