"""GeoBFT's remote view-change protocol (paper §2.3, Figures 6 and 7).

When cluster C2 expects the round-``rho`` share of cluster C1 but does
not receive it in time, its replicas cannot tell whether C1's primary is
faulty or the network is slow (Example 2.4).  The remote view-change
protocol resolves this in four phases:

1. **Detection** (initiation role): each replica of C2 runs a timer per
   awaited (cluster, round); on expiry it broadcasts ``DRVC`` locally.
2. **Agreement**: on ``n - f`` matching ``DRVC`` messages the replicas
   of C2 agree C1 failed.  A replica that *did* receive the share
   instead answers a ``DRVC`` by sending the share to the detector
   (Figure 7, lines 5–7); ``f + 1`` matching ``DRVC`` messages force a
   laggard to join the detection (lines 8–11).
3. **Request**: each replica of C2 sends a signed ``RVC`` to the replica
   of C1 with its own index (line 12–13).
4. **Response role** (replicas of C1): a received ``RVC`` is forwarded
   locally; ``f + 1`` identical ``RVC`` messages from distinct replicas
   of the requesting cluster — absent a recent local view change, and
   at most once per ``v`` per cluster (replay protection) — make the
   replica treat its own primary as failed, triggering a *local* view
   change (lines 14–17).

The manager is transport-agnostic: it talks to its owner replica through
a narrow interface so it can be unit-tested with a stub owner.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..consensus.messages import Drvc, Rvc
from ..net.simulator import Timer
from ..types import ClusterId, NodeId, RoundId

#: Returns the buffered share for (cluster, round) or None.
ShareLookup = Callable[[ClusterId, RoundId], Optional[object]]


class RemoteViewChangeManager:
    """Implements both roles of Figure 7 for one GeoBFT replica."""

    def __init__(self,
                 owner,
                 own_cluster: ClusterId,
                 own_members: List[NodeId],
                 remote_timeout: float,
                 get_share: ShareLookup,
                 on_local_failure_detected: Callable[[], None],
                 recent_view_change_window: float = 5.0,
                 remote_f: Optional[Callable[[ClusterId], int]] = None,
                 on_resend_requested: Optional[
                     Callable[[ClusterId, RoundId], None]] = None):
        self._owner = owner
        self._own_cluster = own_cluster
        self._own_members = list(own_members)
        self._n = len(own_members)
        self._f = (self._n - 1) // 3
        self._remote_timeout = remote_timeout
        self._get_share = get_share
        self._on_local_failure = on_local_failure_detected
        self._recent_vc_window = recent_view_change_window
        # Fault bound of a *remote* cluster — needed by the response
        # role's f+1 threshold when cluster sizes vary (§2.5: "the
        # conditions at Line 16 rely on the cluster sizes").
        self._remote_f = remote_f if remote_f is not None else (
            lambda cluster: self._f)
        # Invoked whenever a cluster proves (f+1 RVCs) that it misses
        # shares from a round onward.  The owner's *current* primary
        # re-shares immediately; if a view change is triggered instead,
        # the incoming primary re-shares on installation.
        self._on_resend_requested = on_resend_requested

        # --- initiation role (watching remote clusters) ---
        self._vc_counts: Dict[ClusterId, int] = {}
        self._timers: Dict[Tuple[ClusterId, RoundId], Timer] = {}
        self._broadcast_drvc: Set[Tuple[ClusterId, RoundId, int]] = set()
        self._drvc_votes: Dict[Tuple[ClusterId, RoundId, int],
                               Set[NodeId]] = {}
        self._rvc_sent: Set[Tuple[ClusterId, RoundId, int]] = set()

        # --- response role (being watched) ---
        self._rvc_votes: Dict[Tuple[ClusterId, RoundId, int],
                              Set[NodeId]] = {}
        self._honored: Set[Tuple[ClusterId, int]] = set()
        self._pending_resend: Dict[ClusterId, RoundId] = {}
        self._last_local_view_change: float = float("-inf")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_resend(self) -> Dict[ClusterId, RoundId]:
        """Per requesting cluster, the earliest round whose share a new
        local primary must resend (populated by honored RVCs)."""
        return dict(self._pending_resend)

    def vc_count(self, cluster: ClusterId) -> int:
        """Remote view changes requested so far against ``cluster``
        (the paper's ``v1`` counter)."""
        return self._vc_counts.get(cluster, 0)

    def detection_in_progress(self, cluster: ClusterId,
                              round_id: RoundId) -> bool:
        """Whether this replica broadcast a DRVC for (cluster, round)."""
        return any(
            key[0] == cluster and key[1] == round_id
            for key in self._broadcast_drvc
        )

    # ------------------------------------------------------------------
    # Initiation role
    # ------------------------------------------------------------------
    def arm_timer(self, cluster: ClusterId, round_id: RoundId) -> None:
        """Start awaiting ``cluster``'s share for ``round_id``.

        Timeouts back off exponentially with the number of remote view
        changes already requested against that cluster (§2.3).
        """
        key = (cluster, round_id)
        if key in self._timers:
            return
        if self._get_share(cluster, round_id) is not None:
            return
        timeout = self._remote_timeout * (2 ** self.vc_count(cluster))
        self._timers[key] = self._owner.set_timer(
            timeout, self._on_timeout, cluster, round_id
        )

    def on_share_received(self, cluster: ClusterId,
                          round_id: RoundId) -> None:
        """The awaited share arrived: stop suspecting this round."""
        timer = self._timers.pop((cluster, round_id), None)
        if timer is not None:
            timer.cancel()

    def _on_timeout(self, cluster: ClusterId, round_id: RoundId) -> None:
        self._timers.pop((cluster, round_id), None)
        if self._get_share(cluster, round_id) is not None:
            return
        self._detect_failure(cluster, round_id, self.vc_count(cluster))

    def _detect_failure(self, cluster: ClusterId, round_id: RoundId,
                        v: int) -> None:
        """Figure 7, lines 2–4: broadcast DRVC and bump ``v1``."""
        key = (cluster, round_id, v)
        if key in self._broadcast_drvc:
            return
        self._broadcast_drvc.add(key)
        self._vc_counts[cluster] = v + 1
        # getattr: the manager is unit-tested with stub owners that
        # predate the instrumentation attribute.
        instr = getattr(self._owner, "instrumentation", None)
        if instr is not None:
            instr.phase("drvc", self._owner.node_id, cluster, round_id,
                        detail=v)
        msg = Drvc(cluster, round_id, v, self._owner.node_id)
        self._record_drvc(msg, self._owner.node_id)
        self._owner.broadcast(self._own_members, msg)
        # Re-arm a (longer) timer so a still-silent cluster escalates.
        self.arm_timer(cluster, round_id)

    def handle_drvc(self, msg: Drvc, sender: NodeId) -> None:
        """Figure 7, lines 5–13 (receipt of a DRVC from a peer)."""
        if sender.cluster != self._own_cluster or msg.replica != sender:
            return
        share = self._get_share(msg.target_cluster, msg.round_id)
        if share is not None:
            # Lines 5–7: we have the message C1 sent; help the detector.
            self._owner.send(sender, share)
            return
        self._record_drvc(msg, sender)

    def _record_drvc(self, msg: Drvc, sender: NodeId) -> None:
        key = (msg.target_cluster, msg.round_id, msg.vc_count)
        votes = self._drvc_votes.setdefault(key, set())
        votes.add(sender)
        # Lines 8–11: f + 1 detections force laggards to join at v'.
        if (len(votes) > self._f
                and self.vc_count(msg.target_cluster) <= msg.vc_count):
            self._detect_failure(msg.target_cluster, msg.round_id,
                                 msg.vc_count)
        # Lines 12–13: n - f agreement => send the RVC request.
        if (len(votes) >= self._n - self._f
                and key in self._broadcast_drvc
                and key not in self._rvc_sent):
            self._rvc_sent.add(key)
            self._send_rvc(msg.target_cluster, msg.round_id, msg.vc_count)

    def _send_rvc(self, cluster: ClusterId, round_id: RoundId,
                  v: int) -> None:
        instr = getattr(self._owner, "instrumentation", None)
        if instr is not None:
            instr.phase("rvc_sent", self._owner.node_id, cluster, round_id,
                        detail=v)
        rvc = Rvc(cluster, round_id, v, self._owner.node_id, None)
        signed = Rvc(rvc.target_cluster, rvc.round_id, rvc.vc_count,
                     rvc.replica, self._owner.sign(rvc))
        target = NodeId("replica", cluster, self._owner.node_id.index)
        self._owner.send(target, signed)

    # ------------------------------------------------------------------
    # Response role
    # ------------------------------------------------------------------
    def note_local_view_change(self) -> None:
        """Record that a local view change just happened (condition 3 of
        line 16: suppress redundant remote-triggered view changes)."""
        self._last_local_view_change = self._owner.sim.now

    def handle_rvc(self, msg: Rvc, sender: NodeId) -> None:
        """Figure 7, lines 14–17 (response role in the watched cluster)."""
        if msg.target_cluster != self._own_cluster:
            return
        if msg.replica.cluster == self._own_cluster:
            return  # RVCs must originate in another cluster
        if msg.signature is None:
            return
        if not self._owner.registry.verify(msg, msg.signature):
            return
        came_directly = sender == msg.replica
        key = (msg.replica.cluster, msg.round_id, msg.vc_count)
        votes = self._rvc_votes.setdefault(key, set())
        first_time = msg.replica not in votes
        votes.add(msg.replica)
        if came_directly and first_time:
            # Line 14–15: forward externally received RVCs locally.
            self._owner.broadcast(self._own_members, msg)
        # The f+1 threshold uses the *requesting* cluster's fault bound:
        # one of the f+1 signers must be one of its non-faulty replicas.
        if len(votes) <= self._remote_f(msg.replica.cluster):
            return
        # Line 16's conditions:
        requester = (msg.replica.cluster, msg.vc_count)
        if requester in self._honored:
            return  # replay protection: one view change per v per cluster
        now = self._owner.sim.now
        instr = getattr(self._owner, "instrumentation", None)
        if now - self._last_local_view_change < self._recent_vc_window:
            # A recent local view change already replaced the primary;
            # remember what to resend but do not trigger another one.
            self._honored.add(requester)
            if instr is not None:
                instr.phase("rvc_honored", self._owner.node_id,
                            self._own_cluster, msg.round_id,
                            detail=msg.replica.cluster)
            self._note_resend(msg.replica.cluster, msg.round_id)
            return
        self._honored.add(requester)
        if instr is not None:
            instr.phase("rvc_honored", self._owner.node_id,
                        self._own_cluster, msg.round_id,
                        detail=msg.replica.cluster)
        self._note_resend(msg.replica.cluster, msg.round_id)
        self._on_local_failure()

    def _note_resend(self, cluster: ClusterId, round_id: RoundId) -> None:
        current = self._pending_resend.get(cluster)
        if current is None or round_id < current:
            self._pending_resend[cluster] = round_id
        if self._on_resend_requested is not None:
            self._on_resend_requested(cluster, round_id)

    def clear_resend(self, cluster: ClusterId) -> None:
        """A new primary satisfied the cluster's resend request."""
        self._pending_resend.pop(cluster, None)
