"""GeoBFT configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..consensus.pbft import PbftConfig
from ..errors import ConfigurationError

#: Sharing strategies for the ablation study (DESIGN.md §5).
SHARING_OPTIMISTIC = "optimistic_f1"   # the paper's f + 1 protocol
SHARING_SINGLE = "single"              # Example 2.4's broken 1-message send
SHARING_ALL = "all"                    # naive all-replica send

_VALID_SHARING = (SHARING_OPTIMISTIC, SHARING_SINGLE, SHARING_ALL)


@dataclass(frozen=True)
class GeoBftConfig:
    """Tuning knobs of a GeoBFT deployment."""

    #: Local replication (per-cluster PBFT) settings.
    pbft: PbftConfig = field(default_factory=PbftConfig)
    #: Base timeout while awaiting a remote cluster's share for an
    #: active round; doubles per remote view change (exponential
    #: back-off, §2.3).
    remote_timeout: float = 3.0
    #: Rotate which f + 1 remote replicas receive the global share each
    #: round (spreads load; the paper picks "a set S of f + 1 replicas").
    rotate_share_targets: bool = True
    #: Inter-cluster sharing strategy (ablation; default is the paper's).
    sharing_strategy: str = SHARING_OPTIMISTIC
    #: Represent commit certificates by a constant-size threshold
    #: signature instead of n - f commit signatures (paper §2.2 option).
    threshold_certificates: bool = False
    #: Suppress "recent local view change" remote requests within this
    #: window (Figure 7 line 16, condition 3).
    recent_view_change_window: float = 5.0
    #: How many of its own decided rounds a replica retains (request +
    #: commit certificate) for retransmission after a remote view
    #: change.  Must comfortably exceed the rounds a cluster can decide
    #: within the remote-view-change detection time.
    certificate_retention_rounds: int = 512
    #: §2.5 pipelining: how many rounds local replication may run ahead
    #: of ordering/execution.  ``None`` (the paper's design) means
    #: unbounded overlap; ``1`` forces strictly sequential rounds — the
    #: ablation baseline.
    round_pipeline: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sharing_strategy not in _VALID_SHARING:
            raise ConfigurationError(
                f"unknown sharing strategy {self.sharing_strategy!r}; "
                f"expected one of {_VALID_SHARING}"
            )
        if self.remote_timeout <= 0:
            raise ConfigurationError("remote_timeout must be positive")
        if self.round_pipeline is not None and self.round_pipeline < 1:
            raise ConfigurationError("round_pipeline must be >= 1")
