"""The GeoBFT replica (paper §2).

A GeoBFT replica composes four sub-systems, matching the paper's round
structure (Figure 1):

1. **Local replication** — an embedded :class:`~repro.consensus.pbft.
   PbftEngine` over the replica's own cluster chooses and certifies one
   client request per round (§2.2).
2. **Inter-cluster sharing** — the cluster's primary sends the resulting
   commit certificate to ``f + 1`` replicas of every other cluster; each
   receiver re-broadcasts it locally (§2.3, Figure 5).
3. **Remote view change** — a :class:`~repro.core.remote_view_change.
   RemoteViewChangeManager` detects silent remote clusters and forces
   primary replacement there (§2.3, Figure 7).
4. **Ordering & execution** — an :class:`~repro.core.ordering.
   OrderingBuffer` releases complete rounds, which are executed in
   cluster order, appended to the ledger as one block per cluster, and
   acknowledged to local clients (§2.4).

Rounds pipeline freely (§2.5): local replication of round ``rho + k``
overlaps sharing of ``rho + 1`` and execution of ``rho``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..consensus.messages import (
    CertShare,
    ClientReply,
    ClientRequestBatch,
    Commit,
    CommitCertificate,
    Drvc,
    GlobalShare,
    Prepare,
    PrePrepare,
    Rvc,
    ThresholdCommitCertificate,
    certificate_statement,
)
from ..consensus.pbft import PbftEngine, engine_verification_cost
from ..consensus.replica import BaseReplica
from ..errors import (
    ConfigurationError,
    CryptoError,
    InvalidCertificateError,
)
from ..types import ClusterId, NodeId, RoundId, SeqNum, max_faulty
from .config import SHARING_ALL, SHARING_SINGLE, GeoBftConfig
from .ordering import OrderingBuffer
from .remote_view_change import RemoteViewChangeManager

#: Executed rounds whose shares are kept around to answer DRVC queries
#: from lagging peers before being garbage collected.
SHARE_RETENTION_ROUNDS = 64

#: Message classes that travel *between* clusters: the certificate
#: sharing plane (§2.3, Figure 5) and the remote view-change request
#: (§2.3, Figure 7 line 13).  Everything else — PBFT local replication,
#: CertShare threshold shares, Drvc votes, client traffic — stays inside
#: one cluster.  The parallel engine treats this as the protocol's
#: declared cross-worker surface.
CROSS_CLUSTER_MESSAGES = frozenset({"GlobalShare", "Rvc"})


class GeoBftReplica(BaseReplica):
    """One replica of a GeoBFT deployment."""

    def __init__(self,
                 node_id: NodeId,
                 region: str,
                 sim,
                 network,
                 registry,
                 cluster_members: Dict[ClusterId, List[NodeId]],
                 config: Optional[GeoBftConfig] = None,
                 costs=None,
                 cores: int = 4,
                 record_count: int = 1000,
                 metrics=None,
                 instrumentation=None,
                 threshold_schemes=None):
        super().__init__(node_id, region, sim, network, registry,
                         costs=costs, cores=cores,
                         record_count=record_count, metrics=metrics,
                         instrumentation=instrumentation)
        if node_id.cluster not in cluster_members:
            raise ConfigurationError(
                f"{node_id} not part of any configured cluster"
            )
        self._config = config or GeoBftConfig()
        self._clusters: Dict[ClusterId, List[NodeId]] = {
            cid: list(members) for cid, members in cluster_members.items()
        }
        self._own_cluster = node_id.cluster
        self._members = self._clusters[self._own_cluster]
        # Local-replication traffic dominates; its certify costs are
        # constants (see verification_cost), so deliver() can skip the
        # method call for these classes entirely.
        self._const_verify_costs[Prepare] = 0.0
        self._const_verify_costs[Commit] = self.costs.verify

        self._engine = PbftEngine(
            owner=self,
            cluster_id=self._own_cluster,
            members=self._members,
            config=self._config.pbft,
            on_decide=self._on_local_decide,
            on_new_view=self._on_new_view_installed,
            can_propose=self._round_gate,
        )
        self._ordering = OrderingBuffer(self._clusters.keys(),
                                        self._execute_round)
        self._rvc = RemoteViewChangeManager(
            owner=self,
            own_cluster=self._own_cluster,
            own_members=self._members,
            remote_timeout=self._config.remote_timeout,
            get_share=self._lookup_share,
            on_local_failure_detected=self._engine.force_view_change,
            recent_view_change_window=self._config.recent_view_change_window,
            remote_f=lambda cluster: max_faulty(
                len(self._clusters[cluster])),
            on_resend_requested=self._on_resend_requested,
        )

        # (cluster, round) -> the GlobalShare message, retained briefly
        # after execution for DRVC replies (Figure 7 lines 5-7).
        self._shares: Dict[Tuple[ClusterId, RoundId], GlobalShare] = {}
        self._have_share: Set[Tuple[ClusterId, RoundId]] = set()
        # Rounds at or below this mark have been share-GCed; pruning
        # advances it incrementally instead of rescanning every key.
        self._shares_gc_upto: RoundId = 0
        self._max_known_round: RoundId = 0
        # Our own cluster's decided rounds, kept beyond the PBFT
        # engine's checkpoint GC so a post-view-change primary can
        # retransmit everything a lagging cluster proved it misses.
        self._own_decisions: Dict[RoundId, Tuple[ClientRequestBatch,
                                                 CommitCertificate]] = {}

        # Threshold-certificate mode (§2.2, optional): constant-size
        # certificates combined by the primary from member shares.
        self._schemes = threshold_schemes
        self._share_signer = None
        if self._config.threshold_certificates:
            if (self._schemes is None
                    or self._own_cluster not in self._schemes):
                raise ConfigurationError(
                    "threshold_certificates requires a ThresholdScheme "
                    "per cluster (pass threshold_schemes)"
                )
            own_scheme = self._schemes[self._own_cluster]
            self._share_signer = own_scheme.share_signer(node_id)
        # round -> digest -> list of shares (primary side).
        self._cert_shares: Dict[RoundId, Dict[bytes, list]] = {}
        self._combined: Set[RoundId] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @classmethod
    def cluster_affinity(cls, clusters) -> frozenset:
        """Ordered cluster pairs that exchange cross-cluster traffic.

        GeoBFT's sharing plane is all-to-all: every cluster's primary
        sends its commit certificates to every other cluster (and RVC
        requests may flow between any pair), so every ordered pair of
        distinct clusters appears.  The parallel engine uses this
        affinity map to derive its conservative lookahead from only the
        links that can actually carry messages.
        """
        clusters = tuple(clusters)
        return frozenset((a, b) for a in clusters for b in clusters
                         if a != b)

    @property
    def engine(self) -> PbftEngine:
        """The local-replication PBFT engine."""
        return self._engine

    @property
    def ordering(self) -> OrderingBuffer:
        """The round ordering/execution buffer."""
        return self._ordering

    @property
    def remote_view_changes(self) -> RemoteViewChangeManager:
        """The remote view-change manager."""
        return self._rvc

    @property
    def config(self) -> GeoBftConfig:
        """Deployment configuration."""
        return self._config

    @property
    def cluster_id(self) -> ClusterId:
        """The cluster this replica belongs to."""
        return self._own_cluster

    @property
    def executed_rounds(self) -> int:
        """Complete GeoBFT rounds executed so far."""
        return self._ordering.executed_rounds()

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------
    def verification_cost(self, message, sender: NodeId) -> float:
        """Certify-thread work per GeoBFT message type.

        Global shares already held (duplicates from the local
        re-broadcast) cost nothing — the real implementation checks its
        index before re-verifying a certificate.
        """
        costs = self.costs
        # Local-replication traffic (prepares/commits) outnumbers every
        # other type by an order of magnitude; settle it before the
        # isinstance chain.
        cls = message.__class__
        if cls is Prepare:
            return 0.0
        if cls is Commit:
            return costs.verify
        if isinstance(message, GlobalShare):
            key = (message.cluster_id, message.round_id)
            if (key in self._have_share
                    or self._ordering.has_share(message.round_id,
                                                message.cluster_id)):
                return 0.0
            if isinstance(message.certificate, ThresholdCommitCertificate):
                return costs.threshold_verify
            members = self._clusters.get(message.cluster_id)
            if members is None:
                return 0.0
            quorum = len(members) - max_faulty(len(members))
            return costs.verify * quorum
        if isinstance(message, Rvc):
            return costs.verify
        if isinstance(message, CertShare):
            return costs.threshold_verify
        return engine_verification_cost(costs, self._engine.quorum,
                                        message)

    def handle(self, message, sender: NodeId) -> None:
        """Dispatch to the sub-protocol that owns the message type."""
        cls = message.__class__
        # Local-replication traffic dominates; route it straight to the
        # engine's handlers, skipping its isinstance dispatch ladder.
        engine = self._engine
        if cls is Prepare:
            engine._on_prepare(message, sender)
            return
        if cls is Commit:
            engine._on_commit(message, sender)
            return
        if cls is PrePrepare:
            engine._on_preprepare(message, sender)
            return
        if isinstance(message, ClientRequestBatch):
            self._on_client_request(message, sender)
        elif isinstance(message, GlobalShare):
            self._on_global_share(message, sender)
        elif isinstance(message, Drvc):
            self._rvc.handle_drvc(message, sender)
        elif isinstance(message, Rvc):
            self._rvc.handle_rvc(message, sender)
        elif isinstance(message, CertShare):
            self._on_cert_share(message, sender)
        else:
            self._engine.handle(message, sender)

    def _on_client_request(self, request: ClientRequestBatch,
                           sender: NodeId) -> None:
        if request.client.cluster != self._own_cluster:
            return  # clients are assigned to a single (local) cluster (§2)
        self._engine.submit_request(request)
        if not self._engine.is_primary and sender == request.client:
            self.send(self._engine.primary, request)

    def _round_gate(self, seq: SeqNum) -> bool:
        """§2.5 pipelining control: may local replication start round
        ``seq``?  Unbounded in the paper's design; the ablation caps how
        far replication runs ahead of execution."""
        window = self._config.round_pipeline
        if window is None:
            return True
        return seq <= self._ordering.executed_rounds() + window

    # ------------------------------------------------------------------
    # Step 1 -> 2: local decision triggers global sharing
    # ------------------------------------------------------------------
    def _on_local_decide(self, seq: SeqNum, request: ClientRequestBatch,
                         certificate: CommitCertificate) -> None:
        self._note_round_known(seq)
        self._own_decisions[seq] = (request, certificate)
        retention = self._config.certificate_retention_rounds
        stale = seq - retention
        if stale in self._own_decisions:
            del self._own_decisions[stale]
        self._ordering.add_share(seq, self._own_cluster, request,
                                 certificate)
        if self._config.threshold_certificates:
            self._contribute_cert_share(seq, request)
        elif self._engine.is_primary:
            self._share_globally(seq, certificate)
        # Start of round `seq`: expect every other cluster's share.
        self._arm_round_timers(seq)
        self._maybe_propose_noops()

    # ------------------------------------------------------------------
    # Threshold-certificate mode (§2.2, optional)
    # ------------------------------------------------------------------
    def _contribute_cert_share(self, round_id: RoundId,
                               request: ClientRequestBatch) -> None:
        digest = request.digest()
        statement = certificate_statement(self._own_cluster, round_id,
                                          digest)
        self.charge_cpu(self.costs.threshold_share)
        share = CertShare(self._own_cluster, round_id, digest,
                          self.node_id, self._share_signer(statement))
        if self._engine.is_primary:
            self._record_cert_share(share)
        else:
            self.send(self._engine.primary, share)

    def _on_cert_share(self, msg: CertShare, sender: NodeId) -> None:
        if not self._config.threshold_certificates:
            return
        if msg.cluster_id != self._own_cluster or msg.replica != sender:
            return
        if not self._engine.is_primary:
            return
        self._record_cert_share(msg)

    def _record_cert_share(self, msg: CertShare) -> None:
        if msg.round_id in self._combined:
            return
        by_digest = self._cert_shares.setdefault(msg.round_id, {})
        shares = by_digest.setdefault(msg.digest, [])
        shares.append(msg.share)
        scheme = self._schemes[self._own_cluster]
        if len(shares) < scheme.k:
            return
        decision = self._own_decisions.get(msg.round_id)
        if decision is None or decision[0].digest() != msg.digest:
            return
        request, classic_cert = decision
        statement = certificate_statement(self._own_cluster, msg.round_id,
                                          msg.digest)
        self.charge_cpu(self.costs.threshold_combine)
        try:
            signature = scheme.combine(shares, statement)
        except CryptoError:
            # A Byzantine replica contributed a bogus share; combining
            # fails loudly in the crypto layer, and the classic
            # (certificate-vector) fallback still disseminates the round.
            return
        self._combined.add(msg.round_id)
        self._cert_shares.pop(msg.round_id, None)
        compact = ThresholdCommitCertificate(
            self._own_cluster, msg.round_id, classic_cert.view, request,
            signature,
        )
        self._share_globally(msg.round_id, compact)

    def _share_targets(self, cluster: ClusterId,
                       round_id: RoundId) -> List[NodeId]:
        members = self._clusters[cluster]
        n = len(members)
        f = max_faulty(n)
        strategy = self._config.sharing_strategy
        if strategy == SHARING_ALL:
            return list(members)
        if strategy == SHARING_SINGLE:
            count = 1
        else:  # the paper's optimistic f + 1
            count = f + 1
        offset = (round_id - 1) % n if self._config.rotate_share_targets else 0
        return [members[(offset + k) % n] for k in range(count)]

    def _share_globally(self, round_id: RoundId,
                        certificate: CommitCertificate,
                        only_cluster: Optional[ClusterId] = None) -> None:
        instr = self._instrumentation
        if instr is not None:
            instr.phase("shared", self.node_id, self._own_cluster, round_id)
        share = GlobalShare(round_id, self._own_cluster, certificate,
                            forwarded=False)
        for cluster in self._clusters:
            if cluster == self._own_cluster:
                continue
            if only_cluster is not None and cluster != only_cluster:
                continue
            for target in self._share_targets(cluster, round_id):
                self.send(target, share)

    # ------------------------------------------------------------------
    # Step 2: receiving and re-broadcasting global shares
    # ------------------------------------------------------------------
    def _on_global_share(self, share: GlobalShare, sender: NodeId) -> None:
        cluster = share.cluster_id
        if cluster == self._own_cluster or cluster not in self._clusters:
            return
        round_id = share.round_id
        key = (cluster, round_id)
        if key in self._have_share or self._ordering.has_share(round_id,
                                                               cluster):
            return
        certificate = share.certificate
        if (certificate.cluster_id != cluster
                or certificate.round_id != round_id):
            return
        if isinstance(certificate, ThresholdCommitCertificate):
            scheme = (self._schemes or {}).get(cluster)
            if scheme is None:
                return  # cannot validate compact certificates
            try:
                certificate.verify_threshold(scheme)
            except InvalidCertificateError:
                return
        else:
            members = self._clusters[cluster]
            quorum = len(members) - max_faulty(len(members))
            try:
                certificate.verify(self.registry, quorum)
            except InvalidCertificateError:
                return
        self._shares[key] = share
        self._have_share.add(key)
        instr = self._instrumentation
        if instr is not None:
            # detail carries the receiving cluster, giving the hub the
            # per-remote-cluster share-latency breakdown.
            instr.phase("share_received", self.node_id, cluster, round_id,
                        detail=self._own_cluster)
        self._note_round_known(round_id)
        self._rvc.on_share_received(cluster, round_id)
        if sender.cluster != self._own_cluster:
            # Local phase of Figure 5: forward to the whole cluster.
            local_copy = GlobalShare(round_id, cluster, certificate,
                                     forwarded=True)
            self.broadcast(self._members, local_copy)
        self._ordering.add_share(round_id, cluster, certificate.request,
                                 certificate)
        self._arm_round_timers(round_id)
        self._maybe_propose_noops()

    def _lookup_share(self, cluster: ClusterId,
                      round_id: RoundId) -> Optional[GlobalShare]:
        return self._shares.get((cluster, round_id))

    def _arm_round_timers(self, round_id: RoundId) -> None:
        if round_id < self._ordering.next_round:
            return
        for cluster in self._ordering.missing_clusters(round_id):
            if cluster != self._own_cluster:
                self._rvc.arm_timer(cluster, round_id)

    def _note_round_known(self, round_id: RoundId) -> None:
        if round_id > self._max_known_round:
            self._max_known_round = round_id

    # ------------------------------------------------------------------
    # No-op rounds (§2.5)
    # ------------------------------------------------------------------
    def _maybe_propose_noops(self) -> None:
        """If other clusters progressed to rounds this cluster has no
        client requests for, the primary fills them with no-ops."""
        if not self._engine.is_primary or self._engine.queued_requests > 0:
            return
        committed_or_assigned = self._engine.next_seq - 1
        fills_needed = self._max_known_round - committed_or_assigned
        for _ in range(fills_needed):
            if self._engine.queued_requests > 0:
                break
            self._engine.submit_noop()

    # ------------------------------------------------------------------
    # Step 3: ordering and execution (§2.4)
    # ------------------------------------------------------------------
    def _execute_round(self, round_id: RoundId, ordered) -> None:
        instr = self._instrumentation
        if instr is not None:
            instr.phase("ordered", self.node_id, self._own_cluster,
                        round_id)
        for cluster, request, certificate in ordered:
            results, done_at = self.execute_batch(request.batch)
            self.ledger.append(round_id, cluster, request.batch, certificate,
                               batch_digest=request.digest(),
                               certificate_digest=certificate.digest())
            if (cluster == self._own_cluster
                    and request.signature is not None):
                reply = ClientReply(
                    batch_id=request.batch_id,
                    replica=self.node_id,
                    cluster_id=self._own_cluster,
                    round_id=round_id,
                    results_digest=self.executor.results_digest(results),
                    batch_len=len(request.batch),
                )
                self.send_at(done_at, request.client, reply)
        if instr is not None:
            instr.phase("executed", self.node_id, self._own_cluster,
                        round_id)
            # Round boundary: sample the queue depths the paper's
            # pipeline analysis turns on.
            instr.sample("geobft.queued_requests",
                         self._engine.queued_requests)
            instr.sample("geobft.in_flight", self._engine.in_flight)
            instr.sample("sim.pending_events", self.sim.pending_events)
        if self.metrics is not None:
            self.metrics.record_round(self.node_id, round_id, self.sim.now)
        self._gc_shares(round_id)
        if self._config.round_pipeline is not None:
            # Execution advanced: the round-pipeline gate may now admit
            # further proposals.
            self._engine.pump()

    def _gc_shares(self, executed_round: RoundId) -> None:
        horizon = executed_round - SHARE_RETENTION_ROUNDS
        if horizon <= self._shares_gc_upto:
            return
        # Rounds execute in order and an executed round's shares can
        # never re-enter (``has_share`` reports executed rounds as
        # held), so only the window since the last prune needs visiting
        # — no full-dict scan per round.
        shares = self._shares
        have = self._have_share
        for round_id in range(self._shares_gc_upto + 1, horizon + 1):
            for cluster in self._clusters:
                key = (cluster, round_id)
                if key in shares:
                    del shares[key]
                    have.discard(key)
        self._shares_gc_upto = horizon

    # ------------------------------------------------------------------
    # Recovery hooks
    # ------------------------------------------------------------------
    def _on_resend_requested(self, cluster: ClusterId,
                             from_round: RoundId) -> None:
        """A remote cluster proved it misses our shares from
        ``from_round``.  If this replica is the (healthy, current)
        primary, re-share immediately; otherwise the request stays
        pending for whichever primary a view change installs."""
        if not self._engine.is_primary or self._engine.in_view_change:
            return
        for round_id in range(from_round, self._engine.next_seq):
            decision = self._own_decisions.get(round_id)
            if decision is None:
                continue
            _request, certificate = decision
            self._share_globally(round_id, certificate,
                                 only_cluster=cluster)
        self._rvc.clear_resend(cluster)

    def _on_new_view_installed(self, view) -> None:
        self._rvc.note_local_view_change()
        if not self._engine.is_primary:
            return
        # A new primary resumes global sharing for every round a remote
        # cluster proved it was missing (end of §2.3).
        for cluster, from_round in self._rvc.pending_resend.items():
            for round_id in range(from_round, self._engine.next_seq):
                decision = self._own_decisions.get(round_id)
                if decision is None:
                    continue
                _request, certificate = decision
                self._share_globally(round_id, certificate,
                                     only_cluster=cluster)
            self._rvc.clear_resend(cluster)
