"""GeoBFT — the paper's primary contribution.

Exports the replica, its configuration, and the supporting sub-protocol
implementations (global sharing lives inside the replica; ordering and
remote view change are standalone, unit-testable components).
"""

from .config import (
    SHARING_ALL,
    SHARING_OPTIMISTIC,
    SHARING_SINGLE,
    GeoBftConfig,
)
from .geobft import GeoBftReplica
from .ordering import OrderingBuffer
from .remote_view_change import RemoteViewChangeManager

__all__ = [
    "SHARING_ALL",
    "SHARING_OPTIMISTIC",
    "SHARING_SINGLE",
    "GeoBftConfig",
    "GeoBftReplica",
    "OrderingBuffer",
    "RemoteViewChangeManager",
]
