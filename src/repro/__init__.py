"""repro — a reproduction of *ResilientDB: Global Scale Resilient
Blockchain Fabric* (Gupta, Rahnama, Hellings, Sadoghi; VLDB 2020).

The package implements the GeoBFT consensus protocol, the ResilientDB
ledger fabric around it, the four baseline protocols of the paper's
evaluation (PBFT, Zyzzyva, HotStuff, Steward), and a deterministic
geo-scale network simulation substrate seeded with the paper's own
Table 1 measurements.

The *stable* surface is :mod:`repro.api`, re-exported here: experiment
configs/results, the deployment builder, the scenario registry, and the
chaos engine's fault timelines.  Lower-level building blocks (protocol
replicas, ledger, workload, topology) are also re-exported for
convenience but their module layout is an implementation detail.

Quick start::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(
        protocol="geobft", num_clusters=4, replicas_per_cluster=4,
        batch_size=100, duration=5.0, warmup=1.0,
    ))
    print(result.describe())

Fault injection::

    from repro import Deployment, FaultTimeline, CrashFault

    deployment = Deployment(config)
    FaultTimeline([CrashFault("primary:1", at=1.0)]).install(deployment)
    result = deployment.run()
    assert deployment.invariants.ok

See ``examples/`` for runnable scenarios, ``docs/fault_injection.md``
for the fault taxonomy, and ``benchmarks/`` for the scripts that
regenerate every table and figure of the paper.
"""

from .api import (
    PROTOCOLS,
    SCENARIOS,
    Campaign,
    CampaignOutcome,
    ChaosContext,
    CrashFault,
    Deployment,
    EngineReport,
    EquivocateFault,
    ExperimentConfig,
    ExperimentResult,
    FAULT_KINDS,
    Fault,
    FaultTimeline,
    Instrumentation,
    InvariantReport,
    LatencyHistogram,
    LinkDelayFault,
    MessageLossFault,
    OmissionFault,
    ParallelRun,
    PartitionFault,
    ReportSpec,
    ResultStore,
    RunSpec,
    TRAFFIC_PROCESSES,
    TamperFault,
    TrafficSpec,
    OpenLoopSource,
    PaymentWorkload,
    WorkerInstrumentation,
    apply_scenario,
    calibrate_host,
    campaign_names,
    chaos_smoke_timeline,
    cluster_affinity_pairs,
    deployment_digest,
    expand_grid,
    fault_from_dict,
    get_campaign,
    load_trace_jsonl,
    lookahead_s,
    parallel_unsupported_reason,
    partition_clusters,
    register_campaign,
    register_scenario,
    run_campaign,
    run_experiment,
    run_parallel,
    scenario_names,
    traffic_summary,
)
from .bench.charts import ascii_chart, bar_chart
from .bench.metrics import Metrics
from .bench.tracing import MessageTracer
from .consensus.hotstuff import HotStuffReplica
from .consensus.pbft import PbftConfig, PbftEngine, PbftReplica
from .consensus.steward import StewardReplica
from .consensus.zyzzyva import ZyzzyvaClient, ZyzzyvaReplica
from .core.config import GeoBftConfig
from .core.geobft import GeoBftReplica
from .crypto.costs import CryptoCostModel
from .crypto.signatures import KeyRegistry
from .ledger.block import Transaction
from .ledger.blockchain import Blockchain
from .ledger.recovery import audit_ledger, rebuild_state, recover_from_peer
from .net.simulator import Simulation
from .net.topology import PAPER_REGIONS, Topology
from .types import ClusterSpec, NodeId, client_id, max_faulty, replica_id
from .workload.client import QuorumClient
from .workload.ycsb import YcsbWorkload

__version__ = "1.1.0"

__all__ = [
    # stable API (repro.api)
    "PROTOCOLS",
    "SCENARIOS",
    "Campaign",
    "CampaignOutcome",
    "ChaosContext",
    "CrashFault",
    "Deployment",
    "EngineReport",
    "EquivocateFault",
    "ExperimentConfig",
    "ExperimentResult",
    "FAULT_KINDS",
    "Fault",
    "FaultTimeline",
    "Instrumentation",
    "InvariantReport",
    "LatencyHistogram",
    "LinkDelayFault",
    "MessageLossFault",
    "OmissionFault",
    "ParallelRun",
    "PartitionFault",
    "ReportSpec",
    "ResultStore",
    "RunSpec",
    "TRAFFIC_PROCESSES",
    "TamperFault",
    "TrafficSpec",
    "OpenLoopSource",
    "PaymentWorkload",
    "WorkerInstrumentation",
    "apply_scenario",
    "calibrate_host",
    "campaign_names",
    "chaos_smoke_timeline",
    "cluster_affinity_pairs",
    "deployment_digest",
    "expand_grid",
    "fault_from_dict",
    "get_campaign",
    "load_trace_jsonl",
    "lookahead_s",
    "parallel_unsupported_reason",
    "partition_clusters",
    "register_campaign",
    "register_scenario",
    "run_campaign",
    "run_experiment",
    "run_parallel",
    "scenario_names",
    "traffic_summary",
    # convenience re-exports (layout may change)
    "Metrics",
    "HotStuffReplica",
    "PbftConfig",
    "PbftEngine",
    "PbftReplica",
    "StewardReplica",
    "ZyzzyvaClient",
    "ZyzzyvaReplica",
    "GeoBftConfig",
    "GeoBftReplica",
    "CryptoCostModel",
    "KeyRegistry",
    "Transaction",
    "Blockchain",
    "audit_ledger",
    "rebuild_state",
    "recover_from_peer",
    "ascii_chart",
    "bar_chart",
    "MessageTracer",
    "Simulation",
    "PAPER_REGIONS",
    "Topology",
    "ClusterSpec",
    "NodeId",
    "client_id",
    "max_faulty",
    "replica_id",
    "QuorumClient",
    "YcsbWorkload",
    "__version__",
]
