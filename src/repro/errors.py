"""Exception hierarchy for the ResilientDB/GeoBFT reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from protocol
violations detected at runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An experiment or deployment was configured inconsistently.

    Examples: a cluster size that does not satisfy ``n > 3f``, an unknown
    region name, or a batch size of zero.
    """


class CryptoError(ReproError):
    """A cryptographic operation failed (unknown key, bad signature...)."""


class InvalidSignatureError(CryptoError):
    """A digital signature failed verification."""


class InvalidMacError(CryptoError):
    """A message authentication code failed verification."""


class InvalidCertificateError(ReproError):
    """A commit certificate is malformed or fails verification."""


class LedgerError(ReproError):
    """The blockchain ledger was used inconsistently or is corrupt."""


class TamperedLedgerError(LedgerError):
    """Ledger verification detected a tampered or out-of-order block."""


class ProtocolError(ReproError):
    """A replica received a message that violates the protocol.

    Non-faulty replicas discard such messages; this error is raised only
    by strict validation helpers so tests can assert that malformed input
    is rejected.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was driven incorrectly."""


class MessageAliasingError(SimulationError):
    """A message object was mutated between send and delivery.

    Raised only under the runtime sanitizer (``REPRO_SANITIZE=1``), which
    fingerprints every message at send time and re-checks it at each
    delivery.  PBFT-family safety arguments assume all receivers of a
    broadcast process *identical* messages; an aliased object mutated
    after ``post()`` silently violates that in ways no static rule can
    prove.
    """


class WorkloadError(ReproError):
    """A workload generator was configured or used incorrectly."""
