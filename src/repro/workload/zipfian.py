"""Zipfian key-choice generators, as used by YCSB.

The paper's client transactions "follow a uniform Zipfian distribution"
(§4) — i.e. the standard YCSB request distributions.  This module
implements the YCSB generators:

* :class:`ZipfianGenerator` — the Gray et al. rejection-free algorithm
  YCSB uses, with the default skew constant θ = 0.99.
* :class:`ScrambledZipfianGenerator` — Zipfian popularity spread over the
  key space by hashing, so hot keys are not clustered at low ids.
* :class:`UniformGenerator` — uniform choice, for comparison runs.

All generators draw from an injected :class:`random.Random` so workloads
are reproducible per experiment seed.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..errors import WorkloadError

DEFAULT_ZIPFIAN_CONSTANT = 0.99

# zeta(n, theta) is O(n) to compute; memoize per (n, theta) since every
# client of an experiment shares the same key space.
_zeta_cache: Dict[Tuple[int, float], float] = {}


def zeta(n: int, theta: float) -> float:
    """The generalized harmonic number ``sum_{i=1..n} 1/i^theta``."""
    key = (n, theta)
    cached = _zeta_cache.get(key)
    if cached is not None:
        return cached
    value = sum(1.0 / i ** theta for i in range(1, n + 1))
    _zeta_cache[key] = value
    return value


class UniformGenerator:
    """Uniform key choice over ``[0, item_count)``."""

    def __init__(self, item_count: int, rng: random.Random):
        if item_count < 1:
            raise WorkloadError(f"item_count must be >= 1, got {item_count}")
        self._item_count = item_count
        self._rng = rng

    @property
    def item_count(self) -> int:
        """Size of the key space."""
        return self._item_count

    def next(self) -> int:
        """Draw the next key."""
        return self._rng.randrange(self._item_count)


class ZipfianGenerator:
    """YCSB's Zipfian generator (Gray et al., "Quickly generating
    billion-record synthetic databases").

    Key 0 is the most popular; popularity decays as ``1/rank^theta``.
    """

    def __init__(self, item_count: int, rng: random.Random,
                 theta: float = DEFAULT_ZIPFIAN_CONSTANT):
        if item_count < 1:
            raise WorkloadError(f"item_count must be >= 1, got {item_count}")
        if not 0.0 < theta < 1.0:
            raise WorkloadError(f"theta must be in (0, 1), got {theta}")
        self._item_count = item_count
        self._theta = theta
        self._rng = rng
        self._zetan = zeta(item_count, theta)
        self._zeta2 = zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        if item_count > 2:
            self._eta = (
                (1.0 - (2.0 / item_count) ** (1.0 - theta))
                / (1.0 - self._zeta2 / self._zetan)
            )
        else:
            # With one or two items the first two branches of next()
            # are exhaustive (u * zetan < 1 + 0.5^theta always), so eta
            # is never used — and its formula divides by zero at n = 2.
            self._eta = 0.0

    @property
    def item_count(self) -> int:
        """Size of the key space."""
        return self._item_count

    @property
    def theta(self) -> float:
        """Skew constant (YCSB default 0.99)."""
        return self._theta

    def next(self) -> int:
        """Draw the next key, skewed toward low ranks."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self._theta:
            return min(1, self._item_count - 1)
        rank = int(
            self._item_count
            * (self._eta * u - self._eta + 1.0) ** self._alpha
        )
        # The closed-form can land exactly on item_count as u -> 1.
        return min(rank, self._item_count - 1)


def _fnv1a_64(value: int) -> int:
    """64-bit FNV-1a hash of an integer, for key scrambling."""
    data = value.to_bytes(8, "little")
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class ScrambledZipfianGenerator:
    """Zipfian popularity, scattered across the key space by hashing.

    This is YCSB's default "zipfian" request distribution: the rank
    drawn from the Zipfian generator is hashed so that popular keys are
    spread over the table instead of being the lowest ids.
    """

    def __init__(self, item_count: int, rng: random.Random,
                 theta: float = DEFAULT_ZIPFIAN_CONSTANT):
        self._item_count = item_count
        self._zipfian = ZipfianGenerator(item_count, rng, theta)

    @property
    def item_count(self) -> int:
        """Size of the key space."""
        return self._item_count

    def next(self) -> int:
        """Draw the next key."""
        rank = self._zipfian.next()
        return _fnv1a_64(rank) % self._item_count


def make_generator(distribution: str, item_count: int, rng: random.Random):
    """Factory: ``"uniform"``, ``"zipfian"``, or ``"scrambled_zipfian"``."""
    if distribution == "uniform":
        return UniformGenerator(item_count, rng)
    if distribution == "zipfian":
        return ZipfianGenerator(item_count, rng)
    if distribution == "scrambled_zipfian":
        return ScrambledZipfianGenerator(item_count, rng)
    raise WorkloadError(f"unknown distribution {distribution!r}")
