"""Workload substrate: YCSB generators and closed-loop clients."""

from .client import QuorumClient
from .ycsb import YcsbWorkload
from .zipfian import (
    DEFAULT_ZIPFIAN_CONSTANT,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    make_generator,
    zeta,
)

__all__ = [
    "QuorumClient",
    "YcsbWorkload",
    "DEFAULT_ZIPFIAN_CONSTANT",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "make_generator",
    "zeta",
]
