"""Workload substrate: YCSB/payment generators and traffic drivers."""

from .client import QuorumClient
from .payment import DEFAULT_ACCOUNTS, PaymentWorkload
from .traffic import (
    TRAFFIC_PROCESSES,
    OpenLoopSource,
    TrafficSpec,
    split_users,
    traffic_summary,
)
from .ycsb import YcsbWorkload
from .zipfian import (
    DEFAULT_ZIPFIAN_CONSTANT,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    make_generator,
    zeta,
)

__all__ = [
    "QuorumClient",
    "YcsbWorkload",
    "DEFAULT_ACCOUNTS",
    "PaymentWorkload",
    "TRAFFIC_PROCESSES",
    "OpenLoopSource",
    "TrafficSpec",
    "split_users",
    "traffic_summary",
    "DEFAULT_ZIPFIAN_CONSTANT",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "make_generator",
    "zeta",
]
