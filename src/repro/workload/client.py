"""Closed-loop clients.

The paper drives ResilientDB with 160 k closed-loop YCSB clients spread
across all regions (§4).  :class:`QuorumClient` reproduces the client
contract of §2.4: it signs and submits request batches to its local
primary, accepts a result once ``f + 1`` replicas reply with matching
result digests, measures end-to-end latency, and keeps a configurable
number of batches outstanding (closed loop).  If a request is not
answered in time the client re-broadcasts it to all fallback targets —
the standard PBFT client behaviour that lets backups detect a primary
ignoring clients (and ultimately forces a view change).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..consensus.messages import ClientReply, ClientRequestBatch
from ..errors import ConfigurationError
from ..net.network import Network
from ..net.simulator import Simulation, Timer
from ..types import NodeId
from .ycsb import YcsbWorkload


class _PendingBatch:
    __slots__ = ("request", "submitted_at", "votes", "timer", "retries")

    def __init__(self, request: ClientRequestBatch, submitted_at: float):
        self.request = request
        self.submitted_at = submitted_at
        self.votes: Dict[bytes, Set[NodeId]] = {}
        self.timer: Optional[Timer] = None
        self.retries = 0


class QuorumClient:
    """A closed-loop client completing on ``f + 1`` matching replies."""

    def __init__(self,
                 node_id: NodeId,
                 region: str,
                 sim: Simulation,
                 network: Network,
                 registry,
                 workload: YcsbWorkload,
                 batch_size: int,
                 primary_targets: List[NodeId],
                 fallback_targets: List[NodeId],
                 reply_quorum: int,
                 outstanding: int = 4,
                 retry_timeout: float = 6.0,
                 max_batches: Optional[int] = None,
                 metrics=None):
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if reply_quorum < 1:
            raise ConfigurationError("reply_quorum must be >= 1")
        if outstanding < 1:
            raise ConfigurationError("outstanding must be >= 1")
        self._node_id = node_id
        self._region = region
        self._sim = sim
        self._network = network
        self._signer = registry.register(node_id)
        self._workload = workload
        self._batch_size = batch_size
        self._primary_targets = list(primary_targets)
        self._fallback_targets = list(fallback_targets)
        self._reply_quorum = reply_quorum
        self._outstanding = outstanding
        self._retry_timeout = retry_timeout
        self._max_batches = max_batches
        self._metrics = metrics

        self._pending: Dict[str, _PendingBatch] = {}
        self._submitted = 0
        self._completed = 0
        self._started = False
        # Once a request times out the client stops trusting the known
        # primary and broadcasts subsequent requests to all fallback
        # targets (the standard PBFT client reaction to an unresponsive
        # primary).  It stays in broadcast mode: it has no way to learn
        # which replica leads the new view.
        self._use_fallback = False
        network.register(self)

    # ------------------------------------------------------------------
    # Network node interface
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> NodeId:
        """The client's address."""
        return self._node_id

    @property
    def region(self) -> str:
        """The region this client lives in (its local cluster's)."""
        return self._region

    def deliver(self, message, sender: NodeId) -> None:
        """Receive a reply from a replica."""
        if isinstance(message, ClientReply):
            self._on_reply(message, sender)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def submitted_batches(self) -> int:
        """Batches submitted so far."""
        return self._submitted

    @property
    def completed_batches(self) -> int:
        """Batches acknowledged by a reply quorum."""
        return self._completed

    @property
    def pending_batches(self) -> int:
        """Batches currently in flight."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the closed loop (idempotent)."""
        if self._started:
            return
        self._started = True
        for _ in range(self._outstanding):
            if not self._submit_next():
                break

    def _submit_next(self) -> bool:
        if (self._max_batches is not None
                and self._submitted >= self._max_batches):
            return False
        batch = self._workload.next_batch(
            self._batch_size, prefix=f"{self._node_id}-"
        )
        batch_id = f"{self._node_id}:{self._submitted}"
        unsigned = ClientRequestBatch(batch_id, self._node_id, batch, None)
        request = ClientRequestBatch(
            batch_id, self._node_id, batch,
            self._signer.sign(unsigned),
        )
        pending = _PendingBatch(request, self._sim.now)
        self._pending[batch_id] = pending
        self._submitted += 1
        targets = (self._fallback_targets if self._use_fallback
                   else self._primary_targets)
        for target in targets:
            self._network.send(self._node_id, target, request)
        pending.timer = self._sim.schedule(
            self._retry_timeout, self._on_retry_timeout, batch_id
        )
        if self._metrics is not None:
            self._metrics.record_submitted(self._node_id, len(batch),
                                           self._sim.now)
        return True

    def _on_retry_timeout(self, batch_id: str) -> None:
        pending = self._pending.get(batch_id)
        if pending is None:
            return
        pending.retries += 1
        self._use_fallback = True
        # Standard PBFT fallback: broadcast to everyone so non-faulty
        # backups learn of the request and can suspect the primary.
        for target in self._fallback_targets:
            self._network.send(self._node_id, target, pending.request)
        backoff = self._retry_timeout * (2 ** pending.retries)
        pending.timer = self._sim.schedule(
            backoff, self._on_retry_timeout, batch_id
        )

    def _on_reply(self, reply: ClientReply, sender: NodeId) -> None:
        pending = self._pending.get(reply.batch_id)
        if pending is None or sender != reply.replica:
            return
        voters = pending.votes.setdefault(reply.results_digest, set())
        voters.add(sender)
        if len(voters) < self._reply_quorum:
            return
        # f + 1 matching replies: at least one is from a non-faulty
        # replica, so the result is final (§2.4).
        del self._pending[reply.batch_id]
        if pending.timer is not None:
            pending.timer.cancel()
        self._completed += 1
        if self._metrics is not None:
            latency = self._sim.now - pending.submitted_at
            self._metrics.record_completed(
                self._node_id, len(pending.request.batch), latency,
                self._sim.now,
            )
        self._submit_next()
