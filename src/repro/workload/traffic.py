"""Open-loop aggregate traffic sources.

The paper saturates ResilientDB with 160 k *closed-loop* YCSB clients
(§4); :class:`~repro.workload.client.QuorumClient` reproduces that
contract one object per client, so both memory and event count scale
with the modeled population.  This module replaces the population with
one :class:`OpenLoopSource` per region: a seeded aggregate arrival
process (:class:`TrafficSpec`) that injects *batched* request groups
through the simulator's ``post_group`` fast path.  Simulator work is
therefore O(arrivals × batching) — a run can model millions of users
for the cost of the batches they offer, not the objects they would be.

Client-side semantics survive the aggregation, implemented over
aggregate counters and a calendar of pending-cohort records instead of
per-client state:

* **admission control** — a bounded in-flight transaction window per
  source; arrivals beyond it are rejected (counted, never simulated),
* **deadline timeouts** — each injected cohort gets one sweep event at
  the spec deadline; still-pending requests retry or abandon,
* **seeded retry with backoff** — exponential backoff with seeded
  jitter, broadcast to the fallback targets (the standard PBFT client
  reaction to an unresponsive primary).

Completion mirrors the closed-loop clients: ``f + 1`` matching
``ClientReply`` digests (``mode="quorum"``), or Zyzzyva's two-phase
client protocol (all-``N`` matching ``SpecResponse`` fast path, commit
certificate + ``2F + 1`` local-commits after a timeout;
``mode="zyzzyva"``).  Goodput, abandonment, and retry counters flow
into :class:`~repro.bench.metrics.Metrics`, so overload tail latency
(p50/p95/p99) is first-class in every report.

Determinism: every stochastic choice (Poisson counts, retry jitter)
comes from a ``random.Random`` seeded from ``(config seed, cluster)``
— never from the simulator's shared RNG — so a source draws the same
sequence whether it runs in the serial engine or in the worker process
that owns its region.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..consensus.messages import (
    ClientReply,
    ClientRequestBatch,
    LocalCommit,
    SpecResponse,
    ZyzzyvaCommitCert,
)
from ..errors import ConfigurationError
from ..types import NodeId, max_faulty

#: Arrival processes a :class:`TrafficSpec` can name.  All are
#: deterministic rate *schedules*; ``constant`` additionally uses a
#: deterministic fractional accumulator instead of Poisson sampling.
TRAFFIC_PROCESSES = ("constant", "poisson", "diurnal", "flash")

#: Knuth's Poisson sampler is O(λ); chunking keeps each draw bounded
#: (a sum of independent Poissons is Poisson, so this is exact).
_POISSON_CHUNK = 400.0


@dataclass(frozen=True)
class TrafficSpec:
    """A seeded aggregate arrival process for one experiment.

    ``users`` is the modeled population deployment-wide (split evenly
    across regions); ``rate_per_user`` is each user's baseline offered
    rate in txn/s, so the deployment offers ``users × rate_per_user``
    txn/s at a rate multiplier of 1.  The curve processes modulate that
    baseline: ``diurnal`` by ``1 + amplitude·sin(2πt/period)``,
    ``flash`` by ``flash_factor`` inside ``[flash_at, flash_until)``.
    """

    process: str = "poisson"
    users: int = 100_000
    rate_per_user: float = 0.1
    #: Arrival aggregation interval (simulated seconds); one potential
    #: injection group per tick per source.
    tick: float = 0.05
    #: Client-side deadline per request attempt.
    deadline: float = 1.0
    max_retries: int = 2
    #: Base retry backoff; doubles per retry, with seeded jitter.
    retry_backoff: float = 0.5
    #: Admission window: max in-flight transactions per source.
    window: int = 20_000
    period: float = 20.0
    amplitude: float = 0.5
    flash_at: float = 0.0
    flash_until: float = 0.0
    flash_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.process not in TRAFFIC_PROCESSES:
            raise ConfigurationError(
                f"unknown traffic process {self.process!r}; expected one "
                f"of {TRAFFIC_PROCESSES}")
        if self.users < 1:
            raise ConfigurationError("traffic users must be >= 1")
        if self.rate_per_user <= 0:
            raise ConfigurationError("rate_per_user must be > 0")
        if self.tick <= 0:
            raise ConfigurationError("traffic tick must be > 0")
        if self.deadline <= 0:
            raise ConfigurationError("traffic deadline must be > 0")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.retry_backoff <= 0:
            raise ConfigurationError("retry_backoff must be > 0")
        if self.window < 1:
            raise ConfigurationError("traffic window must be >= 1")
        if self.period <= 0:
            raise ConfigurationError("diurnal period must be > 0")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ConfigurationError("amplitude must be in [0, 1]")
        if self.flash_factor <= 0:
            raise ConfigurationError("flash_factor must be > 0")
        if self.flash_until < self.flash_at:
            raise ConfigurationError("flash_until must be >= flash_at")

    # ------------------------------------------------------------------
    # Rate schedule
    # ------------------------------------------------------------------
    def rate_multiplier(self, now: float) -> float:
        """The deterministic rate-curve multiplier at simulated ``now``."""
        if self.process == "diurnal":
            phase = math.sin(2.0 * math.pi * now / self.period)
            return max(0.0, 1.0 + self.amplitude * phase)
        if self.process == "flash":
            if self.flash_at <= now < self.flash_until:
                return self.flash_factor
            return 1.0
        return 1.0

    def offered_txn_s(self, now: float) -> float:
        """Deployment-wide offered load (txn/s) at simulated ``now``."""
        return self.users * self.rate_per_user * self.rate_multiplier(now)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    #: CLI/short-form aliases for the longer field names.
    _ALIASES = {"rate": "rate_per_user", "retries": "max_retries",
                "backoff": "retry_backoff"}
    _INT_FIELDS = frozenset({"users", "max_retries", "window"})

    @classmethod
    def parse(cls, text: str) -> "TrafficSpec":
        """Build a spec from ``"process:key=value,..."`` CLI shorthand.

        Example: ``"poisson:users=1000000,rate=0.5,deadline=1.5"``.
        ``rate``, ``retries``, and ``backoff`` alias ``rate_per_user``,
        ``max_retries``, and ``retry_backoff``.
        """
        process, _, rest = text.partition(":")
        params: Dict[str, Any] = {"process": process.strip()}
        if rest.strip():
            for pair in rest.split(","):
                key, sep, value = pair.partition("=")
                key = cls._ALIASES.get(key.strip(), key.strip())
                if not sep or not value.strip():
                    raise ConfigurationError(
                        f"traffic spec {text!r}: expected key=value, "
                        f"got {pair!r}")
                try:
                    params[key] = (int(value) if key in cls._INT_FIELDS
                                   else float(value))
                except ValueError as exc:
                    raise ConfigurationError(
                        f"traffic spec {text!r}: bad value for "
                        f"{key}: {exc}") from None
        try:
            return cls(**params)
        except TypeError:
            raise ConfigurationError(
                f"traffic spec {text!r}: unknown key among "
                f"{sorted(params)}") from None

    @classmethod
    def from_value(cls, value: Any) -> Optional["TrafficSpec"]:
        """Coerce a config value (None / spec / str / dict) to a spec."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value) if value else None
        if isinstance(value, dict):
            return cls(**value)
        raise ConfigurationError(
            f"traffic must be a TrafficSpec, spec string, or dict; "
            f"got {type(value).__name__}")


def split_users(users: int, clusters: int) -> List[int]:
    """Deterministically split a population over ``clusters`` regions."""
    base, extra = divmod(users, clusters)
    return [base + (1 if c < extra else 0) for c in range(clusters)]


def _poisson(rng: random.Random, lam: float) -> int:
    """An exact seeded Poisson draw (Knuth, chunked for large λ)."""
    count = 0
    while lam > _POISSON_CHUNK:
        count += _poisson(rng, _POISSON_CHUNK)
        lam -= _POISSON_CHUNK
    if lam <= 0.0:
        return count
    threshold = math.exp(-lam)
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


class _PendingCohortEntry:
    """One in-flight request batch (aggregate, not per-user)."""

    __slots__ = ("request", "submitted_at", "retries", "votes",
                 "local_commits", "in_commit_phase")

    def __init__(self, request: ClientRequestBatch, submitted_at: float):
        self.request = request
        self.submitted_at = submitted_at
        self.retries = 0
        #: digest key -> {replica: response} (quorum mode keys by the
        #: results digest; zyzzyva by results+history, keeping the
        #: responses for the commit certificate).
        self.votes: Dict[bytes, Dict[NodeId, Any]] = {}
        self.local_commits: Optional[set] = None
        self.in_commit_phase = False


class OpenLoopSource:
    """A per-region open-loop traffic source (an aggregate client).

    Registered on the network like any client (``node_id`` /
    ``region`` / ``start()`` / ``deliver()``), so the serial engine and
    the parallel workers drive it exactly like a ``QuorumClient`` — the
    owning worker starts it, and its arrivals stay region-affine.
    """

    __slots__ = ("_node_id", "_region", "_sim", "_network", "_signer",
                 "_workload", "_batch_size", "_spec", "_users",
                 "_mode", "_primary_targets", "_fallback_targets",
                 "_reply_quorum", "_members", "_n", "_f", "_metrics",
                 "_rng", "_carry", "_pending", "_inflight_txns",
                 "_submitted", "_completed", "_started", "_use_fallback",
                 "offered_txns", "rejected_txns", "abandoned_txns",
                 "retried_batches")

    def __init__(self,
                 node_id: NodeId,
                 region: str,
                 sim,
                 network,
                 registry,
                 workload,
                 batch_size: int,
                 spec: TrafficSpec,
                 users: int,
                 seed: int,
                 mode: str = "quorum",
                 primary_targets: Optional[List[NodeId]] = None,
                 fallback_targets: Optional[List[NodeId]] = None,
                 reply_quorum: int = 1,
                 members: Optional[List[NodeId]] = None,
                 metrics=None):
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if mode not in ("quorum", "zyzzyva"):
            raise ConfigurationError(
                f"unknown traffic completion mode {mode!r}")
        if mode == "zyzzyva" and not members:
            raise ConfigurationError(
                "zyzzyva traffic mode needs the member list")
        self._node_id = node_id
        self._region = region
        self._sim = sim
        self._network = network
        self._signer = registry.register(node_id)
        self._workload = workload
        self._batch_size = batch_size
        self._spec = spec
        self._users = users
        self._mode = mode
        self._primary_targets = list(primary_targets or [])
        self._fallback_targets = list(fallback_targets or [])
        self._reply_quorum = reply_quorum
        self._members = list(members or [])
        self._n = len(self._members)
        self._f = max_faulty(self._n) if self._members else 0
        self._metrics = metrics
        # Worker-local determinism: a per-source stream derived from the
        # experiment seed and the region, never the simulator's RNG.
        self._rng = random.Random(
            seed * 1_000_003 + node_id.cluster * 7_919 + 17)
        self._carry = 0.0
        self._pending: Dict[str, _PendingCohortEntry] = {}
        self._inflight_txns = 0
        self._submitted = 0
        self._completed = 0
        self._started = False
        self._use_fallback = False
        # Aggregate client-semantics counters (mirrored into Metrics).
        self.offered_txns = 0
        self.rejected_txns = 0
        self.abandoned_txns = 0
        self.retried_batches = 0
        network.register(self)

    # ------------------------------------------------------------------
    # Network node interface
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> NodeId:
        """The source's network address."""
        return self._node_id

    @property
    def region(self) -> str:
        """The region whose population this source aggregates."""
        return self._region

    @property
    def users(self) -> int:
        """Modeled users behind this source."""
        return self._users

    @property
    def pending_batches(self) -> int:
        """In-flight request batches."""
        return len(self._pending)

    @property
    def submitted_batches(self) -> int:
        """Batches injected so far."""
        return self._submitted

    @property
    def completed_batches(self) -> int:
        """Batches acknowledged by the protocol's completion rule."""
        return self._completed

    def deliver(self, message, sender: NodeId) -> None:
        """Receive replica responses."""
        if self._mode == "quorum":
            if isinstance(message, ClientReply):
                self._on_reply(message, sender)
        else:
            if isinstance(message, SpecResponse):
                self._on_spec_response(message, sender)
            elif isinstance(message, LocalCommit):
                self._on_local_commit(message, sender)

    # ------------------------------------------------------------------
    # Arrival process
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the arrival schedule (idempotent)."""
        if self._started:
            return
        self._started = True
        self._sim.post(0.0, self._tick)

    def _arrivals_in_tick(self, now: float) -> int:
        """Batch arrivals for the tick starting at ``now``."""
        spec = self._spec
        lam = (self._users * spec.rate_per_user * spec.rate_multiplier(now)
               * spec.tick / self._batch_size)
        if spec.process == "constant":
            self._carry += lam
            count = int(self._carry)
            self._carry -= count
            return count
        return _poisson(self._rng, lam)

    def _tick(self) -> None:
        now = self._sim.now
        count = self._arrivals_in_tick(now)
        if count:
            txns = count * self._batch_size
            self.offered_txns += txns
            if self._metrics is not None:
                self._metrics.record_offered(self._node_id, txns, now)
            capacity = (self._spec.window - self._inflight_txns) \
                // self._batch_size
            admit = min(count, max(0, capacity))
            if admit < count:
                rejected = (count - admit) * self._batch_size
                self.rejected_txns += rejected
                if self._metrics is not None:
                    self._metrics.record_rejected(self._node_id, rejected,
                                                  now)
            if admit > 0:
                # One queue entry stands in for the whole admitted
                # group; the callback credits the skipped events so the
                # digest matches an unbatched schedule.
                self._sim.post_group(0.0, admit, self._inject, admit)
        self._sim.post(self._spec.tick, self._tick)

    def _inject(self, count: int) -> None:
        self._sim.count_extra_events(count - 1)
        now = self._sim.now
        cohort: List[str] = []
        for _ in range(count):
            batch = self._workload.next_batch(
                self._batch_size, prefix=f"{self._node_id}-")
            batch_id = f"{self._node_id}:{self._submitted}"
            unsigned = ClientRequestBatch(batch_id, self._node_id, batch,
                                          None)
            request = ClientRequestBatch(
                batch_id, self._node_id, batch,
                self._signer.sign(unsigned))
            self._pending[batch_id] = _PendingCohortEntry(request, now)
            self._submitted += 1
            self._inflight_txns += len(batch)
            self._send_request(request)
            if self._metrics is not None:
                self._metrics.record_submitted(self._node_id, len(batch),
                                               now)
            cohort.append(batch_id)
        # One deadline sweep covers the whole cohort: the pending-cohort
        # calendar stays O(arrival groups), not O(modeled users).
        self._sim.post(self._spec.deadline, self._sweep, tuple(cohort))

    def _send_request(self, request: ClientRequestBatch) -> None:
        if self._mode == "zyzzyva":
            self._network.send(self._node_id, self._members[0], request)
            return
        targets = (self._fallback_targets if self._use_fallback
                   else self._primary_targets)
        for target in targets:
            self._network.send(self._node_id, target, request)

    # ------------------------------------------------------------------
    # Deadline sweeps: retry with backoff, or abandon
    # ------------------------------------------------------------------
    def _sweep(self, batch_ids: Tuple[str, ...]) -> None:
        for batch_id in batch_ids:
            self._on_deadline(batch_id)

    def _on_deadline(self, batch_id: str) -> None:
        pending = self._pending.get(batch_id)
        if pending is None:
            return
        if pending.retries >= self._spec.max_retries:
            self._abandon(batch_id, pending)
            return
        pending.retries += 1
        self.retried_batches += 1
        now = self._sim.now
        if self._metrics is not None:
            self._metrics.record_retried(self._node_id, 1, now)
        if self._mode == "zyzzyva":
            self._zyzzyva_timeout(batch_id, pending)
        else:
            # Standard PBFT client fallback: broadcast so non-faulty
            # backups learn of the request and can suspect the primary.
            self._use_fallback = True
            for target in self._fallback_targets:
                self._network.send(self._node_id, target, pending.request)
        backoff = self._spec.retry_backoff * (2 ** (pending.retries - 1))
        # Seeded jitter de-synchronizes retry storms deterministically.
        backoff *= 1.0 + 0.25 * self._rng.random()
        self._sim.post(backoff, self._sweep, (batch_id,))

    def _abandon(self, batch_id: str, pending: _PendingCohortEntry) -> None:
        del self._pending[batch_id]
        txns = len(pending.request.batch)
        self._inflight_txns -= txns
        self.abandoned_txns += txns
        if self._metrics is not None:
            self._metrics.record_abandoned(self._node_id, txns,
                                           self._sim.now)

    # ------------------------------------------------------------------
    # Completion — quorum mode (f + 1 matching ClientReply digests)
    # ------------------------------------------------------------------
    def _on_reply(self, reply: ClientReply, sender: NodeId) -> None:
        pending = self._pending.get(reply.batch_id)
        if pending is None or sender != reply.replica:
            return
        voters = pending.votes.setdefault(reply.results_digest, {})
        voters[sender] = reply
        if len(voters) >= self._reply_quorum:
            self._complete(reply.batch_id, pending)

    # ------------------------------------------------------------------
    # Completion — zyzzyva mode (all-N fast path, commit-cert slow path)
    # ------------------------------------------------------------------
    def _on_spec_response(self, response: SpecResponse,
                          sender: NodeId) -> None:
        pending = self._pending.get(response.batch_id)
        if pending is None or sender != response.replica:
            return
        key = response.results_digest + response.history_digest
        group = pending.votes.setdefault(key, {})
        group[sender] = response
        if len(group) >= self._n:
            self._complete(response.batch_id, pending)

    def _zyzzyva_timeout(self, batch_id: str,
                         pending: _PendingCohortEntry) -> None:
        if pending.in_commit_phase:
            return
        best = max(pending.votes.values(), key=len, default={})
        if len(best) >= 2 * self._f + 1:
            # Commit phase: certificate of 2F + 1 matching responses.
            pending.in_commit_phase = True
            responses = tuple(list(best.values())[: 2 * self._f + 1])
            sample = responses[0]
            cert = ZyzzyvaCommitCert(batch_id, sample.view, sample.seq,
                                     responses)
            pending.local_commits = set()
            for member in self._members:
                self._network.send(self._node_id, member, cert)
        else:
            # Not enough responses: retransmit to everyone and wait.
            for member in self._members:
                self._network.send(self._node_id, member, pending.request)

    def _on_local_commit(self, message: LocalCommit,
                         sender: NodeId) -> None:
        pending = self._pending.get(message.batch_id)
        if pending is None or pending.local_commits is None:
            return
        pending.local_commits.add(sender)
        if len(pending.local_commits) >= 2 * self._f + 1:
            self._complete(message.batch_id, pending)

    # ------------------------------------------------------------------
    def _complete(self, batch_id: str,
                  pending: _PendingCohortEntry) -> None:
        del self._pending[batch_id]
        txns = len(pending.request.batch)
        self._inflight_txns -= txns
        self._completed += 1
        if self._metrics is not None:
            self._metrics.record_completed(
                self._node_id, txns, self._sim.now - pending.submitted_at,
                self._sim.now)


def traffic_summary(metrics, spec: TrafficSpec) -> Dict[str, Any]:
    """The result row's ``traffic`` block from a finished metrics sink.

    Pure integer counters plus ratios of final sums, so the serial
    engine and the parallel merge compute bit-identical values.
    """
    window = metrics.measurement_window()
    offered = metrics.measured_offered_txns
    abandoned = metrics.measured_abandoned_txns
    return {
        "modeled_users": spec.users,
        "process": spec.process,
        "offered_txns": offered,
        "offered_txn_s": offered / window if window > 0 else 0.0,
        "rejected_txns": metrics.measured_rejected_txns,
        "abandoned_txns": abandoned,
        "retried_batches": metrics.measured_retried_batches,
        "goodput_txn_s": metrics.throughput_txn_s(),
        "abandonment_rate": abandoned / offered if offered else 0.0,
    }


__all__ = [
    "OpenLoopSource",
    "TRAFFIC_PROCESSES",
    "TrafficSpec",
    "split_users",
    "traffic_summary",
]
