"""Interbank payment workload: conflict-bearing transfers.

The paper motivates ResilientDB with enterprise workloads such as
financial transaction processing (§3, "Request batching").  This module
models a simple interbank payment network: branches submit transfer
instructions against shared account records.  Transfers are encoded as
read-modify-write transactions on the YCSB-style table (each account is
one record whose value accumulates a transfer journal), so deterministic
execution (§2.4) guarantees every replica derives the same account
histories — and the ``modify`` ops make execution order-sensitive, so
non-divergence is actually exercised, unlike blind YCSB updates.

Promoted from ``examples/payment_network.py`` into the workload package
so the ``payment_network`` scenario (and the overload campaign) can
reach it through ``--scenario``.
"""

from __future__ import annotations

import random

from ..errors import WorkloadError
from ..ledger.block import Batch, Transaction

#: Default shared-account table size (small on purpose: a hot account
#: set produces real read-modify-write conflicts).
DEFAULT_ACCOUNTS = 200


class PaymentWorkload:
    """Generates transfer instructions instead of raw YCSB updates.

    Duck-types the piece of :class:`~repro.workload.ycsb.YcsbWorkload`
    the clients use: ``next_batch(size, prefix)``.  ``branch`` tags each
    journal entry with the submitting bank branch.
    """

    __slots__ = ("_branch", "_rng", "_counter", "_accounts")

    def __init__(self, branch: str, seed: int,
                 accounts: int = DEFAULT_ACCOUNTS):
        if accounts < 1:
            raise WorkloadError(f"accounts must be >= 1, got {accounts}")
        self._branch = branch
        self._rng = random.Random(seed)
        self._counter = 0
        self._accounts = accounts

    @property
    def accounts(self) -> int:
        """Size of the shared account table."""
        return self._accounts

    @property
    def generated_txns(self) -> int:
        """Transfers generated so far."""
        return self._counter

    def next_batch(self, size: int, prefix: str = "") -> Batch:
        """Generate ``size`` transfers (journal-appending modify ops)."""
        if size < 1:
            raise WorkloadError(f"batch size must be >= 1, got {size}")
        batch = []
        for _ in range(size):
            self._counter += 1
            src = self._rng.randrange(self._accounts)
            dst = self._rng.randrange(self._accounts)
            amount = self._rng.randint(1, 500)
            # A transfer appends a journal entry to the source account's
            # record.
            txn = Transaction(
                txn_id=f"{prefix}pay{self._counter}",
                op="modify",
                key=src,
                value=f"{self._branch}->acct{dst}:{amount}",
            )
            batch.append(txn.prime_encoding())
        return tuple(batch)


__all__ = ["DEFAULT_ACCOUNTS", "PaymentWorkload"]
