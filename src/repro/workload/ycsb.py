"""YCSB workload generation.

Mirrors the paper's setup (§4): each client transaction queries a YCSB
table with a 600 k-record active set; the evaluation uses *write*
queries ("as those are typically more costly than read-only queries")
drawn Zipfian-style, and both clients and primaries batch requests
(default batch size 100).
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import WorkloadError
from ..ledger.block import Batch, Transaction
from ..ledger.store import DEFAULT_RECORD_COUNT
from .zipfian import make_generator

DEFAULT_VALUE_SIZE = 16


class YcsbWorkload:
    """Generates YCSB transactions and request batches.

    ``write_fraction`` is the probability a transaction is an update;
    the remainder are reads.  The paper's experiments use 1.0 (write
    queries only).
    """

    def __init__(self,
                 record_count: int = DEFAULT_RECORD_COUNT,
                 write_fraction: float = 1.0,
                 distribution: str = "zipfian",
                 value_size: int = DEFAULT_VALUE_SIZE,
                 seed: int = 0,
                 rng: Optional[random.Random] = None):
        if not 0.0 <= write_fraction <= 1.0:
            raise WorkloadError(
                f"write_fraction must be in [0, 1], got {write_fraction}"
            )
        if value_size < 1:
            raise WorkloadError(f"value_size must be >= 1, got {value_size}")
        self._rng = rng if rng is not None else random.Random(seed)
        self._keys = make_generator(distribution, record_count, self._rng)
        self._write_fraction = write_fraction
        self._value_size = value_size
        self._counter = 0

    @property
    def record_count(self) -> int:
        """Active-set size of the target table."""
        return self._keys.item_count

    @property
    def generated_txns(self) -> int:
        """Transactions generated so far."""
        return self._counter

    def _next_value(self) -> str:
        return f"v{self._counter}".ljust(self._value_size, "x")

    def next_txn(self, txn_id: Optional[str] = None) -> Transaction:
        """Generate one transaction."""
        self._counter += 1
        if txn_id is None:
            txn_id = f"t{self._counter}"
        key = self._keys.next()
        if self._rng.random() < self._write_fraction:
            txn = Transaction(txn_id, "update", key, self._next_value())
        else:
            txn = Transaction(txn_id, "read", key)
        # Workload-rate minting: cache the canonical bytes now, in one
        # interpolation, instead of via the encoder's dispatch loop the
        # first time a batch digest touches the transaction.
        return txn.prime_encoding()

    def next_batch(self, size: int, prefix: str = "") -> Batch:
        """Generate a batch of ``size`` transactions.

        ``prefix`` namespaces transaction ids per client so ids stay
        globally unique across concurrent clients.
        """
        if size < 1:
            raise WorkloadError(f"batch size must be >= 1, got {size}")
        return tuple(
            self.next_txn(f"{prefix}t{self._counter + 1}")
            for _ in range(size)
        )

    # ------------------------------------------------------------------
    # Standard YCSB workload presets
    # ------------------------------------------------------------------
    @classmethod
    def workload_a(cls, **kwargs) -> "YcsbWorkload":
        """YCSB-A: update heavy (50% reads / 50% updates), Zipfian."""
        kwargs.setdefault("write_fraction", 0.5)
        return cls(**kwargs)

    @classmethod
    def workload_b(cls, **kwargs) -> "YcsbWorkload":
        """YCSB-B: read mostly (95% reads / 5% updates), Zipfian."""
        kwargs.setdefault("write_fraction", 0.05)
        return cls(**kwargs)

    @classmethod
    def workload_c(cls, **kwargs) -> "YcsbWorkload":
        """YCSB-C: read only, Zipfian."""
        kwargs.setdefault("write_fraction", 0.0)
        return cls(**kwargs)

    @classmethod
    def paper_workload(cls, **kwargs) -> "YcsbWorkload":
        """The paper's evaluation workload: write queries only (§4)."""
        kwargs.setdefault("write_fraction", 1.0)
        return cls(**kwargs)
