"""(k, n) threshold signatures.

The paper notes (§2.2, §4) that GeoBFT can *optionally* represent the
``n - f`` commit-message signatures of a commit certificate by a single
constant-size threshold signature [Shoup 2000], shrinking the
certificates exchanged between clusters.  HotStuff and Steward as
published also rely on threshold signatures, though the paper's own
implementations omit them (§3, "Other protocols").

This module implements a simulation-grade threshold scheme used by the
ablation benchmarks: ``k`` of ``n`` share-holders each produce a share
over a payload; any ``k`` valid shares combine into a fixed-size
:class:`ThresholdSignature` that verifies against the group.  Shares and
the combined signature are HMAC tags under secrets derived from a group
key, so the unforgeability story matches :mod:`repro.crypto.signatures`:
without ``k`` distinct share-holders' cooperation no valid combined
signature can be produced (the combiner checks every share).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable

from ..errors import CryptoError
from ..types import NodeId
from .digests import encode_canonical

THRESHOLD_SIGNATURE_SIZE = 64


@dataclass(frozen=True)
class SignatureShare:
    """One share-holder's contribution toward a threshold signature."""

    member: NodeId
    tag: bytes


@dataclass(frozen=True)
class ThresholdSignature:
    """A combined, constant-size group signature over a payload."""

    group: str
    tag: bytes

    def size_bytes(self) -> int:
        """Wire size — constant, independent of ``n`` or ``k``."""
        return THRESHOLD_SIGNATURE_SIZE


class ThresholdScheme:
    """A (k, n) threshold signature group.

    Create one scheme per group (e.g. per cluster), then hand each member
    its share key via :meth:`share_signer`.  Any party holding the scheme
    can verify combined signatures; only ``k`` cooperating members can
    produce one.
    """

    def __init__(self, group: str, members: Iterable[NodeId], k: int,
                 seed: bytes = b"resilientdb-threshold") -> None:
        self._group = group
        self._members = list(members)
        if k < 1 or k > len(self._members):
            raise CryptoError(
                f"threshold k={k} out of range for {len(self._members)} members"
            )
        self._k = k
        group_key = hashlib.sha256(seed + group.encode()).digest()
        self._group_key = group_key
        self._share_keys: Dict[NodeId, bytes] = {
            member: hashlib.sha256(group_key + str(member).encode()).digest()
            for member in self._members
        }

    @property
    def group(self) -> str:
        """Group identifier (e.g. ``"cluster-2"``)."""
        return self._group

    @property
    def k(self) -> int:
        """Number of shares required to combine."""
        return self._k

    def share_signer(self, member: NodeId) -> Callable[[Any], SignatureShare]:
        """Return ``sign_share(payload) -> SignatureShare`` for ``member``.

        The returned closure captures the member's share key; it is the
        only way to produce that member's shares.
        """
        key = self._share_keys.get(member)
        if key is None:
            raise CryptoError(f"{member} is not a member of group {self._group}")

        def sign_share(payload: Any) -> SignatureShare:
            message = encode_canonical((self._group, str(member), payload))
            return SignatureShare(
                member, hmac.new(key, message, hashlib.sha256).digest()
            )

        return sign_share

    def verify_share(self, share: SignatureShare, payload: Any) -> bool:
        """Check one member's share over ``payload``."""
        key = self._share_keys.get(share.member)
        if key is None:
            return False
        message = encode_canonical((self._group, str(share.member), payload))
        expected = hmac.new(key, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, share.tag)

    def combine(self, shares: Iterable[SignatureShare],
                payload: Any) -> ThresholdSignature:
        """Combine ``k`` valid shares from distinct members.

        Raises :class:`CryptoError` if fewer than ``k`` distinct valid
        shares are supplied.
        """
        valid_members = set()
        for share in shares:
            if self.verify_share(share, payload):
                valid_members.add(share.member)
        if len(valid_members) < self._k:
            raise CryptoError(
                f"need {self._k} valid shares, got {len(valid_members)}"
            )
        message = encode_canonical((self._group, payload))
        tag = hmac.new(self._group_key, message, hashlib.sha256).digest()
        return ThresholdSignature(self._group, tag)

    def verify(self, signature: ThresholdSignature, payload: Any) -> bool:
        """Verify a combined group signature."""
        if signature.group != self._group:
            return False
        message = encode_canonical((self._group, payload))
        expected = hmac.new(self._group_key, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature.tag)
