"""SHA256 message digests over a canonical encoding.

ResilientDB uses SHA256 to produce collision-resistant digests of client
requests and protocol messages (paper §3).  The protocols in this library
sign and compare digests rather than whole payloads, exactly as the real
system does.

Payloads are arbitrary trees of Python primitives (ints, strings, bytes,
bools, ``None``, tuples/lists, dicts with string keys).  They are encoded
canonically so that two structurally equal payloads always hash to the
same digest, regardless of dict insertion order.

Hot-path design
---------------
Canonical encoding is the host-side cost that dominates a simulated run:
a batch of 100 transactions is re-encoded at every sign, verify, MAC,
and digest of every message that embeds it, at every replica.  Two
mechanisms make encoding compute-once across a whole deployment:

* The encoder is **iterative** (an explicit work stack instead of
  recursion), so arbitrarily deep payloads — far beyond Python's
  recursion limit — encode without blowing the stack.
* Frozen message dataclasses mix in :class:`CachedEncodable`: the first
  time such an object is encoded, its canonical bytes (and, on demand,
  their SHA256 digest) are memoized on the instance.  Because the
  simulator passes message *objects* between replicas (no
  serialization), one cached encoding serves every replica that touches
  the message, while a reconstructed (hence new) object can never reuse
  a stale cache entry.
"""

from __future__ import annotations

import hashlib
from typing import Any

from ..errors import CryptoError

DIGEST_SIZE = 32


class EncodingCacheStats:
    """Process-wide hit/miss counters for the :class:`CachedEncodable`
    memos (telemetry only — reading or resetting them never changes what
    is encoded).

    ``encode``/``digest`` count top-level :meth:`CachedEncodable.encoded`
    / :meth:`CachedEncodable.payload_digest` calls; ``splice`` counts
    nested cacheable objects encountered while encoding an enclosing
    message (a splice hit reuses the child's cached bytes in place of a
    payload-tree walk).
    """

    __slots__ = ("encode_hits", "encode_misses", "digest_hits",
                 "digest_misses", "splice_hits", "splice_misses")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.encode_hits = 0
        self.encode_misses = 0
        self.digest_hits = 0
        self.digest_misses = 0
        self.splice_hits = 0
        self.splice_misses = 0

    def snapshot(self) -> dict:
        """Current counter values as a plain dict."""
        return {name: getattr(self, name) for name in self.__slots__}

    def delta_since(self, baseline: dict) -> dict:
        """Counter increments since a :meth:`snapshot` was taken."""
        return {name: getattr(self, name) - baseline.get(name, 0)
                for name in self.__slots__}


#: The process-wide counters.  Module-level (not per-deployment) because
#: the caches themselves live on message instances that may flow through
#: several deployments; per-run accounting snapshots and diffs this.
ENCODING_STATS = EncodingCacheStats()


def encoding_cache_stats() -> EncodingCacheStats:
    """The process-wide :class:`EncodingCacheStats` instance."""
    return ENCODING_STATS


class CachedEncodable:
    """Mixin for immutable ``payload()``-bearing message objects.

    Instances memoize their canonical byte encoding and its SHA256
    digest the first time either is requested; nested encodes splice the
    cached bytes instead of re-walking the payload tree.  Only mix this
    into *immutable* objects (frozen dataclasses): the cache is keyed by
    object identity, so a mutated payload would silently keep its old
    encoding.  ``dataclasses.replace`` and any other reconstruction
    produce a fresh instance with an empty cache.

    The cache attributes are declared as ``__slots__`` so that
    subclasses which declare their own ``__slots__`` (the hottest
    message classes) still memoize: slot storage works whether or not
    the subclass keeps a ``__dict__``.  All cache reads go through
    attribute access (never ``__dict__``), because a slot descriptor
    shadows the instance dict.
    """

    __slots__ = ("_encoded_cache", "_payload_digest_cache", "_size_cache",
                 "_digest_cache")

    # Bare annotations for the slot attributes (no assignments — a
    # class-body value would conflict with __slots__): they give type
    # checkers the cache types without creating dataclass fields in the
    # frozen subclasses.
    _encoded_cache: bytes
    _payload_digest_cache: bytes
    _size_cache: int
    _digest_cache: bytes

    def payload(self) -> tuple:
        """The canonical primitive tree this object encodes.

        Subclasses (the message dataclasses) implement this; the mixin
        only consumes it.
        """
        raise NotImplementedError

    def encoded(self) -> bytes:
        """Canonical byte encoding of ``payload()``, computed once."""
        try:
            cached = self._encoded_cache
        except AttributeError:
            ENCODING_STATS.encode_misses += 1
            out: list[bytes] = []
            _encode(self, out)
            cached = b"".join(out)
            object.__setattr__(self, "_encoded_cache", cached)
        else:
            ENCODING_STATS.encode_hits += 1
        return cached

    def payload_digest(self) -> bytes:
        """SHA256 digest of the canonical encoding, computed once.

        Distinct from the protocol-level ``digest()`` some messages
        expose (e.g. a request's digest covers only its transaction
        batch); this one covers the full ``payload()``.
        """
        try:
            cached = self._payload_digest_cache
        except AttributeError:
            ENCODING_STATS.digest_misses += 1
            cached = hashlib.sha256(self.encoded()).digest()
            object.__setattr__(self, "_payload_digest_cache", cached)
        else:
            ENCODING_STATS.digest_hits += 1
        return cached

    # ------------------------------------------------------------------
    # Pickling (cross-process message exchange)
    # ------------------------------------------------------------------
    # Frozen dataclasses that declare ``__slots__`` cannot use pickle's
    # default slot restoration: it goes through ``setattr``, which the
    # frozen ``__setattr__`` rejects.  The parallel engine ships messages
    # between worker processes, so restore state via
    # ``object.__setattr__`` explicitly.  The memoized caches travel
    # with the message: they are pure functions of the frozen content,
    # and shipping them keeps an imported certificate chain as cheap to
    # handle as a locally produced one (re-deriving a deep chain on the
    # receiving worker measurably dominates cross-worker message cost).

    def __getstate__(self) -> dict:
        state = {}
        for klass in type(self).__mro__:
            slots = getattr(klass, "__slots__", ())
            if isinstance(slots, str):
                slots = (slots,)
            for slot in slots:
                try:
                    state[slot] = getattr(self, slot)
                except AttributeError:
                    pass
        instance_dict = getattr(self, "__dict__", None)
        if instance_dict:
            state.update(instance_dict)
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)


class _CacheMark:
    """Stack frame recording where a cacheable object's encoding starts."""

    __slots__ = ("obj", "start")

    def __init__(self, obj: Any, start: int) -> None:
        self.obj = obj
        self.start = start


class _Emit:
    """Stack frame holding literal bytes to append (closing markers)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data


_SEQ_CLOSE = _Emit(b";")


def _encode(value: Any, out: list[bytes]) -> None:
    """Append a canonical, unambiguous encoding of ``value`` to ``out``.

    Iterative: an explicit stack replaces recursion so nesting depth is
    bounded by memory, not the interpreter's recursion limit (deep
    payloads — ≥10k levels — are exercised by the test suite).

    The dispatch checks exact classes first (the overwhelmingly common
    case on the hot path) and falls back to ``isinstance`` for
    subclasses, preserving the historical dispatch order — the output is
    byte-for-byte identical to the original recursive encoder.
    """
    stack: list[Any] = [value]
    push = stack.append
    pop = stack.pop
    emit = out.append
    while stack:
        v = pop()
        cls = v.__class__
        if cls is str:
            body = v.encode()
            emit(b"s%d:%b" % (len(body), body))
        elif cls is tuple or cls is list:
            emit(b"l%d:" % len(v))
            push(_SEQ_CLOSE)
            for item in reversed(v):
                push(item)
        elif cls is int:
            body = b"%d" % v
            emit(b"i%d:%b" % (len(body), body))
        elif cls is bytes:
            emit(b"b%d:%b" % (len(v), v))
        elif cls is _Emit:
            emit(v.data)
        elif cls is _CacheMark:
            encoded = b"".join(out[v.start:])
            del out[v.start:]
            emit(encoded)
            object.__setattr__(v.obj, "_encoded_cache", encoded)
        elif v is None:
            emit(b"N")
        elif v is True:
            emit(b"T")
        elif v is False:
            emit(b"F")
        elif cls is float:
            body = repr(v).encode()
            emit(b"f%d:%b" % (len(body), body))
        elif cls is dict:
            emit(b"d%d:" % len(v))
            try:
                keys = sorted(v)
            except TypeError as exc:
                raise CryptoError(f"dict keys must be sortable: {exc}") from exc
            push(_SEQ_CLOSE)
            for key in reversed(keys):
                push(v[key])
                push(key)
        elif isinstance(v, CachedEncodable):
            cached = getattr(v, "_encoded_cache", None)
            if cached is not None:
                ENCODING_STATS.splice_hits += 1
                emit(cached)
            else:
                ENCODING_STATS.splice_misses += 1
                payload = v.payload()
                # Scalar-only payloads (transactions, prepares, votes —
                # the bulk of splice misses) encode in one flat pass,
                # skipping the _CacheMark bookkeeping entirely.
                if payload.__class__ is tuple:
                    flat = _encode_flat_tuple(payload)
                    if flat is not None:
                        emit(flat)
                        object.__setattr__(v, "_encoded_cache", flat)
                        continue
                # Encode payload(), then fold the produced bytes into one
                # cached chunk attached to the instance (the _CacheMark
                # pops only after the payload finished encoding).
                push(_CacheMark(v, len(out)))
                push(payload)
        # Subclass fallbacks, in the historical dispatch order.
        elif isinstance(v, int):
            body = b"%d" % v
            emit(b"i%d:%b" % (len(body), body))
        elif isinstance(v, float):
            body = repr(v).encode()
            emit(b"f%d:%b" % (len(body), body))
        elif isinstance(v, str):
            body = v.encode()
            emit(b"s%d:%b" % (len(body), body))
        elif isinstance(v, bytes):
            emit(b"b%d:%b" % (len(v), v))
        elif isinstance(v, (tuple, list)):
            emit(b"l%d:" % len(v))
            push(_SEQ_CLOSE)
            for item in reversed(v):
                push(item)
        elif isinstance(v, dict):
            emit(b"d%d:" % len(v))
            try:
                keys = sorted(v)
            except TypeError as exc:
                raise CryptoError(f"dict keys must be sortable: {exc}") from exc
            push(_SEQ_CLOSE)
            for key in reversed(keys):
                push(v[key])
                push(key)
        elif hasattr(v, "payload"):
            # Protocol messages expose ``payload()`` returning primitives.
            push(v.payload())
        else:
            raise CryptoError(
                f"cannot canonically encode value of type {type(v).__name__}"
            )


def encode_canonical(value: Any) -> bytes:
    """Return the canonical byte encoding of ``value``.

    The encoding is injective on the supported value space: distinct
    payloads never encode to the same bytes (lengths are explicit, types
    are tagged), so ``digest`` collisions reduce to SHA256 collisions.
    Objects mixing in :class:`CachedEncodable` encode exactly once; the
    bytes are reused on every later encode that embeds them.
    """
    if isinstance(value, CachedEncodable):
        return value.encoded()
    out: list[bytes] = []
    _encode(value, out)
    return b"".join(out)


def digest(data: bytes) -> bytes:
    """SHA256 digest of raw bytes."""
    return hashlib.sha256(data).digest()


def _encode_flat_tuple(value: tuple) -> "bytes | None":
    """Canonical encoding of a tuple of scalar primitives, or ``None``.

    Decision chains, history digests, and block hashes all digest small
    flat tuples of ints/bytes/strings at very high rates; emitting their
    encoding in one pass skips the generic work-stack machinery.  The
    bytes produced are identical to :func:`_encode`'s output.  Any
    element outside the scalar set (nesting, floats, subclasses) returns
    ``None`` and the caller falls back to the full encoder.
    """
    parts = [b"l%d:" % len(value)]
    emit = parts.append
    for v in value:
        cls = v.__class__
        if cls is bytes:
            emit(b"b%d:%b" % (len(v), v))
        elif cls is int:
            body = b"%d" % v
            emit(b"i%d:%b" % (len(body), body))
        elif cls is str:
            body = v.encode()
            emit(b"s%d:%b" % (len(body), body))
        elif v is None:
            emit(b"N")
        elif v is True:
            emit(b"T")
        elif v is False:
            emit(b"F")
        else:
            return None
    emit(b";")
    return b"".join(parts)


def chain_digest(prev: bytes, seq: int, link: bytes) -> bytes:
    """SHA256 of the canonical encoding of ``(prev, seq, link)``.

    Specialized for the hash-chain triples every decided round folds
    into a running digest (PBFT decision chains, Zyzzyva histories):
    byte-identical to ``digest_of((prev, seq, link))`` with the tuple
    build, dispatch loop, and join skipped.  ``prev``/``link`` must be
    exactly ``bytes`` and ``seq`` exactly ``int``.
    """
    body = b"%d" % seq
    return hashlib.sha256(
        b"l3:b%d:%bi%d:%bb%d:%b;" % (len(prev), prev, len(body), body,
                                     len(link), link)).digest()


def digest_of(value: Any) -> bytes:
    """SHA256 digest of the canonical encoding of ``value``.

    >>> digest_of({"a": 1, "b": 2}) == digest_of({"b": 2, "a": 1})
    True
    >>> digest_of((1, 2)) == digest_of((1, "2"))
    False
    """
    if isinstance(value, CachedEncodable):
        return value.payload_digest()
    if value.__class__ is tuple:
        flat = _encode_flat_tuple(value)
        if flat is not None:
            return hashlib.sha256(flat).digest()
    return digest(encode_canonical(value))


def cached_digest(value: Any) -> bytes:
    """Digest of ``value``, memoized when the value supports it.

    Alias of :func:`digest_of` with the cache-aware path made explicit;
    protocol code uses it to document that a digest is expected to be a
    cache hit on the hot path.
    """
    if isinstance(value, CachedEncodable):
        return value.payload_digest()
    return digest_of(value)
