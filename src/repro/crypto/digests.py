"""SHA256 message digests over a canonical encoding.

ResilientDB uses SHA256 to produce collision-resistant digests of client
requests and protocol messages (paper §3).  The protocols in this library
sign and compare digests rather than whole payloads, exactly as the real
system does.

Payloads are arbitrary trees of Python primitives (ints, strings, bytes,
bools, ``None``, tuples/lists, dicts with string keys).  They are encoded
canonically so that two structurally equal payloads always hash to the
same digest, regardless of dict insertion order.
"""

from __future__ import annotations

import hashlib
from typing import Any

from ..errors import CryptoError

DIGEST_SIZE = 32


def _encode(value: Any, out: list[bytes]) -> None:
    """Append a canonical, unambiguous encoding of ``value`` to ``out``."""
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, int):
        body = str(value).encode()
        out.append(b"i" + str(len(body)).encode() + b":" + body)
    elif isinstance(value, float):
        body = repr(value).encode()
        out.append(b"f" + str(len(body)).encode() + b":" + body)
    elif isinstance(value, str):
        body = value.encode()
        out.append(b"s" + str(len(body)).encode() + b":" + body)
    elif isinstance(value, bytes):
        out.append(b"b" + str(len(value)).encode() + b":" + value)
    elif isinstance(value, (tuple, list)):
        out.append(b"l" + str(len(value)).encode() + b":")
        for item in value:
            _encode(item, out)
        out.append(b";")
    elif isinstance(value, dict):
        out.append(b"d" + str(len(value)).encode() + b":")
        try:
            keys = sorted(value)
        except TypeError as exc:
            raise CryptoError(f"dict keys must be sortable: {exc}") from exc
        for key in keys:
            _encode(key, out)
            _encode(value[key], out)
        out.append(b";")
    elif hasattr(value, "payload"):
        # Protocol messages expose ``payload()`` returning primitives.
        _encode(value.payload(), out)
    else:
        raise CryptoError(
            f"cannot canonically encode value of type {type(value).__name__}"
        )


def encode_canonical(value: Any) -> bytes:
    """Return the canonical byte encoding of ``value``.

    The encoding is injective on the supported value space: distinct
    payloads never encode to the same bytes (lengths are explicit, types
    are tagged), so ``digest`` collisions reduce to SHA256 collisions.
    """
    out: list[bytes] = []
    _encode(value, out)
    return b"".join(out)


def digest(data: bytes) -> bytes:
    """SHA256 digest of raw bytes."""
    return hashlib.sha256(data).digest()


def digest_of(value: Any) -> bytes:
    """SHA256 digest of the canonical encoding of ``value``.

    >>> digest_of({"a": 1, "b": 2}) == digest_of({"b": 2, "a": 1})
    True
    >>> digest_of((1, 2)) == digest_of((1, "2"))
    False
    """
    return digest(encode_canonical(value))
