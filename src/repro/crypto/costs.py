"""Simulated CPU cost of cryptographic operations.

The paper's evaluation repeatedly attributes performance differences to
the *computational* cost of cryptography: Steward "is unable to benefit
from its topological knowledge" because of "cryptographic primitives
with high computational costs" (§1.1), and HotStuff's "high
computational costs ... prevent it from reaching high throughput"
(§4.1).  To reproduce those effects, replicas charge simulated CPU time
for every crypto operation through this cost model.

Defaults approximate the paper's testbed (8-core Intel Skylake N1
machines running Crypto++): ~50 µs to produce and ~100 µs to verify an
ED25519 signature, ~2 µs for an AES-CMAC, ~1 µs to hash a small
message, plus a per-message handling overhead.  Verification runs on
the single certify thread of the pipeline (see
:mod:`repro.consensus.replica`), so these constants directly set the
certify-bound protocols' ceilings.  Steward's RSA-style threshold
cryptography is an order of magnitude more expensive still, which is
exposed via :meth:`CryptoCostModel.scaled`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

MICROSECOND = 1e-6


@dataclass(frozen=True)
class CryptoCostModel:
    """Per-operation CPU costs, in (simulated) seconds.

    All protocol code pulls costs from an instance of this class, so
    experiments can swap cost models (e.g. "free crypto" for unit tests,
    or an RSA-era model for Steward) without touching protocol logic.
    """

    sign: float = 50 * MICROSECOND
    verify: float = 100 * MICROSECOND
    mac_create: float = 2 * MICROSECOND
    mac_verify: float = 2 * MICROSECOND
    hash_small: float = 1 * MICROSECOND
    #: Fixed per-message deserialize/dispatch overhead.
    message_overhead: float = 3 * MICROSECOND
    #: Cost to execute one transaction against the store.  Execution is
    #: serialized on a replica's single execute thread (paper §3), so
    #: this is the system-wide per-transaction ceiling.
    execute_txn: float = 8 * MICROSECOND
    #: Threshold share generation / combination / verification.
    threshold_share: float = 150 * MICROSECOND
    threshold_combine: float = 400 * MICROSECOND
    threshold_verify: float = 150 * MICROSECOND

    def scaled(self, factor: float) -> "CryptoCostModel":
        """Return a copy with signature/threshold costs scaled by ``factor``.

        Used to model Steward's heavyweight (RSA threshold) cryptography.
        """
        return replace(
            self,
            sign=self.sign * factor,
            verify=self.verify * factor,
            threshold_share=self.threshold_share * factor,
            threshold_combine=self.threshold_combine * factor,
            threshold_verify=self.threshold_verify * factor,
        )

    @classmethod
    def free(cls) -> "CryptoCostModel":
        """A zero-cost model for logic-only unit tests."""
        return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
