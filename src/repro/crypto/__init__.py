"""Cryptographic substrate used by the ResilientDB reproduction.

The real ResilientDB fabric uses ED25519 signatures, AES-CMAC message
authentication codes, and SHA256 digests (paper §3, "Cryptography").
This package provides functionally equivalent primitives:

* :mod:`repro.crypto.digests` — SHA256 digests over canonical encodings.
* :mod:`repro.crypto.signatures` — digital signatures backed by
  HMAC-SHA256 with per-node secret keys held in a :class:`KeyRegistry`
  that stands in for a PKI.  Signatures are unforgeable without the
  signer's key, which is all the protocols rely on.
* :mod:`repro.crypto.macs` — pairwise message authentication codes.
* :mod:`repro.crypto.threshold` — (k, n) threshold signatures used by the
  optional constant-size commit-certificate representation (paper §2.2).
* :mod:`repro.crypto.costs` — the simulated CPU cost of each operation,
  which the replicas charge against their CPU model so that crypto cost
  shows up in throughput exactly as it does in the paper's evaluation.
"""

from .costs import CryptoCostModel
from .digests import digest, digest_of
from .macs import MacAuthenticator
from .signatures import KeyRegistry, Signature, Signer
from .threshold import ThresholdScheme, ThresholdSignature

__all__ = [
    "CryptoCostModel",
    "digest",
    "digest_of",
    "MacAuthenticator",
    "KeyRegistry",
    "Signature",
    "Signer",
    "ThresholdScheme",
    "ThresholdSignature",
]
