"""Digital signatures with a PKI-style key registry.

The paper signs client requests and commit messages with ED25519
(paper §3) so that forwarded messages cannot be tampered with.  This
module provides the same guarantees for the simulation:

* every node owns a private signing key (a random 32-byte secret),
* anyone holding the :class:`KeyRegistry` (the "PKI") can verify a
  signature against the claimed signer,
* nobody can produce a signature for another node without that node's
  :class:`Signer` handle — Byzantine behaviours in tests can only sign as
  themselves, mirroring the paper's authenticated-communication
  assumption (§2.1).

Signatures are HMAC-SHA256 tags computed with the signer's secret.  The
registry verifies by recomputing the tag; this models signature
verification with the signer's public key.  HMAC is used instead of real
ED25519 to keep the simulator fast while preserving unforgeability
against everyone who does not hold the secret.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Dict

from ..errors import CryptoError, InvalidSignatureError
from ..types import NodeId
from .digests import encode_canonical

SIGNATURE_SIZE = 64  # bytes on the wire, matching ED25519.


@dataclass(frozen=True)
class Signature:
    """A digital signature: the claimed signer plus the tag bytes."""

    signer: NodeId
    tag: bytes

    def size_bytes(self) -> int:
        """Wire size of the signature (ED25519-sized)."""
        return SIGNATURE_SIZE


class Signer:
    """A node's private signing handle.

    Instances are created by :meth:`KeyRegistry.register` and handed to
    exactly one node.  Holding a ``Signer`` is holding the private key.
    """

    __slots__ = ("_node", "_secret")

    def __init__(self, node: NodeId, secret: bytes):
        self._node = node
        self._secret = secret

    @property
    def node(self) -> NodeId:
        """The identity this signer signs as."""
        return self._node

    def sign(self, payload: Any) -> Signature:
        """Sign ``payload`` (any canonically encodable value)."""
        message = encode_canonical((str(self._node), payload))
        tag = hmac.new(self._secret, message, hashlib.sha256).digest()
        return Signature(self._node, tag)


class KeyRegistry:
    """The public-key infrastructure of a deployment.

    The registry creates key pairs (:meth:`register`) and verifies
    signatures (:meth:`verify`).  In a real deployment verification only
    needs public keys; here the registry holds the secrets but never
    exposes them, so protocol code cannot forge signatures by accident
    and Byzantine test behaviours cannot forge them at all.
    """

    def __init__(self, seed: bytes = b"resilientdb"):
        self._seed = seed
        self._secrets: Dict[NodeId, bytes] = {}

    def register(self, node: NodeId) -> Signer:
        """Create (or re-derive) the signing handle for ``node``.

        Keys are derived deterministically from the registry seed so that
        deployments built from the same configuration are reproducible.
        """
        if node not in self._secrets:
            material = self._seed + encode_canonical(str(node))
            self._secrets[node] = hashlib.sha256(material).digest()
        return Signer(node, self._secrets[node])

    def is_registered(self, node: NodeId) -> bool:
        """Whether ``node`` has a key pair in this PKI."""
        return node in self._secrets

    def verify(self, payload: Any, signature: Signature) -> bool:
        """Check ``signature`` over ``payload`` against the claimed signer.

        Returns ``False`` (never raises) for unknown signers or bad tags,
        matching the paper's rule that replicas silently discard messages
        with invalid signatures.
        """
        secret = self._secrets.get(signature.signer)
        if secret is None:
            return False
        message = encode_canonical((str(signature.signer), payload))
        expected = hmac.new(secret, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature.tag)

    def require_valid(self, payload: Any, signature: Signature) -> None:
        """Like :meth:`verify` but raises :class:`InvalidSignatureError`."""
        if not self.verify(payload, signature):
            raise InvalidSignatureError(
                f"invalid signature claimed by {signature.signer}"
            )

    def signer_secret_fingerprint(self, node: NodeId) -> bytes:
        """Digest of a node's secret — used only by tests for determinism
        checks; the secret itself is never exposed."""
        secret = self._secrets.get(node)
        if secret is None:
            raise CryptoError(f"no key registered for {node}")
        return hashlib.sha256(secret).digest()
