"""Digital signatures with a PKI-style key registry.

The paper signs client requests and commit messages with ED25519
(paper §3) so that forwarded messages cannot be tampered with.  This
module provides the same guarantees for the simulation:

* every node owns a private signing key (a random 32-byte secret),
* anyone holding the :class:`KeyRegistry` (the "PKI") can verify a
  signature against the claimed signer,
* nobody can produce a signature for another node without that node's
  :class:`Signer` handle — Byzantine behaviours in tests can only sign as
  themselves, mirroring the paper's authenticated-communication
  assumption (§2.1).

Signatures are HMAC-SHA256 tags computed with the signer's secret.  The
registry verifies by recomputing the tag; this models signature
verification with the signer's public key.  HMAC is used instead of real
ED25519 to keep the simulator fast while preserving unforgeability
against everyone who does not hold the secret.

Verification memoization
------------------------
A signed message that is forwarded — a client request, a commit
certificate — is verified by every replica that receives it, so a naive
host pays ``n`` HMAC recomputations for one logical check.  The
:class:`VerificationCache` memoizes verification *outcomes* keyed by
``(signer, payload digest, tag)``: the outcome is a deterministic
function of that key, so a deployment-wide shared cache collapses the
host cost to one HMAC per distinct (message, signature) pair.  The
per-replica *simulated* verification delay is charged by the replica
layer independently, so memoization cannot change simulated results.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import CryptoError, InvalidSignatureError
from ..types import NodeId
from .digests import CachedEncodable, encode_canonical

SIGNATURE_SIZE = 64  # bytes on the wire, matching ED25519.


class VerificationCache:
    """Deployment-wide memo of signature/MAC verification outcomes.

    Keys are tuples that uniquely determine the verification result
    (e.g. ``("sig", signer, payload_digest, tag)``); values are the
    boolean outcome.  Both positive and negative outcomes are cached —
    a forged tag stays forged.  The cache is bounded with FIFO eviction
    so adversarial workloads cannot grow it without limit.
    """

    __slots__ = ("_entries", "_max_entries", "hits", "misses",
                 "_kind_hits", "_kind_misses")

    def __init__(self, max_entries: int = 1 << 20) -> None:
        self._entries: Dict[Tuple, bool] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        # Per-kind split: kind is the key's leading string tag ("sig",
        # "mac", ...) or "other" for untagged keys.  Telemetry only.
        self._kind_hits: Dict[str, int] = {}
        self._kind_misses: Dict[str, int] = {}

    @staticmethod
    def _kind_of(key: Tuple) -> str:
        head = key[0] if key else None
        return head if isinstance(head, str) else "other"

    def get(self, key: Tuple) -> Optional[bool]:
        """Cached outcome for ``key``, or ``None`` on a miss."""
        kind = self._kind_of(key)
        outcome = self._entries.get(key)
        if outcome is None:
            self.misses += 1
            self._kind_misses[kind] = self._kind_misses.get(kind, 0) + 1
            return None
        self.hits += 1
        self._kind_hits[kind] = self._kind_hits.get(kind, 0) + 1
        return outcome is True

    def put(self, key: Tuple, outcome: bool) -> None:
        """Record the outcome of a fresh verification."""
        entries = self._entries
        if len(entries) >= self._max_entries:
            entries.pop(next(iter(entries)))
        entries[key] = outcome

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters, for benchmarks and tests."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self._entries)}

    def kind_stats(self) -> Dict[str, Dict[str, int]]:
        """``{kind: {"hits": n, "misses": n}}`` split by key tag."""
        kinds = set(self._kind_hits) | set(self._kind_misses)
        return {
            kind: {
                "hits": self._kind_hits.get(kind, 0),
                "misses": self._kind_misses.get(kind, 0),
            }
            for kind in sorted(kinds)
        }

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class Signature:
    """A digital signature: the claimed signer plus the tag bytes."""

    signer: NodeId
    tag: bytes

    def size_bytes(self) -> int:
        """Wire size of the signature (ED25519-sized)."""
        return SIGNATURE_SIZE


class Signer:
    """A node's private signing handle.

    Instances are created by :meth:`KeyRegistry.register` and handed to
    exactly one node.  Holding a ``Signer`` is holding the private key.
    """

    __slots__ = ("_node", "_secret")

    def __init__(self, node: NodeId, secret: bytes) -> None:
        self._node = node
        self._secret = secret

    @property
    def node(self) -> NodeId:
        """The identity this signer signs as."""
        return self._node

    def sign(self, payload: Any) -> Signature:
        """Sign ``payload`` (any canonically encodable value).

        When ``payload`` is a :class:`~.digests.CachedEncodable` message,
        its canonical bytes are spliced from the instance cache, so
        signing costs one HMAC rather than a payload-tree walk.
        """
        message = encode_canonical((str(self._node), payload))
        tag = hmac.new(self._secret, message, hashlib.sha256).digest()
        return Signature(self._node, tag)


class KeyRegistry:
    """The public-key infrastructure of a deployment.

    The registry creates key pairs (:meth:`register`) and verifies
    signatures (:meth:`verify`).  In a real deployment verification only
    needs public keys; here the registry holds the secrets but never
    exposes them, so protocol code cannot forge signatures by accident
    and Byzantine test behaviours cannot forge them at all.
    """

    def __init__(
        self,
        seed: bytes = b"resilientdb",
        cache: Optional[VerificationCache] = None,
    ) -> None:
        self._seed = seed
        self._secrets: Dict[NodeId, bytes] = {}
        # One registry serves a whole deployment, so its cache is the
        # deployment-wide verification memo.  ``cache`` lets a caller
        # share one cache across several authenticators.
        self._cache = VerificationCache() if cache is None else cache

    @property
    def verification_cache(self) -> VerificationCache:
        """The shared verification memo (for stats and benchmarks)."""
        return self._cache

    def register(self, node: NodeId) -> Signer:
        """Create (or re-derive) the signing handle for ``node``.

        Keys are derived deterministically from the registry seed so that
        deployments built from the same configuration are reproducible.
        """
        if node not in self._secrets:
            material = self._seed + encode_canonical(str(node))
            self._secrets[node] = hashlib.sha256(material).digest()
        return Signer(node, self._secrets[node])

    def is_registered(self, node: NodeId) -> bool:
        """Whether ``node`` has a key pair in this PKI."""
        return node in self._secrets

    def verify(self, payload: Any, signature: Signature) -> bool:
        """Check ``signature`` over ``payload`` against the claimed signer.

        Returns ``False`` (never raises) for unknown signers or bad tags,
        matching the paper's rule that replicas silently discard messages
        with invalid signatures.

        Outcomes for :class:`~.digests.CachedEncodable` payloads are
        memoized in the deployment-wide :class:`VerificationCache`: the
        result is a pure function of ``(signer, payload digest, tag)``,
        so a certificate forwarded to ``n`` replicas costs one HMAC on
        the host.  Simulated verification delay is charged elsewhere and
        is unaffected.
        """
        secret = self._secrets.get(signature.signer)
        if secret is None:
            return False
        key = None
        if isinstance(payload, CachedEncodable):
            key = ("sig", signature.signer, payload.payload_digest(), signature.tag)
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        message = encode_canonical((str(signature.signer), payload))
        expected = hmac.new(secret, message, hashlib.sha256).digest()
        outcome = hmac.compare_digest(expected, signature.tag)
        if key is not None:
            self._cache.put(key, outcome)
        return outcome

    def require_valid(self, payload: Any, signature: Signature) -> None:
        """Like :meth:`verify` but raises :class:`InvalidSignatureError`."""
        if not self.verify(payload, signature):
            raise InvalidSignatureError(
                f"invalid signature claimed by {signature.signer}"
            )

    def signer_secret_fingerprint(self, node: NodeId) -> bytes:
        """Digest of a node's secret — used only by tests for determinism
        checks; the secret itself is never exposed."""
        secret = self._secrets.get(node)
        if secret is None:
            raise CryptoError(f"no key registered for {node}")
        return hashlib.sha256(secret).digest()
