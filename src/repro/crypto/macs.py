"""Pairwise message authentication codes.

ResilientDB authenticates non-forwarded messages (preprepare, prepare,
checkpoint, ...) with AES-CMAC MACs, which are much cheaper than digital
signatures (paper §2.1, §3).  This module models that with HMAC-SHA256
over a pairwise shared key derived from the two endpoints' identities.

A MAC convinces only its intended receiver, so MAC-authenticated
messages cannot be usefully forwarded — exactly the property that forces
GeoBFT to sign client requests and commit messages (the only forwarded
messages) while everything else uses MACs.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from ..errors import InvalidMacError
from ..types import NodeId
from .digests import encode_canonical

MAC_SIZE = 16  # bytes, matching AES-CMAC.


@dataclass(frozen=True)
class Mac:
    """An authentication tag from ``sender`` for one specific receiver."""

    sender: NodeId
    tag: bytes

    def size_bytes(self) -> int:
        """Wire size of the tag (AES-CMAC-sized)."""
        return MAC_SIZE


class MacAuthenticator:
    """Creates and checks pairwise MACs for one node.

    All authenticators of a deployment share a ``domain`` secret (derived
    from the deployment seed); the pairwise key between nodes ``a`` and
    ``b`` is ``H(domain || min(a,b) || max(a,b))``, so both endpoints can
    compute it but the simulator never does key exchange.
    """

    __slots__ = ("_node", "_domain")

    def __init__(self, node: NodeId, domain: bytes = b"resilientdb-mac"):
        self._node = node
        self._domain = domain

    @property
    def node(self) -> NodeId:
        """The identity this authenticator authenticates as."""
        return self._node

    def _pair_key(self, other: NodeId) -> bytes:
        first, second = sorted((str(self._node), str(other)))
        material = self._domain + first.encode() + b"|" + second.encode()
        return hashlib.sha256(material).digest()

    def tag(self, receiver: NodeId, payload: Any) -> Mac:
        """Produce a MAC over ``payload`` for ``receiver``."""
        message = encode_canonical((str(self._node), str(receiver), payload))
        key = self._pair_key(receiver)
        raw = hmac.new(key, message, hashlib.sha256).digest()
        return Mac(self._node, raw[:MAC_SIZE])

    def verify(self, mac: Mac, payload: Any) -> bool:
        """Check a MAC addressed to this node.  Returns ``False`` on any
        mismatch rather than raising, as replicas simply discard bad
        messages."""
        message = encode_canonical((str(mac.sender), str(self._node), payload))
        key = self._pair_key(mac.sender)
        expected = hmac.new(key, message, hashlib.sha256).digest()[:MAC_SIZE]
        return hmac.compare_digest(expected, mac.tag)

    def require_valid(self, mac: Mac, payload: Any) -> None:
        """Like :meth:`verify` but raises :class:`InvalidMacError`."""
        if not self.verify(mac, payload):
            raise InvalidMacError(f"invalid MAC claimed from {mac.sender}")
