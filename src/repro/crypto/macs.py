"""Pairwise message authentication codes.

ResilientDB authenticates non-forwarded messages (preprepare, prepare,
checkpoint, ...) with AES-CMAC MACs, which are much cheaper than digital
signatures (paper §2.1, §3).  This module models that with HMAC-SHA256
over a pairwise shared key derived from the two endpoints' identities.

A MAC convinces only its intended receiver, so MAC-authenticated
messages cannot be usefully forwarded — exactly the property that forces
GeoBFT to sign client requests and commit messages (the only forwarded
messages) while everything else uses MACs.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import InvalidMacError
from ..types import NodeId
from .digests import CachedEncodable, encode_canonical
from .signatures import VerificationCache

MAC_SIZE = 16  # bytes, matching AES-CMAC.


@dataclass(frozen=True)
class Mac:
    """An authentication tag from ``sender`` for one specific receiver."""

    sender: NodeId
    tag: bytes

    def size_bytes(self) -> int:
        """Wire size of the tag (AES-CMAC-sized)."""
        return MAC_SIZE


class MacAuthenticator:
    """Creates and checks pairwise MACs for one node.

    All authenticators of a deployment share a ``domain`` secret (derived
    from the deployment seed); the pairwise key between nodes ``a`` and
    ``b`` is ``H(domain || min(a,b) || max(a,b))``, so both endpoints can
    compute it but the simulator never does key exchange.
    """

    __slots__ = ("_node", "_domain", "_pair_keys", "_cache")

    def __init__(
        self,
        node: NodeId,
        domain: bytes = b"resilientdb-mac",
        cache: Optional[VerificationCache] = None,
    ) -> None:
        self._node = node
        self._domain = domain
        # Pairwise keys are pure functions of (domain, endpoints); memoize
        # them so the derivation hash runs once per peer, not per message.
        self._pair_keys: Dict[NodeId, bytes] = {}
        # Optionally shared with the deployment's KeyRegistry so MAC
        # verification outcomes are memoized deployment-wide.
        self._cache = cache

    @property
    def node(self) -> NodeId:
        """The identity this authenticator authenticates as."""
        return self._node

    def _pair_key(self, other: NodeId) -> bytes:
        key = self._pair_keys.get(other)
        if key is None:
            first, second = sorted((str(self._node), str(other)))
            material = self._domain + first.encode() + b"|" + second.encode()
            key = hashlib.sha256(material).digest()
            self._pair_keys[other] = key
        return key

    def tag(self, receiver: NodeId, payload: Any) -> Mac:
        """Produce a MAC over ``payload`` for ``receiver``."""
        message = encode_canonical((str(self._node), str(receiver), payload))
        key = self._pair_key(receiver)
        raw = hmac.new(key, message, hashlib.sha256).digest()
        return Mac(self._node, raw[:MAC_SIZE])

    def verify(self, mac: Mac, payload: Any) -> bool:
        """Check a MAC addressed to this node.  Returns ``False`` on any
        mismatch rather than raising, as replicas simply discard bad
        messages.

        Outcomes for :class:`~.digests.CachedEncodable` payloads are
        memoized when a shared :class:`VerificationCache` was supplied;
        the MAC outcome is a pure function of (sender, receiver, payload
        digest, tag), and the receiver is part of the key because a MAC
        convinces only its addressee.
        """
        cache_key = None
        if self._cache is not None and isinstance(payload, CachedEncodable):
            cache_key = (
                "mac", mac.sender, self._node, payload.payload_digest(), mac.tag,
            )
            cached = self._cache.get(cache_key)
            if cached is not None:
                return cached
        message = encode_canonical((str(mac.sender), str(self._node), payload))
        key = self._pair_key(mac.sender)
        expected = hmac.new(key, message, hashlib.sha256).digest()[:MAC_SIZE]
        outcome = hmac.compare_digest(expected, mac.tag)
        if cache_key is not None:
            self._cache.put(cache_key, outcome)
        return outcome

    def stats(self) -> Dict[str, int]:
        """Telemetry: memoized pair keys held by this authenticator.

        Verification hit/miss telemetry lives on the shared
        :class:`VerificationCache` (see ``kind_stats()["mac"]``); the
        only per-authenticator state worth reporting is the pairwise-key
        memo size.
        """
        return {"pair_keys": len(self._pair_keys)}

    def require_valid(self, mac: Mac, payload: Any) -> None:
        """Like :meth:`verify` but raises :class:`InvalidMacError`."""
        if not self.verify(mac, payload):
            raise InvalidMacError(f"invalid MAC claimed from {mac.sender}")
