#!/usr/bin/env python3
"""Chaos timelines: scheduled faults, Byzantine behaviour, and the
safety + liveness audit.

Reproduces the qualitative story of the paper's failure study (§4.3,
Figure 12) on one deployment: GeoBFT's cluster 1 loses its primary
mid-run, the WAN between the two clusters partitions and heals, and a
Byzantine replica tampers every consensus payload it sends for the
whole run.  The protocol must (a) keep every honest ledger agreed,
(b) resume committing after each fault window — the post-run
invariant audit checks both.

Run with:  python examples/chaos_timelines.py
"""

from repro import (CrashFault, Deployment, EquivocateFault,
                   ExperimentConfig, FaultTimeline, GeoBftConfig,
                   PartitionFault, PbftConfig, TamperFault)


def main() -> None:
    config = ExperimentConfig(
        protocol="geobft",
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=10,
        clients_per_cluster=1,
        client_outstanding=2,
        duration=10.0,
        warmup=0.5,
        record_count=1000,
        seed=3,
        view_change_timeout=0.8,
        client_retry_timeout=2.0,
        geobft=GeoBftConfig(
            pbft=PbftConfig(view_change_timeout=0.8, new_view_timeout=0.8),
            remote_timeout=0.8,
        ),
    )

    timeline = FaultTimeline([
        CrashFault("primary:1", at=1.0, name="crash-oregon-primary"),
        PartitionFault(["cluster:1"], ["cluster:2"], at=2.0, until=3.5,
                       name="wan-partition"),
        TamperFault("replica:2.1", name="byzantine-tamperer"),
        EquivocateFault(2, name="equivocating-primary"),
    ], name="figure12-story")

    # Timelines are declarative: the same plan round-trips through JSON
    # (usable from the CLI as `repro run --faults <file.json>`).
    print("The timeline as a JSON spec:")
    print(timeline.to_json())
    print()

    deployment = Deployment(config)
    FaultTimeline.from_json(timeline.to_json()).install(deployment)
    result = deployment.run()

    print("Fault transitions (simulated time):")
    for name, edge, when in deployment.timeline.activation_log():
        print(f"  t={when:5.2f}s  {name:24s} {edge}")
    print()

    print(f"Throughput across all faults: "
          f"{result.throughput_txn_s:.0f} txn/s")
    print(f"Messages tampered in flight (all rejected by honest "
          f"verification): {deployment.network._tampered_sends}")
    print()
    print(deployment.invariants.describe())
    assert deployment.invariants.ok, "safety/liveness audit failed"


if __name__ == "__main__":
    main()
