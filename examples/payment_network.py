#!/usr/bin/env python3
"""A geo-distributed payment network on the GeoBFT ledger.

The paper motivates ResilientDB with enterprise workloads such as
financial transaction processing (§3, "Request batching").  This example
models a simple interbank payment network: branches in Oregon and Iowa
submit transfer instructions against shared account records.  Transfers
are encoded as read-modify-write transactions on the YCSB-style table
(each account is one record whose value accumulates a transfer journal),
so deterministic execution (§2.4) guarantees every replica derives the
same account histories.

The payment generator now lives in the library
(:class:`repro.PaymentWorkload`) and is registered as the
``payment_network`` scenario, so the same workload is reachable from
``repro run --scenario payment_network`` and the overload campaign; this
example applies the scenario through the public API and audits the
resulting account state.

Run with:  python examples/payment_network.py
"""

from repro import Deployment, ExperimentConfig
from repro.api import apply_scenario
from repro.workload.payment import DEFAULT_ACCOUNTS


def main() -> None:
    config = ExperimentConfig(
        protocol="geobft",
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=20,
        clients_per_cluster=2,
        client_outstanding=3,
        duration=3.0,
        warmup=0.5,
        record_count=DEFAULT_ACCOUNTS,
        fast_crypto=True,
        seed=17,
    )
    deployment = Deployment(config)

    # Swap every client's workload for the payment generator: clients
    # in cluster 1 become Oregon branches, cluster 2 Iowa branches.
    apply_scenario(deployment, "payment_network")

    result = deployment.run()
    print("=== Geo-distributed payment network (GeoBFT) ===")
    print(f"transfers committed : {result.completed_txns}")
    print(f"throughput          : {result.throughput_txn_s:.0f} transfers/s")
    print(f"avg confirmation    : {result.avg_latency_s * 1000:.1f} ms")
    print(f"safety audit        : {'PASS' if result.safety_ok else 'FAIL'}")

    # Every replica (bank data center) derives the same account state
    # from the same ledger prefix.  At the cut-off instant some are
    # still executing the final rounds, so compare the replicas that
    # have executed the same number of rounds.
    replicas = list(deployment.replicas.values())
    max_rounds = max(r.executed_rounds for r in replicas)
    synced = [r for r in replicas if r.executed_rounds == max_rounds]
    digests = {r.store.state_digest() for r in synced}
    print(f"distinct account-state digests across {len(synced)} "
          f"fully-synced replicas: {len(digests)} (expected 1)")
    tallest = max(replicas, key=lambda r: r.ledger.height)
    assert all(r.ledger.matches_prefix_of(tallest.ledger)
               for r in replicas)

    # Show one account's journal.
    sample_key = next(iter(synced[0].store.snapshot()), 0)
    journal = synced[0].store.read(sample_key)
    entries = journal.split("|")[1:]
    print(f"\naccount {sample_key} journal ({len(entries)} transfers), "
          f"last 3 entries:")
    for entry in entries[-3:]:
        print(f"  {entry}")
    assert synced[-1].store.read(sample_key) == journal


if __name__ == "__main__":
    main()
