#!/usr/bin/env python3
"""Quickstart: run a small GeoBFT deployment and inspect the ledger.

Builds two clusters of four replicas (Oregon and Iowa, with the paper's
measured link characteristics), drives them with closed-loop YCSB
clients for three simulated seconds, and prints the throughput, latency,
and the first few blocks of the resulting blockchain.

Run with:  python examples/quickstart.py
"""

from repro import ExperimentConfig, Deployment


def main() -> None:
    config = ExperimentConfig(
        protocol="geobft",
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=10,
        clients_per_cluster=2,
        client_outstanding=4,
        duration=3.0,
        warmup=0.5,
        record_count=1000,
        fast_crypto=True,
        seed=7,
    )
    deployment = Deployment(config)
    result = deployment.run()

    print("=== GeoBFT quickstart ===")
    print(result.describe())
    print(f"measured window : {deployment.metrics.measurement_window():.1f} s "
          f"(simulated)")
    print(f"global traffic  : {result.global_messages} messages, "
          f"{result.global_bytes / 1e6:.2f} MB")
    print(f"local traffic   : {result.local_messages} messages, "
          f"{result.local_bytes / 1e6:.2f} MB")

    # Every replica holds the same blockchain; look at one.
    replica = next(iter(deployment.replicas.values()))
    replica.ledger.verify()  # audits the hash chain
    print(f"\nLedger of {replica.node_id}: {replica.ledger.height} blocks")
    for height in range(min(6, replica.ledger.height)):
        block = replica.ledger.block(height)
        first_txn = block.batch[0]
        print(f"  block {height}: round {block.round_id}, "
              f"cluster {block.cluster_id}, {len(block.batch)} txns, "
              f"first={first_txn.txn_id} ({first_txn.op})")

    # Non-divergence (Theorem 2.8): all replicas agree.  At the cut-off
    # instant some replicas may still be executing the last rounds, so
    # the guarantee is prefix consistency, not equal heights.
    replicas = list(deployment.replicas.values())
    tallest = max(replicas, key=lambda r: r.ledger.height)
    consistent = all(r.ledger.matches_prefix_of(tallest.ledger)
                     for r in replicas)
    print(f"\nledgers prefix-consistent across "
          f"{len(replicas)} replicas: {consistent} (expected True)")


if __name__ == "__main__":
    main()
