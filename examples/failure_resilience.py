#!/usr/bin/env python3
"""Failure resilience: a Byzantine primary and a remote view change.

Reproduces, as a narrative demo, the scenario behind GeoBFT's remote
view-change protocol (§2.3, Figures 6–7): the primary of the Oregon
cluster behaves correctly *locally* but silently omits its global
shares toward the Iowa cluster (Example 2.4, case 1).  Iowa's replicas
cannot tell whether Oregon's primary or their own connectivity failed —
they agree on the failure via DRVC messages, send signed RVC requests
to Oregon, and Oregon's non-faulty replicas depose their primary via a
local view change.  The new primary resumes global sharing and the
whole system recovers.

Run with:  python examples/failure_resilience.py
"""

from repro import (Deployment, ExperimentConfig, FaultTimeline,
                   GeoBftConfig, OmissionFault, PbftConfig)


def main() -> None:
    config = ExperimentConfig(
        protocol="geobft",
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=10,
        clients_per_cluster=1,
        client_outstanding=2,
        duration=10.0,
        warmup=0.5,
        record_count=1000,
        client_retry_timeout=2.0,
        geobft=GeoBftConfig(
            pbft=PbftConfig(view_change_timeout=1.0, new_view_timeout=1.0),
            remote_timeout=1.0,
            recent_view_change_window=1.0,
        ),
        seed=3,
    )
    deployment = Deployment(config)

    timeline = FaultTimeline([
        OmissionFault("primary:1", messages=("GlobalShare",),
                      to=["cluster:2"], name="silent-primary"),
    ], name="remote-view-change-demo").install(deployment)
    print("Byzantine behaviour installed: Oregon's primary silently "
          "omits all global shares toward cluster 2 (Iowa).\n")

    result = deployment.run()
    print(f"Byzantine actors excluded from the safety audit: "
          f"{', '.join(str(n) for n in sorted(timeline.byzantine_nodes(), key=str))}\n")

    oregon = [r for n, r in deployment.replicas.items() if n.cluster == 1]
    iowa = [r for n, r in deployment.replicas.items() if n.cluster == 2]

    print("After the run:")
    for replica in oregon:
        print(f"  {replica.node_id} (Oregon): view={replica.engine.view} "
              f"(>=1 means the Byzantine primary was deposed), "
              f"rounds executed={replica.executed_rounds}")
    for replica in iowa:
        rvc = replica.remote_view_changes
        print(f"  {replica.node_id} (Iowa):   remote view changes "
              f"requested against Oregon={rvc.vc_count(1)}, "
              f"rounds executed={replica.executed_rounds}")

    print(f"\nThroughput over the whole run (including the stall and "
          f"recovery): {result.throughput_txn_s:.0f} txn/s")
    print(f"Safety audit (Theorem 2.8): "
          f"{'PASS' if result.safety_ok else 'FAIL'}")
    new_primary = oregon[1].engine.primary
    print(f"Oregon's primary is now {new_primary}.")


if __name__ == "__main__":
    main()
