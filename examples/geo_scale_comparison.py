#!/usr/bin/env python3
"""Geo-scale comparison: GeoBFT against the four baselines.

A scaled-down rendition of the paper's headline experiment (§4.1): the
same replica budget deployed over two and then four of the paper's
regions, under all five consensus protocols.  GeoBFT is the only
protocol that benefits from the added regions; the single-primary
protocols pay for every remote region they span.

Run with:  python examples/geo_scale_comparison.py
"""

from repro import ExperimentConfig, run_experiment
from repro.bench.reporting import format_table

PROTOCOLS = ("geobft", "pbft", "zyzzyva", "hotstuff", "steward")


def measure(protocol: str, num_clusters: int) -> tuple:
    config = ExperimentConfig(
        protocol=protocol,
        num_clusters=num_clusters,
        replicas_per_cluster=4,
        batch_size=50,
        clients_per_cluster=2,
        client_outstanding=6,
        duration=2.5,
        warmup=0.6,
        record_count=2000,
        fast_crypto=True,
        seed=13,
    )
    result = run_experiment(config)
    return result.throughput_txn_s, result.avg_latency_s


def main() -> None:
    rows = []
    for protocol in PROTOCOLS:
        tput2, lat2 = measure(protocol, num_clusters=2)
        tput4, lat4 = measure(protocol, num_clusters=4)
        rows.append([protocol, tput2, lat2, tput4, lat4,
                     f"{tput4 / tput2:.2f}x"])
    print(format_table(
        ["protocol", "tput z=2", "lat z=2 (s)", "tput z=4",
         "lat z=4 (s)", "z=4 vs z=2"],
        rows,
        title="Throughput (txn/s) and latency, 2 vs 4 regions "
              "(n=4 per region)",
    ))
    geo = next(r for r in rows if r[0] == "geobft")
    pbft = next(r for r in rows if r[0] == "pbft")
    print(f"\nGeoBFT vs PBFT at 4 regions: {geo[3] / pbft[3]:.1f}x")


if __name__ == "__main__":
    main()
