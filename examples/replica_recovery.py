#!/usr/bin/env python3
"""Replica recovery from a peer's ledger.

Paper §3: "The immutable structure of the ledger also helps when
recovering replicas: tampering of its ledger by any replica can easily
be detected.  Hence, a recovering replica can simply read the ledger of
any replica it chooses and directly verify whether the ledger can be
trusted."

This demo crashes a replica mid-run, lets the system continue without
it, then recovers the crashed replica from a peer: audit the peer's
hash chain, adopt the blocks, and replay them to rebuild the exact
state every non-faulty replica holds.  It also shows the audit
*rejecting* a corrupted source.

Run with:  python examples/replica_recovery.py
"""

from repro import (Deployment, ExperimentConfig, Transaction,
                   recover_from_peer, replica_id)
from repro.errors import TamperedLedgerError
from repro.ledger.block import Block


def main() -> None:
    config = ExperimentConfig(
        protocol="geobft",
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=10,
        clients_per_cluster=1,
        client_outstanding=3,
        duration=3.0,
        warmup=0.5,
        record_count=1000,
        fast_crypto=True,
        seed=29,
    )
    deployment = Deployment(config)
    victim = replica_id(2, 4)
    deployment.sim.schedule(1.0, deployment.network.failures.crash, victim)
    result = deployment.run()
    print(result.describe())

    crashed = deployment.replicas[victim]
    peer = deployment.replicas[replica_id(2, 2)]
    print(f"\n{victim} crashed at t=1.0s with {crashed.ledger.height} "
          f"blocks; peer {peer.node_id} reached {peer.ledger.height}.")

    # --- recovery from an honest peer -------------------------------
    ledger, store = recover_from_peer(peer.ledger, config.record_count)
    print(f"recovered: audited and adopted {ledger.height} blocks from "
          f"{peer.node_id}")
    print(f"state digest matches peer: "
          f"{store.state_digest() == peer.store.state_digest()}")

    # --- a corrupted source is rejected ------------------------------
    saboteur = deployment.replicas[replica_id(2, 3)]
    original = saboteur.ledger.block(2)
    forged = Block(
        original.height, original.round_id, original.cluster_id,
        (Transaction("stolen-funds", "update", 0, "1e9"),),
        original.batch_digest, original.certificate_digest,
        original.prev_hash,
    )
    saboteur.ledger.tamper_for_test(2, forged)
    try:
        recover_from_peer(saboteur.ledger, config.record_count)
        print("ERROR: tampered ledger was accepted!")
    except TamperedLedgerError as exc:
        print(f"tampered source rejected as expected: {exc}")
    finally:
        saboteur.ledger.tamper_for_test(2, original)


if __name__ == "__main__":
    main()
