#!/usr/bin/env python3
"""Anatomy of geo-scale throughput: where do the bytes go?

Runs the same four-region deployment under flat PBFT and under GeoBFT
and dissects the WAN traffic with the tracing and analysis APIs:

* which region is the busiest cross-region sender (PBFT: the primary's
  region; GeoBFT: load spread over all four),
* how loaded each inter-region link is relative to its Table 1
  capacity,
* how many bytes each protocol ships across regions per committed
  transaction — the quantity GeoBFT's f+1 optimistic sharing minimizes.

Run with:  python examples/throughput_anatomy.py
"""

from repro import Deployment, ExperimentConfig
from repro.analysis.traffic import (
    busiest_sender_region,
    cross_region_totals,
    format_link_report,
    link_usage,
)


def run(protocol: str):
    config = ExperimentConfig(
        protocol=protocol,
        num_clusters=4,
        replicas_per_cluster=4,
        batch_size=50,
        clients_per_cluster=2,
        client_outstanding=4,
        duration=2.0,
        warmup=0.5,
        record_count=2000,
        fast_crypto=True,
        seed=23,
    )
    deployment = Deployment(config)
    result = deployment.run()
    return deployment, result


def dissect(protocol: str) -> None:
    deployment, result = run(protocol)
    print(f"\n=== {protocol} ===")
    print(result.describe())
    region, sent = busiest_sender_region(deployment.metrics)
    cross = sum(cross_region_totals(deployment.metrics).values())
    print(f"busiest WAN sender region : {region} "
          f"({sent / max(1, cross):.0%} of all cross-region bytes)")
    per_txn = result.global_bytes / max(1, result.completed_txns)
    print(f"WAN bytes per committed txn: {per_txn:.0f} B")
    rows = link_usage(deployment.metrics, deployment.topology,
                      window=result.duration)
    wan_rows = [r for r in rows if r.src_region != r.dst_region]
    print(format_link_report(wan_rows, limit=6))
    return per_txn


def main() -> None:
    pbft_per_txn = dissect("pbft")
    geo_per_txn = dissect("geobft")
    print(f"\nGeoBFT ships {pbft_per_txn / geo_per_txn:.1f}x fewer WAN "
          f"bytes per transaction than flat PBFT.")


if __name__ == "__main__":
    main()
