"""Figure 10 — throughput and latency as a function of the number of
clusters (regions), with a fixed total replica budget.

Paper setup: zn = 60 replicas spread over 1..6 regions added in the
order Oregon, Iowa, Montreal, Belgium, Taiwan, Sydney.  Expected shape
(§4.1): GeoBFT is the only protocol that *benefits* from added regions;
PBFT and Zyzzyva fall once remote continents join; Steward stays lowest;
HotStuff sits between with high latency.
"""

from __future__ import annotations

from repro.sweep import get_campaign, record_series, run_campaign

from common import assert_shape, campaign_note


def reproduce_figure10():
    """Shim over the registered ``fig10`` campaign (same points, same
    deterministic results; the campaign adds store caching and pool
    fan-out when run via ``repro sweep``)."""
    campaign_note("fig10")
    outcome = run_campaign(get_campaign("fig10"), jobs=1)
    assert outcome.ok, outcome.summary()
    records = outcome.records
    zs, throughput = record_series(records, "throughput_txn_s")
    _, latency = record_series(records, "avg_latency_s")
    print()
    print(outcome.artifacts["fig10"], end="")
    return zs, throughput, latency


def test_fig10_geoscale(benchmark):
    zs, throughput, latency = benchmark.pedantic(
        reproduce_figure10, rounds=1, iterations=1)
    soft = []
    geo, pbft = throughput["geobft"], throughput["pbft"]
    zyz, hs, steward = (throughput["zyzzyva"], throughput["hotstuff"],
                        throughput["steward"])
    last = len(zs) - 1

    # GeoBFT wins at geo scale, by a healthy factor over PBFT (paper:
    # up to 3.1x) and ahead of HotStuff (paper: up to 1.3x).
    assert_shape(geo[last] > 2.0 * pbft[last],
                 "GeoBFT >2x PBFT at max regions")
    assert_shape(geo[last] > hs[last], "GeoBFT beats HotStuff at geo scale")
    assert_shape(geo[last] > zyz[last], "GeoBFT beats Zyzzyva at geo scale")

    # Steward's centralized design + costly crypto keep it lowest.
    assert_shape(steward[last] == min(t[last] for t in throughput.values()),
                 "Steward lowest at geo scale")

    # Single-primary protocols *lose* throughput as remote regions are
    # added; GeoBFT does not collapse.
    assert_shape(pbft[last] < pbft[0], "PBFT falls with added regions")
    assert_shape(zyz[last] < zyz[0], "Zyzzyva falls with added regions")
    assert_shape(geo[last] > 0.5 * max(geo),
                 "GeoBFT sustains throughput across regions")

    # At a single cluster GeoBFT pays overhead vs plain PBFT (§4.1).
    assert_shape(geo[0] <= pbft[0] * 1.15,
                 "GeoBFT does not beat PBFT at one region", soft)

    # GeoBFT keeps the lowest latency at geo scale; HotStuff's 4-phase
    # design gives it high latency.
    assert_shape(latency["geobft"][last] <= latency["pbft"][last],
                 "GeoBFT latency at most PBFT's at geo scale", soft)
    assert_shape(latency["hotstuff"][last] > latency["geobft"][last],
                 "HotStuff latency above GeoBFT's", soft)
    if soft:
        print(f"\nsoft shape deviations (scaled-down run): {soft}")
