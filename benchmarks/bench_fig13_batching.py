"""Figure 13 — throughput as a function of the batch size (z = 4,
n = 7).

Expected shape (§4.4): the single-primary protocols (PBFT, Zyzzyva,
Steward) are bottlenecked by one replica's WAN bandwidth and plateau;
GeoBFT (a primary per region) and HotStuff (leaders everywhere) keep
scaling with the batch size.  The paper reports GeoBFT up to 6x PBFT
and up to 1.6x HotStuff at large batches.
"""

from __future__ import annotations

from repro.sweep import get_campaign, record_series, run_campaign

from common import PROTOCOLS, assert_shape, campaign_note

Z, N = 4, 7


def reproduce_figure13():
    """Shim over the registered ``fig13`` campaign."""
    campaign_note("fig13")
    outcome = run_campaign(get_campaign("fig13"), jobs=1)
    assert outcome.ok, outcome.summary()
    points, throughput = record_series(outcome.records, "throughput_txn_s")
    print()
    print(outcome.artifacts["fig13"], end="")
    return points, throughput


def test_fig13_batching(benchmark):
    points, throughput = benchmark.pedantic(
        reproduce_figure13, rounds=1, iterations=1)
    soft = []
    last = len(points) - 1
    geo, pbft, hs = (throughput["geobft"], throughput["pbft"],
                     throughput["hotstuff"])

    # Batching helps everyone relative to batch=10.
    for protocol in PROTOCOLS:
        series = throughput[protocol]
        assert_shape(max(series[1:]) > series[0],
                     f"{protocol} benefits from batching")

    # The decentralized protocols keep scaling to the largest batches;
    # GeoBFT ends clearly ahead of PBFT (paper: up to 6x) and ahead of
    # HotStuff (paper: up to 1.6x).
    assert_shape(geo[last] > 2.5 * pbft[last],
                 "GeoBFT >2.5x PBFT at batch 300")
    assert_shape(geo[last] > hs[last], "GeoBFT above HotStuff at batch 300")

    # Single-primary protocols plateau: their last doubling of the
    # batch size (150 -> 300 txns/batch) buys well under 2x txn
    # throughput, while GeoBFT's relative gain is larger.
    def gain(series):
        return series[last] / max(1.0, series[last - 1])

    for protocol in ("pbft", "zyzzyva", "steward"):
        assert_shape(gain(throughput[protocol]) < 1.45,
                     f"{protocol} plateaus at large batches", soft)
    assert_shape(gain(geo) >= gain(pbft) * 0.9,
                 "GeoBFT scales at least as well as PBFT in batch size",
                 soft)
    if soft:
        print(f"\nsoft shape deviations (scaled-down run): {soft}")
