"""Ablation — GeoBFT's inter-cluster sharing design choices.

Two design decisions from the paper are isolated here:

1. **How many replicas receive the global share** (§2.3, Example 2.4):
   the paper's optimistic ``f + 1`` protocol versus the broken
   single-message send (cannot distinguish sender/receiver failure and
   stalls under a Byzantine receiver) and the naive all-replica send
   (robust but wastes the scarce WAN bandwidth).

2. **Certificate representation** (§2.2): ``n - f`` commit signatures
   versus a constant-size threshold signature — the paper's optional
   optimization.  We quantify the certificate bytes saved.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.consensus.messages import CommitCertificate, preprepare_size_bytes
from repro.core.config import GeoBftConfig
from repro.crypto.threshold import THRESHOLD_SIGNATURE_SIZE
from repro.types import max_faulty

from common import assert_shape, point_config, run_point

Z, N = 4, 7


def _run_strategy(strategy):
    config = point_config("geobft", Z, N, duration=1.4)
    config.geobft = GeoBftConfig(sharing_strategy=strategy,
                                 remote_timeout=10.0)
    return run_point(config)


def _certificate_bytes(n, batch=100):
    quorum = n - max_faulty(n)
    classic = preprepare_size_bytes(batch) + 143 * quorum
    threshold = preprepare_size_bytes(batch) + THRESHOLD_SIGNATURE_SIZE
    return classic, threshold


def reproduce_sharing_ablation():
    rows = []
    results = {}
    for strategy in ("single", "optimistic_f1", "all"):
        result = _run_strategy(strategy)
        results[strategy] = result
        rows.append([
            strategy,
            result.throughput_txn_s,
            result.global_messages,
            result.global_bytes / 1e6,
            result.global_bytes / max(1, result.completed_txns),
            "ok" if result.safety_ok else "VIOLATED",
        ])
    print()
    print(format_table(
        ["strategy", "tput (txn/s)", "global msgs", "global MB",
         "WAN B/txn", "safety"],
        rows,
        title=f"Ablation — inter-cluster sharing strategy (z={Z}, n={N})",
    ))

    cert_rows = []
    for n in (4, 7, 13, 31):
        classic, threshold = _certificate_bytes(n)
        cert_rows.append([n, classic, threshold,
                          f"{classic / threshold:.2f}x"])
    print()
    print(format_table(
        ["n", "classic cert (B)", "threshold cert (B)", "savings"],
        cert_rows,
        title="Ablation — certificate size: n-f signatures vs threshold "
              "signature (batch 100)",
    ))
    return results


def test_ablation_sharing(benchmark):
    results = benchmark.pedantic(reproduce_sharing_ablation,
                                 rounds=1, iterations=1)
    optimistic = results["optimistic_f1"]
    naive_all = results["all"]
    single = results["single"]

    # All strategies are safe in failure-free runs.
    for result in results.values():
        assert result.safety_ok

    def wan_bytes_per_txn(result):
        return result.global_bytes / max(1, result.completed_txns)

    # f+1 ships a fraction of the all-replica strategy's WAN bytes per
    # committed transaction...
    assert_shape(
        wan_bytes_per_txn(optimistic) < 0.55 * wan_bytes_per_txn(naive_all),
        "optimistic f+1 sharing saves >45% of 'all' strategy WAN bytes "
        "per transaction")
    # ...while sustaining at least comparable throughput.
    assert_shape(
        optimistic.throughput_txn_s >= 0.85 * naive_all.throughput_txn_s,
        "optimistic sharing does not cost throughput")

    # The single-message strategy is cheaper still, but it is *unsafe
    # against failures* (Example 2.4) — that is why the paper rejects
    # it despite the bytes.  Here we just confirm the cost ordering.
    assert_shape(
        wan_bytes_per_txn(single) < wan_bytes_per_txn(optimistic),
        "single-message send is the cheapest (and broken) option")

    # Threshold certificates are constant-size: savings grow with n.
    small_classic, small_thresh = _certificate_bytes(4)
    big_classic, big_thresh = _certificate_bytes(31)
    assert small_thresh == big_thresh  # constant proof size
    assert (big_classic - big_thresh) > (small_classic - small_thresh)
