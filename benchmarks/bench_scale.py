"""Scaling benchmark: host wall-time of paper-scale GeoBFT deployments.

The paper's headline figures run 60–91 replicas across six regions;
this benchmark tracks how fast the *simulation engine* reproduces such
deployments on the host.  It sweeps total replica counts
n ∈ {16, 32, 64, 91} (GeoBFT, saturated clients, batch 100) and writes
``BENCH_scale.json`` — the repo's perf trajectory file.  The committed
copy is the baseline the CI ``perf-smoke`` job compares against.

Three guards per point:

* **wall-time budget** (``--budget-s``): the point must finish within
  an absolute host budget — catches catastrophic regressions even with
  no baseline available.
* **calibrated rate regression** (``--baseline``): events/s is
  normalized by a host-calibration loop (pure-Python ops/s measured in
  the same process), so the comparison is meaningful across machines
  of different speeds.  A calibrated rate below ``1 - tolerance`` of
  the baseline fails the run.
* **digest equality**: the ``deployment_digest`` of every point is a
  pure function of the configuration, so it must match the baseline
  *exactly* on any host — a free cross-machine determinism check.

Usage::

    python benchmarks/bench_scale.py                    # full sweep
    python benchmarks/bench_scale.py --points 16 \\
        --baseline BENCH_scale.json --budget-s 120      # CI smoke
    REPRO_PROFILE=1 python benchmarks/bench_scale.py --points 16

Run with ``--update`` to rewrite the committed baseline after an
intentional perf change.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

try:
    from repro.bench.deployment import (Deployment, ExperimentConfig,
                                        deployment_digest)
except ImportError:  # running from a source checkout without install
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.bench.deployment import (Deployment, ExperimentConfig,
                                        deployment_digest)

SCHEMA = "bench-scale/1"
DEFAULT_POINTS = (16, 32, 64, 91)
DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "..",
                              "BENCH_scale.json")
REGRESSION_TOLERANCE = 0.30

#: Simulated seconds per point: long enough that queue depths and vote
#: traffic reach steady state, short enough that the n=91 point stays
#: tractable on a laptop-class host.
SIM_DURATION = 1.2
SIM_WARMUP = 0.3


def scale_config(total: int, seed: int = 2,
                 protocol: str = "geobft") -> ExperimentConfig:
    """Deployment config for ``total`` replicas.

    n=91 reproduces the paper's six-region spread (16+15×5); the
    smaller points use four equal clusters so f ≥ 1 per cluster holds
    down to n=16.
    """
    if total == 91:
        z, sizes = 6, [16, 15, 15, 15, 15, 15]
    else:
        z, sizes = 4, [total // 4] * 4
    return ExperimentConfig(
        protocol=protocol,
        num_clusters=z,
        replicas_per_cluster=sizes[0],
        cluster_sizes=sizes,
        batch_size=100,
        duration=SIM_DURATION,
        warmup=SIM_WARMUP,
        seed=seed,
        record_count=10_000,
        fast_crypto=True,
    )


def calibrate_host(rounds: int = 400_000) -> float:
    """Pure-Python ops/s of this host — dict/tuple/arith mix.

    The simulator's hot loop is interpreter-bound, so a small
    interpreter-bound loop is the right normalizer for cross-machine
    rate comparisons (C-extension speed, e.g. hashlib, matters far
    less).
    """
    best = float("inf")
    for _ in range(3):
        d = {}
        acc = 0
        t0 = time.perf_counter()
        for i in range(rounds):
            d[i & 1023] = (i, acc)
            acc += i * 3 // 2
            if acc > 1 << 40:
                acc &= (1 << 30) - 1
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return rounds / best


def run_point(total: int, repeats: int = 1, profile: bool = False) -> dict:
    """Best-of-``repeats`` wall time for one sweep point."""
    best_wall = float("inf")
    record = None
    for _ in range(max(1, repeats)):
        config = scale_config(total)
        deployment = Deployment(config)
        profiler = None
        if profile:
            import cProfile
            profiler = cProfile.Profile()
            profiler.enable()
        t0 = time.perf_counter()
        result = deployment.run()
        wall = time.perf_counter() - t0
        if profiler is not None:
            profiler.disable()
            import pstats
            print(f"\nREPRO_PROFILE=1 — n={total} top 20 by internal time:")
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.strip_dirs().sort_stats("tottime").print_stats(20)
            profile = False  # profile only the first repeat
        if wall < best_wall:
            best_wall = wall
            events = deployment.sim.events_processed
            record = {
                "n": total,
                "protocol": config.protocol,
                "wall_s": round(wall, 3),
                "events": events,
                "events_per_s": round(events / wall),
                "throughput_txn_s": round(result.throughput_txn_s),
                "avg_latency_s": round(result.avg_latency_s, 6),
                "max_queue_depth": deployment.sim.max_queue_depth,
                "digest": deployment_digest(deployment, result),
            }
    return record


def compare_to_baseline(points: List[dict], calibration: float,
                        baseline: dict,
                        tolerance: float = REGRESSION_TOLERANCE,
                        ) -> List[str]:
    """Return a list of failure strings (empty == pass)."""
    failures: List[str] = []
    base_cal = baseline.get("host", {}).get("calibration_ops_per_s")
    base_points = {p["n"]: p for p in baseline.get("points", [])}
    for point in points:
        base = base_points.get(point["n"])
        if base is None:
            continue
        if base["digest"] != point["digest"]:
            failures.append(
                f"n={point['n']}: deployment_digest mismatch vs baseline "
                f"({point['digest'][:12]}… != {base['digest'][:12]}…) — "
                "simulated behaviour changed")
        if not base_cal or not calibration:
            continue
        # events per calibration-op: host-speed-normalized engine rate.
        current_rate = point["events_per_s"] / calibration
        base_rate = base["events_per_s"] / base_cal
        if current_rate < base_rate * (1.0 - tolerance):
            failures.append(
                f"n={point['n']}: calibrated event rate regressed "
                f"{(1.0 - current_rate / base_rate) * 100:.0f}% "
                f"(>{tolerance * 100:.0f}% tolerance): "
                f"{current_rate:.2f} vs baseline {base_rate:.2f} "
                "events per calibration-op")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--points", default=None,
                        help="comma-separated n values "
                             f"(default {','.join(map(str, DEFAULT_POINTS))})")
    parser.add_argument("--repeats", type=int, default=1,
                        help="wall-time repeats per point (best-of)")
    parser.add_argument("--output", default=None,
                        help="write results JSON here "
                             "(default: repo-root BENCH_scale.json when "
                             "running the full sweep; otherwise not written)")
    parser.add_argument("--baseline", default=None,
                        help="compare against this committed BENCH_scale.json"
                             " and fail on >30%% calibrated regression or "
                             "any digest mismatch")
    parser.add_argument("--budget-s", type=float, default=None,
                        help="absolute wall-time budget per point (seconds)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the default baseline file")
    args = parser.parse_args(argv)

    points_arg = (tuple(int(x) for x in args.points.split(","))
                  if args.points else DEFAULT_POINTS)
    profile = os.environ.get("REPRO_PROFILE") == "1"

    calibration = calibrate_host()
    print(f"host calibration: {calibration:,.0f} pure-Python ops/s")

    results: List[dict] = []
    over_budget: List[str] = []
    for total in points_arg:
        point = run_point(total, repeats=args.repeats, profile=profile)
        profile = False  # profile only the first point
        results.append(point)
        print(json.dumps(point))
        if args.budget_s is not None and point["wall_s"] > args.budget_s:
            over_budget.append(
                f"n={total}: wall {point['wall_s']:.1f}s exceeds "
                f"budget {args.budget_s:.1f}s")

    payload = {
        "schema": SCHEMA,
        "benchmark": "scale sweep (geobft, saturated, batch=100, "
                     f"duration={SIM_DURATION}s)",
        "host": {
            "calibration_ops_per_s": round(calibration),
            "python": ".".join(map(str, sys.version_info[:3])),
        },
        "points": results,
    }

    failures = list(over_budget)
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures += compare_to_baseline(results, calibration, baseline)

    output = args.output
    if output is None and (args.update or points_arg == DEFAULT_POINTS):
        output = DEFAULT_OUTPUT
    if output:
        with open(output, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {os.path.relpath(output)}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("scale benchmark: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
