"""Scaling benchmark: host wall-time of paper-scale GeoBFT deployments.

The paper's headline figures run 60–91 replicas across six regions;
this benchmark tracks how fast the *simulation engine* reproduces such
deployments on the host.  It sweeps total replica counts
n ∈ {16, 32, 64, 91, 256} (GeoBFT, saturated clients, batch 100), each
point through both engines (``--workers 1,2``: serial, then the
per-cluster worker processes of ``repro.bench.parallel``), and writes
``BENCH_scale.json`` — the repo's perf trajectory file.  The committed
copy is the baseline the CI ``perf-smoke`` job compares against.
Parallel points double as a paper-scale parity gate: every workers
value at a given n must land on the same ``deployment_digest``, and
any divergence fails the run.  Wall-time speedup from the parallel
points requires a multi-core host (the ``host.cpus`` field records
what the committed numbers were measured on).

Three guards per point:

* **wall-time budget** (``--budget-s``): the point must finish within
  an absolute host budget — catches catastrophic regressions even with
  no baseline available.
* **calibrated rate regression** (``--baseline``): events/s is
  normalized by a host-calibration loop (pure-Python ops/s measured in
  the same process), so the comparison is meaningful across machines
  of different speeds.  A calibrated rate below ``1 - tolerance`` of
  the baseline fails the run.
* **digest equality**: the ``deployment_digest`` of every point is a
  pure function of the configuration, so it must match the baseline
  *exactly* on any host — a free cross-machine determinism check.

Usage::

    python benchmarks/bench_scale.py                    # full sweep
    python benchmarks/bench_scale.py --points 16 \\
        --baseline BENCH_scale.json --budget-s 120      # CI smoke
    REPRO_PROFILE=1 python benchmarks/bench_scale.py --points 16

Run with ``--update`` to rewrite the committed baseline after an
intentional perf change.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import List, Optional

try:
    from repro.bench.deployment import Deployment, deployment_digest
except ImportError:  # running from a source checkout without install
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.bench.deployment import Deployment, deployment_digest
from repro.bench.parallel import parallel_unsupported_reason, run_parallel
# Single-sourced with the sweep package: the ``scale``/``ci-smoke``
# campaigns build identical configs and the store's renderer writes the
# identical baseline format, so the two paths stay byte-compatible.
from repro.sweep.calibrate import calibrate_host
from repro.sweep.campaigns import scale_config
from repro.sweep.store import SCALE_BENCHMARK, SCALE_SCHEMA as SCHEMA

DEFAULT_POINTS = (16, 32, 64, 91, 256)
DEFAULT_WORKERS = (1, 2)
DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "..",
                              "BENCH_scale.json")
REGRESSION_TOLERANCE = 0.30


def run_point(total: int, repeats: int = 1, profile: bool = False,
              workers: int = 1) -> dict:
    """Best-of-``repeats`` wall time for one sweep point.

    ``workers > 1`` routes the point through the parallel engine
    (per-cluster worker processes, conservative-lookahead sync); the
    recorded digest must match the serial point's — the sweep is also
    a cross-engine parity check at paper scale.
    """
    best_wall = float("inf")
    record = None
    for _ in range(max(1, repeats)):
        config = scale_config(total)
        if workers > 1:
            config = dataclasses.replace(config, workers=workers)
            reason = parallel_unsupported_reason(config)
            if reason is not None:
                raise SystemExit(
                    f"n={total} workers={workers}: parallel engine "
                    f"refused the configuration ({reason})")
            t0 = time.perf_counter()
            run = run_parallel(config)
            wall = time.perf_counter() - t0
            if wall < best_wall:
                best_wall = wall
                record = {
                    "n": total,
                    "workers": workers,
                    "protocol": config.protocol,
                    "wall_s": round(wall, 3),
                    "events": run.events_processed,
                    "events_per_s": round(run.events_processed / wall),
                    "throughput_txn_s": round(run.result.throughput_txn_s),
                    "avg_latency_s": round(run.result.avg_latency_s, 6),
                    "max_queue_depth": run.max_queue_depth,
                    "digest": run.digest,
                }
            continue
        deployment = Deployment(config)
        profiler = None
        if profile:
            import cProfile
            profiler = cProfile.Profile()
            profiler.enable()
        t0 = time.perf_counter()
        result = deployment.run()
        wall = time.perf_counter() - t0
        if profiler is not None:
            profiler.disable()
            import pstats
            print(f"\nREPRO_PROFILE=1 — n={total} top 20 by internal time:")
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.strip_dirs().sort_stats("tottime").print_stats(20)
            profile = False  # profile only the first repeat
        if wall < best_wall:
            best_wall = wall
            events = deployment.sim.events_processed
            record = {
                "n": total,
                "workers": 1,
                "protocol": config.protocol,
                "wall_s": round(wall, 3),
                "events": events,
                "events_per_s": round(events / wall),
                "throughput_txn_s": round(result.throughput_txn_s),
                "avg_latency_s": round(result.avg_latency_s, 6),
                "max_queue_depth": deployment.sim.max_queue_depth,
                "digest": deployment_digest(deployment, result),
            }
    return record


def compare_to_baseline(points: List[dict], calibration: float,
                        baseline: dict,
                        tolerance: float = REGRESSION_TOLERANCE,
                        ) -> List[str]:
    """Return a list of failure strings (empty == pass)."""
    failures: List[str] = []
    base_cal = baseline.get("host", {}).get("calibration_ops_per_s")
    # schema v1 baselines predate the parallel sweep: workers defaults 1.
    base_points = {(p["n"], p.get("workers", 1)): p
                   for p in baseline.get("points", [])}
    for point in points:
        workers = point.get("workers", 1)
        base = base_points.get((point["n"], workers))
        if base is None:
            continue
        label = f"n={point['n']} workers={workers}"
        if base["digest"] != point["digest"]:
            failures.append(
                f"{label}: deployment_digest mismatch vs baseline "
                f"({point['digest'][:12]}… != {base['digest'][:12]}…) — "
                "simulated behaviour changed")
        if not base_cal or not calibration:
            continue
        # events per calibration-op: host-speed-normalized engine rate.
        current_rate = point["events_per_s"] / calibration
        base_rate = base["events_per_s"] / base_cal
        if current_rate < base_rate * (1.0 - tolerance):
            failures.append(
                f"{label}: calibrated event rate regressed "
                f"{(1.0 - current_rate / base_rate) * 100:.0f}% "
                f"(>{tolerance * 100:.0f}% tolerance): "
                f"{current_rate:.2f} vs baseline {base_rate:.2f} "
                "events per calibration-op")
    return failures


def cross_engine_parity(points: List[dict]) -> List[str]:
    """Serial and parallel points at the same n must share one digest.

    This is the sweep's free correctness gate: any divergence between
    the engines at paper scale fails the benchmark before perf is even
    considered.
    """
    failures: List[str] = []
    by_n: dict = {}
    for point in points:
        by_n.setdefault(point["n"], []).append(point)
    for total, group in sorted(by_n.items()):
        digests = {p["digest"] for p in group}
        if len(digests) > 1:
            detail = ", ".join(
                f"workers={p.get('workers', 1)}:{p['digest'][:12]}…"
                for p in group)
            failures.append(
                f"n={total}: serial/parallel digest divergence ({detail})")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--points", default=None,
                        help="comma-separated n values "
                             f"(default {','.join(map(str, DEFAULT_POINTS))})")
    parser.add_argument("--repeats", type=int, default=1,
                        help="wall-time repeats per point (best-of)")
    parser.add_argument("--workers", default=None,
                        help="comma-separated worker counts per point "
                             f"(default "
                             f"{','.join(map(str, DEFAULT_WORKERS))}; "
                             "1 = serial engine, >1 = parallel engine — "
                             "digests must agree across all of them)")
    parser.add_argument("--output", default=None,
                        help="write results JSON here "
                             "(default: repo-root BENCH_scale.json when "
                             "running the full sweep; otherwise not written)")
    parser.add_argument("--baseline", default=None,
                        help="compare against this committed BENCH_scale.json"
                             " and fail on >30%% calibrated regression or "
                             "any digest mismatch")
    parser.add_argument("--budget-s", type=float, default=None,
                        help="absolute wall-time budget per point (seconds)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the default baseline file")
    args = parser.parse_args(argv)

    points_arg = (tuple(int(x) for x in args.points.split(","))
                  if args.points else DEFAULT_POINTS)
    workers_arg = (tuple(int(x) for x in args.workers.split(","))
                   if args.workers else DEFAULT_WORKERS)
    profile = os.environ.get("REPRO_PROFILE") == "1"

    calibration = calibrate_host()
    print(f"host calibration: {calibration:,.0f} pure-Python ops/s")
    cpus = os.cpu_count() or 1
    if any(w > 1 for w in workers_arg) and cpus < 2:
        print(f"note: host has {cpus} CPU core(s) — parallel points "
              "verify digest parity but cannot beat serial wall time")

    results: List[dict] = []
    over_budget: List[str] = []
    for total in points_arg:
        for workers in workers_arg:
            point = run_point(total, repeats=args.repeats,
                              profile=profile, workers=workers)
            profile = False  # profile only the first point
            results.append(point)
            print(json.dumps(point))
            if (args.budget_s is not None
                    and point["wall_s"] > args.budget_s):
                over_budget.append(
                    f"n={total} workers={workers}: wall "
                    f"{point['wall_s']:.1f}s exceeds "
                    f"budget {args.budget_s:.1f}s")

    payload = {
        "schema": SCHEMA,
        "benchmark": SCALE_BENCHMARK,
        "host": {
            "calibration_ops_per_s": round(calibration),
            "cpus": cpus,
            "python": ".".join(map(str, sys.version_info[:3])),
        },
        "points": results,
    }

    failures = list(over_budget)
    failures += cross_engine_parity(results)
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures += compare_to_baseline(results, calibration, baseline)

    output = args.output
    if output is None and (args.update
                           or (points_arg == DEFAULT_POINTS
                               and workers_arg == DEFAULT_WORKERS)):
        output = DEFAULT_OUTPUT
    if output:
        with open(output, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {os.path.relpath(output)}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("scale benchmark: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
