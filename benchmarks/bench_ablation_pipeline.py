"""Ablation — pipelined, out-of-order rounds (§2.5).

The paper stresses that only ordering/execution needs strict rounds:
local replication and inter-cluster sharing of *future* rounds proceed
in parallel, so "GeoBFT needs minimal synchronization between
clusters".  This ablation disables that overlap: a round-pipeline
window of 1 forces a cluster to finish executing round ``rho`` before
replicating round ``rho + 1`` (every round pays the full WAN exchange),
and the window is swept upward toward the paper's unbounded design.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.config import GeoBftConfig

from common import assert_shape, point_config, run_point

Z, N = 4, 7
WINDOWS = (1, 2, 4, 8, 16, 32)


def reproduce_pipeline_ablation():
    rows = []
    series = {}
    for window in WINDOWS:
        config = point_config("geobft", Z, N, duration=1.4)
        config.geobft = GeoBftConfig(
            remote_timeout=10.0,
            round_pipeline=window,
        )
        result = run_point(config)
        series[window] = result
        rows.append([window, result.throughput_txn_s,
                     result.avg_latency_s])
    # The paper's design: unbounded overlap.
    config = point_config("geobft", Z, N, duration=1.4)
    config.geobft = GeoBftConfig(remote_timeout=10.0, round_pipeline=None)
    unbounded = run_point(config)
    series["unbounded"] = unbounded
    rows.append(["unbounded", unbounded.throughput_txn_s,
                 unbounded.avg_latency_s])
    print()
    print(format_table(
        ["round window", "tput (txn/s)", "avg latency (s)"],
        rows,
        title=f"Ablation — GeoBFT round-pipeline window (z={Z}, n={N}, "
              f"batch=100)",
    ))
    return series


def test_ablation_pipeline(benchmark):
    series = benchmark.pedantic(reproduce_pipeline_ablation,
                                rounds=1, iterations=1)
    sequential = series[1].throughput_txn_s
    deep = series["unbounded"].throughput_txn_s

    # Pipelining is a large fraction of GeoBFT's performance: strictly
    # sequential rounds (window 1) pay a WAN round trip per round.
    assert_shape(deep > 3.0 * sequential,
                 "pipelining buys >3x over strictly sequential rounds")

    # Throughput grows with the round window until the system is
    # capacity-bound; past that point a moderate window can even edge
    # out unbounded overlap (it throttles certify-queue contention), so
    # only require near-monotonicity.
    values = [series[w].throughput_txn_s for w in WINDOWS]
    for shallow, deeper in zip(values, values[1:]):
        assert_shape(deeper >= shallow * 0.8,
                     "throughput near-non-decreasing in round window")

    # Safety is window-independent.
    assert all(result.safety_ok for result in series.values())
