"""Table 1 — inter- and intra-cluster communication costs.

Regenerates the paper's Table 1 by *measuring* the simulated network:
ping round-trip times (a tiny message each way) and achievable bandwidth
(a bulk transfer) between machines in all six Google Cloud regions.  The
measured matrix must match the configured one — this validates that the
substrate really exhibits the paper's WAN characteristics.
"""

from __future__ import annotations

import pytest

from repro.net.topology import PAPER_REGIONS
from repro.sweep.reports import format_table1, probe_table1

from common import campaign_note


def reproduce_table1():
    """Shim over the ``table1`` campaign's probe matrix (the campaign
    has no deployment runs — its report measures the network substrate
    directly)."""
    campaign_note("table1")
    topology, measured = probe_table1()
    print()
    print(format_table1(measured), end="")
    return topology, measured


def test_table1_network_matrix(benchmark):
    topology, measured = benchmark.pedantic(
        reproduce_table1, rounds=1, iterations=1)
    for (a, b), (rtt, bw) in measured.items():
        assert rtt == pytest.approx(topology.rtt_ms(a, b), rel=0.02)
        # Bulk measurement slightly underestimates due to framing; a
        # few percent tolerance mirrors iperf noise.
        assert bw == pytest.approx(topology.bandwidth_mbit(a, b), rel=0.05)
    # The paper's headline observations (§1.1):
    local_rtts = [measured[(a, a)][0] for a in PAPER_REGIONS]
    assert max(local_rtts) <= 1.01
    assert measured[("belgium", "sydney")][0] > 250
    assert measured[("oregon", "oregon")][1] > 50 * measured[
        ("oregon", "sydney")][1]
