"""Table 1 — inter- and intra-cluster communication costs.

Regenerates the paper's Table 1 by *measuring* the simulated network:
ping round-trip times (a tiny message each way) and achievable bandwidth
(a bulk transfer) between machines in all six Google Cloud regions.  The
measured matrix must match the configured one — this validates that the
substrate really exhibits the paper's WAN characteristics.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.net.network import Network
from repro.net.simulator import Simulation
from repro.net.topology import PAPER_REGIONS, Topology
from repro.types import replica_id


class _Probe:
    """A measurement endpoint that echoes pings."""

    def __init__(self, node_id, region, network):
        self.node_id = node_id
        self.region = region
        self.network = network
        self.received_at = {}
        network.register(self)

    def deliver(self, message, sender):
        kind, ident, size = message
        if kind == "ping":
            self.network.send(self.node_id, sender,
                              _Sized(("pong", ident, size)))
        else:
            self.received_at[ident] = self.network.simulation.now


class _Sized(tuple):
    def size_bytes(self):
        return self[2]


def _probe_pair(topology, region_a, region_b):
    """Measure (rtt_ms, bandwidth_mbit) between two regions."""
    sim = Simulation()
    network = Network(sim, topology)
    a = _Probe(replica_id(1, 1), region_a, network)
    b = _Probe(replica_id(2, 1), region_b, network)
    # Ping: 64-byte message both ways.
    start = sim.now
    network.send(a.node_id, b.node_id, _Sized(("ping", "p1", 64)))
    sim.run()
    rtt_ms = (a.received_at["p1"] - start) * 1000.0
    # Bandwidth: time a 4 MB bulk transfer, subtract propagation.
    size = 4_000_000
    start = sim.now
    network.send(a.node_id, b.node_id, _Sized(("data", "d1", size)))
    sim.run()
    elapsed = b.received_at["d1"] - start
    transfer = elapsed - topology.latency(region_a, region_b)
    bandwidth_mbit = size * 8 / transfer / 1e6
    return rtt_ms, bandwidth_mbit


def reproduce_table1():
    topology = Topology.paper(6)
    rtt_rows, bw_rows = [], []
    measured = {}
    for i, a in enumerate(PAPER_REGIONS):
        rtt_row, bw_row = [a], [a]
        for j, b in enumerate(PAPER_REGIONS):
            if j < i:
                rtt_row.append("")
                bw_row.append("")
                continue
            rtt, bw = _probe_pair(topology, a, b)
            measured[(a, b)] = (rtt, bw)
            rtt_row.append(round(rtt, 1))
            bw_row.append(round(bw))
        rtt_rows.append(rtt_row)
        bw_rows.append(bw_row)
    header = ["region"] + [r[:3].upper() for r in PAPER_REGIONS]
    print()
    print(format_table(header, rtt_rows,
                       title="Table 1 (reproduced) — ping RTT (ms)"))
    print()
    print(format_table(header, bw_rows,
                       title="Table 1 (reproduced) — bandwidth (Mbit/s)"))
    return topology, measured


def test_table1_network_matrix(benchmark):
    topology, measured = benchmark.pedantic(
        reproduce_table1, rounds=1, iterations=1)
    for (a, b), (rtt, bw) in measured.items():
        assert rtt == pytest.approx(topology.rtt_ms(a, b), rel=0.02)
        # Bulk measurement slightly underestimates due to framing; a
        # few percent tolerance mirrors iperf noise.
        assert bw == pytest.approx(topology.bandwidth_mbit(a, b), rel=0.05)
    # The paper's headline observations (§1.1):
    local_rtts = [measured[(a, a)][0] for a in PAPER_REGIONS]
    assert max(local_rtts) <= 1.01
    assert measured[("belgium", "sydney")][0] > 250
    assert measured[("oregon", "oregon")][1] > 50 * measured[
        ("oregon", "sydney")][1]
