"""Figure 11 — throughput and latency as a function of replicas per
cluster, with z = 4 regions (Oregon, Iowa, Montreal, Belgium).

Expected shape (§4.2): PBFT, Zyzzyva, and Steward are barely affected by
n (their bottleneck is the single primary's WAN links); HotStuff's
latency grows with n; GeoBFT loses some throughput as n grows (bigger
certificates, f + 1 targets) but stays on top — the paper reports 2.9x
PBFT and 1.2x HotStuff even at n = 15.
"""

from __future__ import annotations

from repro.sweep import get_campaign, record_series, run_campaign

from common import assert_shape, campaign_note

Z = 4


def reproduce_figure11():
    """Shim over the registered ``fig11`` campaign."""
    campaign_note("fig11")
    outcome = run_campaign(get_campaign("fig11"), jobs=1)
    assert outcome.ok, outcome.summary()
    records = outcome.records
    points, throughput = record_series(records, "throughput_txn_s")
    _, latency = record_series(records, "avg_latency_s")
    print()
    print(outcome.artifacts["fig11"], end="")
    return points, throughput, latency


def test_fig11_cluster_size(benchmark):
    points, throughput, latency = benchmark.pedantic(
        reproduce_figure11, rounds=1, iterations=1)
    soft = []
    last = len(points) - 1
    geo = throughput["geobft"]

    # GeoBFT on top at every cluster size.
    for i, n in enumerate(points):
        assert_shape(
            geo[i] == max(t[i] for t in throughput.values()),
            f"GeoBFT highest at n={n}")

    # ... and still well ahead of PBFT at the largest n (paper: 2.9x).
    assert_shape(geo[last] > 1.8 * throughput["pbft"][last],
                 "GeoBFT >1.8x PBFT at max n")

    # Steward lowest throughout (centralized + costly crypto).
    for i, n in enumerate(points):
        assert_shape(
            throughput["steward"][i] == min(t[i]
                                            for t in throughput.values()),
            f"Steward lowest at n={n}", soft)

    # PBFT's throughput is insensitive to n (within 2x across the
    # sweep) — the primary's WAN links dominate, not the group size.
    pbft = throughput["pbft"]
    assert_shape(max(pbft) < 2.5 * min(pbft),
                 "PBFT roughly flat in n", soft)

    # HotStuff latency grows with n (QC size and vote fan-in).
    hs_lat = latency["hotstuff"]
    assert_shape(hs_lat[last] >= hs_lat[0],
                 "HotStuff latency grows with n", soft)
    if soft:
        print(f"\nsoft shape deviations (scaled-down run): {soft}")
