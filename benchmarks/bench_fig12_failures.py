"""Figure 12 — throughput under failures (z = 4 regions).

Three panels (§4.3):

* **left** — one non-primary replica crashes: minor impact everywhere
  except Zyzzyva, whose throughput plummets toward zero.
* **middle** — f non-primary replicas crash in every cluster (GeoBFT's
  design worst case): moderate impact, Zyzzyva still collapsed.
* **right** — a single primary crashes mid-run (Oregon's cluster
  primary for GeoBFT, the global primary for PBFT; checkpoints every
  600 txns, failure after ~900 txns): both protocols recover via view
  changes at a small overall throughput cost.  Zyzzyva (collapses
  anyway), HotStuff (no fixed primary), and Steward (no view-change
  implementation) are excluded, as in the paper.
"""

from __future__ import annotations

from repro.bench.reporting import format_figure_series

from common import (
    PROTOCOLS,
    assert_shape,
    failure_points,
    point_config,
    run_point,
)

Z = 4


def _config(protocol, n, **overrides):
    # Durations pass through point_config, which applies the
    # REPRO_BENCH_TIME_SCALE / REPRO_BENCH_DURATION environment knobs.
    params = dict(duration=2.0, warmup=0.5)
    params.update(overrides)
    return point_config(protocol, Z, n, **params)


def _panel(scenario, protocols, fail_at=0.0, absolute_duration=None,
           **overrides):
    points = failure_points()
    series = {}
    for protocol in protocols:
        values = []
        for n in points:
            config = _config(protocol, n, **overrides)
            if absolute_duration is not None:
                # Recovery timeouts are absolute (view-change and client
                # retry timers), so this window must not shrink with
                # REPRO_BENCH_TIME_SCALE.
                config.duration = absolute_duration
            values.append(run_point(config, scenario,
                                    fail_at=fail_at).throughput_txn_s)
        series[protocol] = values
    return points, series


def reproduce_figure12():
    points, one_failure = _panel("one_backup", PROTOCOLS)
    _, f_failures = _panel("f_backups", PROTOCOLS)
    # Primary failure: crash after ~900 txns are through (the paper's
    # setup); checkpoints every 6 decisions = 600 txns at batch 100.
    _, primary = _panel(
        "primary", ("geobft", "pbft"), fail_at=0.8,
        absolute_duration=4.5, warmup=0.4,
        view_change_timeout=0.6, client_retry_timeout=1.2,
        checkpoint_interval=6,
    )
    baseline = {}
    for protocol in ("geobft", "pbft"):
        values = []
        for n in points:
            config = _config(protocol, n, warmup=0.4)
            config.duration = 4.5
            values.append(run_point(config).throughput_txn_s)
        baseline[protocol] = values
    print()
    print(format_figure_series(
        "Figure 12 left (reproduced) — one non-primary failure",
        "n", points, one_failure, "txn/s"))
    print()
    print(format_figure_series(
        "Figure 12 middle (reproduced) — f non-primary failures/cluster",
        "n", points, f_failures, "txn/s"))
    print()
    print(format_figure_series(
        "Figure 12 right (reproduced) — single primary failure",
        "n", points, primary, "txn/s"))
    print()
    print(format_figure_series(
        "(reference) failure-free runs for the primary-failure panel",
        "n", points, baseline, "txn/s"))
    return points, one_failure, f_failures, primary, baseline


def test_fig12_failures(benchmark):
    points, one_failure, f_failures, primary, baseline = benchmark.pedantic(
        reproduce_figure12, rounds=1, iterations=1)
    soft = []

    # Zyzzyva collapses under any failure (paper: "plummets to zero").
    for series in (one_failure, f_failures):
        for i in range(len(points)):
            others = [series[p][i] for p in ("geobft", "pbft", "hotstuff")]
            assert_shape(series["zyzzyva"][i] < 0.25 * max(others),
                         f"Zyzzyva collapsed at n={points[i]}")

    # The other protocols keep operating under crash faults.
    for protocol in ("geobft", "pbft", "hotstuff", "steward"):
        for series in (one_failure, f_failures):
            assert_shape(all(v > 0 for v in series[protocol]),
                         f"{protocol} alive under crash faults")

    # GeoBFT still on top under its design worst case (f per cluster).
    for i in range(len(points)):
        non_zyz = {p: f_failures[p][i] for p in f_failures
                   if p != "zyzzyva"}
        assert_shape(max(non_zyz, key=non_zyz.get) == "geobft",
                     f"GeoBFT highest under f failures at n={points[i]}",
                     soft)

    # Primary failure: both GeoBFT and PBFT recover and keep
    # committing transactions.  The paper's 180-second runs amortize
    # the ~2-second outage into 'a small reduction'; our few-second
    # window makes the same absolute outage look proportionally larger,
    # so the check is that a solid fraction of throughput survives a
    # run that is mostly view-change-and-recovery.
    for protocol in ("geobft", "pbft"):
        for i in range(len(points)):
            retained = primary[protocol][i] / max(1.0,
                                                  baseline[protocol][i])
            assert_shape(retained > 0.15,
                         f"{protocol} recovers from primary failure at "
                         f"n={points[i]} (retained {retained:.2f})")
            assert_shape(primary[protocol][i] > 1000,
                         f"{protocol} keeps committing after the "
                         f"primary crash at n={points[i]}")
    if soft:
        print(f"\nsoft shape deviations (scaled-down run): {soft}")
