"""Figure 12 — throughput under failures (z = 4 regions).

Three panels (§4.3):

* **left** — one non-primary replica crashes: minor impact everywhere
  except Zyzzyva, whose throughput plummets toward zero.
* **middle** — f non-primary replicas crash in every cluster (GeoBFT's
  design worst case): moderate impact, Zyzzyva still collapsed.
* **right** — a single primary crashes mid-run (Oregon's cluster
  primary for GeoBFT, the global primary for PBFT; checkpoints every
  600 txns, failure after ~900 txns): both protocols recover via view
  changes at a small overall throughput cost.  Zyzzyva (collapses
  anyway), HotStuff (no fixed primary), and Steward (no view-change
  implementation) are excluded, as in the paper.
"""

from __future__ import annotations

from repro.sweep import get_campaign, run_campaign
from repro.sweep.reports import fig12_panels

from common import assert_shape, campaign_note

Z = 4


def reproduce_figure12():
    """Shim over the registered ``fig12`` campaign (all four panels,
    including the absolute-duration primary-crash window and its
    failure-free reference runs)."""
    campaign_note("fig12")
    outcome = run_campaign(get_campaign("fig12"), jobs=1)
    assert outcome.ok, outcome.summary()
    points, panels = fig12_panels(outcome.records)
    print()
    print(outcome.artifacts["fig12"], end="")
    return (points, panels["one_backup"], panels["f_backups"],
            panels["primary"], panels["baseline"])


def test_fig12_failures(benchmark):
    points, one_failure, f_failures, primary, baseline = benchmark.pedantic(
        reproduce_figure12, rounds=1, iterations=1)
    soft = []

    # Zyzzyva collapses under any failure (paper: "plummets to zero").
    for series in (one_failure, f_failures):
        for i in range(len(points)):
            others = [series[p][i] for p in ("geobft", "pbft", "hotstuff")]
            assert_shape(series["zyzzyva"][i] < 0.25 * max(others),
                         f"Zyzzyva collapsed at n={points[i]}")

    # The other protocols keep operating under crash faults.
    for protocol in ("geobft", "pbft", "hotstuff", "steward"):
        for series in (one_failure, f_failures):
            assert_shape(all(v > 0 for v in series[protocol]),
                         f"{protocol} alive under crash faults")

    # GeoBFT still on top under its design worst case (f per cluster).
    for i in range(len(points)):
        non_zyz = {p: f_failures[p][i] for p in f_failures
                   if p != "zyzzyva"}
        assert_shape(max(non_zyz, key=non_zyz.get) == "geobft",
                     f"GeoBFT highest under f failures at n={points[i]}",
                     soft)

    # Primary failure: both GeoBFT and PBFT recover and keep
    # committing transactions.  The paper's 180-second runs amortize
    # the ~2-second outage into 'a small reduction'; our few-second
    # window makes the same absolute outage look proportionally larger,
    # so the check is that a solid fraction of throughput survives a
    # run that is mostly view-change-and-recovery.
    for protocol in ("geobft", "pbft"):
        for i in range(len(points)):
            retained = primary[protocol][i] / max(1.0,
                                                  baseline[protocol][i])
            assert_shape(retained > 0.15,
                         f"{protocol} recovers from primary failure at "
                         f"n={points[i]} (retained {retained:.2f})")
            assert_shape(primary[protocol][i] > 1000,
                         f"{protocol} keeps committing after the "
                         f"primary crash at n={points[i]}")
    if soft:
        print(f"\nsoft shape deviations (scaled-down run): {soft}")
