"""Crypto hot-path microbenchmark — host-time cost of the primitives.

Unlike the figure benchmarks, this file measures the *host* cost of the
reproduction's crypto layer: canonical encoding, digests, HMAC
signatures, and the deployment-wide verification memo.  The companion
paper ("Through the Looking Glass", PAPERS.md) shows the real system
lives or dies by exactly these per-message costs; here they bound how
much simulated time a benchmark run can afford.

Two parts:

* A microbenchmark of sign / verify / digest throughput on a
  batch-of-100 client request, fresh and cached.
* One saturated real-crypto PBFT point (z=2, n=4, batch 100) timed in
  host wall-clock seconds — the headline number for the hot-path
  overhaul, tracked across PRs via the benchmark trajectory.

Simulated results are asserted unchanged between fast and real crypto:
host-side memoization must never leak into virtual time.
"""

from __future__ import annotations

import time

from repro.crypto.digests import digest_of, encode_canonical
from repro.crypto.signatures import KeyRegistry
from repro.ledger.block import Transaction
from repro.consensus.messages import ClientRequestBatch
from repro.types import client_id

from common import assert_shape, point_config, run_point

BATCH_LEN = 100
MICRO_ROUNDS = 300


def _fresh_request(salt: int) -> ClientRequestBatch:
    batch = tuple(
        Transaction(f"c1.1:{salt}:{i}", "update", i, f"value-{salt}-{i}")
        for i in range(BATCH_LEN)
    )
    return ClientRequestBatch(f"batch-{salt}", client_id(1, 1), batch, None)


def _ops_per_s(elapsed: float, ops: int) -> float:
    return ops / elapsed if elapsed > 0 else float("inf")


def reproduce_crypto_hotpath():
    registry = KeyRegistry(seed=b"bench-hotpath")
    signer = registry.register(client_id(1, 1))

    # -- digest throughput: first touch (full encode) vs cached ---------
    requests = [_fresh_request(i) for i in range(MICRO_ROUNDS)]
    t0 = time.perf_counter()
    for request in requests:
        digest_of(request)
    fresh_digest_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for request in requests:
        digest_of(request)
    cached_digest_s = time.perf_counter() - t0

    # -- sign / verify throughput over the memoized encodings -----------
    t0 = time.perf_counter()
    signed = [
        ClientRequestBatch(r.batch_id, r.client, r.batch, signer.sign(r))
        for r in requests
    ]
    sign_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for request in signed:
        registry.verify(request, request.signature)
    first_verify_s = time.perf_counter() - t0
    # A forwarded message is re-verified at every replica; with the
    # deployment-wide memo the repeats are dictionary hits.
    t0 = time.perf_counter()
    for _ in range(7):
        for request in signed:
            registry.verify(request, request.signature)
    cached_verify_s = time.perf_counter() - t0

    stats = registry.verification_cache.stats()

    # -- the headline: one saturated real-crypto PBFT point -------------
    t0 = time.perf_counter()
    result = run_point(point_config(
        "pbft", 2, 4, batch_size=BATCH_LEN, duration=1.0, warmup=0.2,
        fast_crypto=False,
    ))
    pbft_host_s = time.perf_counter() - t0

    print()
    print("crypto hot-path microbenchmark (batch of "
          f"{BATCH_LEN} transactions, {MICRO_ROUNDS} rounds):")
    print(f"  digest  fresh : {_ops_per_s(fresh_digest_s, MICRO_ROUNDS):>12.0f} op/s")
    print(f"  digest  cached: {_ops_per_s(cached_digest_s, MICRO_ROUNDS):>12.0f} op/s")
    print(f"  sign          : {_ops_per_s(sign_s, MICRO_ROUNDS):>12.0f} op/s")
    print(f"  verify  fresh : {_ops_per_s(first_verify_s, MICRO_ROUNDS):>12.0f} op/s")
    print(f"  verify  cached: {_ops_per_s(cached_verify_s, 7 * MICRO_ROUNDS):>12.0f} op/s")
    print(f"  verification cache: {stats['hits']} hits / {stats['misses']} misses")
    print(f"saturated PBFT point (real crypto, z=2 n=4 batch={BATCH_LEN}):")
    print(f"  host wall-time : {pbft_host_s:8.3f} s")
    print(f"  simulated tput : {result.throughput_txn_s:8.0f} txn/s")
    return {
        "fresh_digest_s": fresh_digest_s,
        "cached_digest_s": cached_digest_s,
        "sign_s": sign_s,
        "first_verify_s": first_verify_s,
        "cached_verify_s": cached_verify_s,
        "cache_stats": stats,
        "pbft_host_s": pbft_host_s,
        "pbft_result": result,
    }


def test_crypto_hotpath(benchmark):
    data = benchmark.pedantic(reproduce_crypto_hotpath, rounds=1,
                              iterations=1)

    # Caching must be a strict host-side win, by a wide margin.
    assert_shape(data["cached_digest_s"] < data["fresh_digest_s"],
                 "cached digests cheaper than fresh encodes")
    assert_shape(
        data["cached_verify_s"] / 7 < data["first_verify_s"],
        "memoized verification cheaper than first verification")

    # Every repeat verification after the first is a cache hit.
    stats = data["cache_stats"]
    assert stats["hits"] == 7 * MICRO_ROUNDS
    assert stats["misses"] == MICRO_ROUNDS

    # The saturated point must actually saturate (simulated side) while
    # staying tractable on the host (the 2x-speedup acceptance number is
    # documented in CHANGES.md; here we only guard against regressing
    # into the pre-overhaul regime).
    result = data["pbft_result"]
    assert_shape(result.throughput_txn_s > 10_000,
                 "saturated PBFT point commits at full speed")
    assert result.safety_ok

    # Host memoization must not leak into simulated results: fast and
    # real crypto agree exactly on the same configuration.
    fast = run_point(point_config(
        "pbft", 2, 4, batch_size=BATCH_LEN, duration=1.0, warmup=0.2,
        fast_crypto=True,
    ))
    assert fast.throughput_txn_s == result.throughput_txn_s
    assert fast.completed_txns == result.completed_txns
    assert fast.avg_latency_s == result.avg_latency_s
