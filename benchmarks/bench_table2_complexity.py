"""Table 2 — normal-case message complexity of the BFT protocols.

Prints the analytic per-round message counts (the closed forms behind
the paper's O(.) entries) for the paper's reference deployment, and
validates them against *measured* per-decision counts from short
failure-free runs of every protocol.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import analytic_complexity
from repro.sweep import get_campaign, result_from_record, run_campaign
from repro.sweep.reports import table2_measured

from common import campaign_note

Z, N = 4, 7
PROTOCOLS = ("geobft", "pbft", "zyzzyva", "hotstuff", "steward")


def reproduce_table2():
    """Shim over the registered ``table2`` campaign."""
    campaign_note("table2")
    outcome = run_campaign(get_campaign("table2"), jobs=1)
    assert outcome.ok, outcome.summary()
    measured = {}
    for record in outcome.records:
        protocol = record["tags"]["protocol"]
        local_pd, global_pd = table2_measured(record)
        measured[protocol] = (result_from_record(record),
                              local_pd, global_pd)
    print()
    print(outcome.artifacts["table2"], end="")
    return measured


def test_table2_complexity(benchmark):
    measured = benchmark.pedantic(reproduce_table2, rounds=1, iterations=1)
    geo_global = measured["geobft"][2]
    pbft_global = measured["pbft"][2]
    steward_global = measured["steward"][2]
    hotstuff_global = measured["hotstuff"][2]

    # The paper's headline (Table 2): GeoBFT has the lowest global
    # communication cost per decision of the clustered protocols and
    # beats PBFT's quadratic global cost by a wide margin.
    assert geo_global < pbft_global / 5
    assert geo_global < hotstuff_global
    assert geo_global < steward_global

    # GeoBFT's global cost should be near the analytic (z-1)(f+1) per
    # decision (plus client traffic crossing regions is zero: clients
    # are local).  Allow overhead for checkpoints and timing edges.
    analytic = analytic_complexity("geobft", Z, N)
    assert geo_global == pytest.approx(analytic.per_decision_global(),
                                       rel=0.5)

    # GeoBFT confines its quadratic agreement cost to the local links:
    # its fraction of intra-region traffic is far higher than flat
    # PBFT's, whose all-to-all phases mostly cross regions.
    pbft_local = measured["pbft"][1]
    geo_local = measured["geobft"][1]
    geo_local_fraction = geo_local / (geo_local + geo_global)
    pbft_local_fraction = pbft_local / (pbft_local + pbft_global)
    assert geo_local_fraction > 0.85
    assert geo_local_fraction > pbft_local_fraction + 0.3
