"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*.py`` file regenerates one table or figure from the
paper's evaluation (§4).  Runs are deterministic simulations; the
pytest-benchmark timer measures how long the host takes to reproduce
the figure, while the *content* of the figure (the simulated
throughput/latency series) is printed in the paper's format and checked
against the paper's qualitative claims.

The grids and point configurations now live in
:mod:`repro.sweep.campaigns` — the figure scripts are thin shims over
the registered campaigns (``python -m repro sweep --campaign fig10``
runs the same DAG with pool fan-out and result-store caching).  This
module re-exports the grid helpers for anything still importing them
from here.

Scale control
-------------
The paper's largest experiments use ``zn = 60`` replicas.  Simulating a
saturated 60-replica PBFT run is expensive on the host, so by default
the figures run at a reduced replica budget that preserves every
trend (set ``REPRO_BENCH_FULL=1`` for the paper's exact sizes, and
``REPRO_BENCH_DURATION`` to override the simulated seconds per point).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.deployment import Deployment, ExperimentConfig
from repro.bench.scenarios import apply_scenario
from repro.sweep.campaigns import (  # noqa: F401  (re-exported surface)
    PROTOCOLS,
    batch_points,
    cluster_size_points,
    failure_points,
    full_scale,
    geo_scale_points,
    point_config,
    sim_duration,
)

#: Evaluated at import for back-compat; prefer ``full_scale()``.
FULL_SCALE = full_scale()


def campaign_note(name: str) -> None:
    """The deprecation note every migrated shim prints once per run."""
    print(f"note: this script is a thin shim over the registered "
          f"campaign {name!r}; prefer `python -m repro sweep "
          f"--campaign {name}` (add --store DIR to cache points, "
          f"--jobs N for pool fan-out).")


def run_point(config: ExperimentConfig, scenario: str = "none",
              fail_at: float = 0.0):
    """Run one data point, optionally under a failure scenario."""
    deployment = Deployment(config)
    if scenario != "none":
        apply_scenario(deployment, scenario, fail_at=fail_at)
    return deployment.run()


def sweep(protocols: Iterable[str], points: Iterable[Tuple],
          make_config, scenario: str = "none", fail_at: float = 0.0,
          ) -> Dict[str, List]:
    """Run ``protocols`` x ``points``; returns results per protocol."""
    results: Dict[str, List] = {}
    for protocol in protocols:
        results[protocol] = []
        for point in points:
            config = make_config(protocol, point)
            results[protocol].append(run_point(config, scenario, fail_at))
    return results


def assert_shape(condition: bool, claim: str,
                 soft: Optional[List[str]] = None) -> None:
    """Check a qualitative claim from the paper.

    Benchmarks validate *shape* (who wins, trends), not absolute
    numbers.  When ``soft`` is given, a failed claim is recorded there
    instead of failing the benchmark — used for secondary claims that
    are sensitive to the scaled-down deployment size.
    """
    if condition:
        return
    if soft is not None:
        soft.append(claim)
        return
    raise AssertionError(f"paper-shape claim violated: {claim}")
