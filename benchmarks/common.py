"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*.py`` file regenerates one table or figure from the
paper's evaluation (§4).  Runs are deterministic simulations; the
pytest-benchmark timer measures how long the host takes to reproduce
the figure, while the *content* of the figure (the simulated
throughput/latency series) is printed in the paper's format and checked
against the paper's qualitative claims.

Scale control
-------------
The paper's largest experiments use ``zn = 60`` replicas.  Simulating a
saturated 60-replica PBFT run is expensive on the host, so by default
the figures run at a reduced replica budget that preserves every
trend (set ``REPRO_BENCH_FULL=1`` for the paper's exact sizes, and
``REPRO_BENCH_DURATION`` to override the simulated seconds per point).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.deployment import Deployment, ExperimentConfig
from repro.bench.scenarios import apply_scenario

FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

PROTOCOLS = ("geobft", "pbft", "zyzzyva", "hotstuff", "steward")


def sim_duration(default: float) -> float:
    """Simulated seconds per data point.

    ``REPRO_BENCH_DURATION`` replaces every duration with an absolute
    value; ``REPRO_BENCH_TIME_SCALE`` multiplies the per-figure defaults
    (preserving their relative lengths — e.g. the longer primary-failure
    recovery window stays proportionally longer).
    """
    override = os.environ.get("REPRO_BENCH_DURATION")
    if override:
        return float(override)
    scale = float(os.environ.get("REPRO_BENCH_TIME_SCALE", "1.0"))
    return default * scale


def point_config(protocol: str, num_clusters: int, replicas_per_cluster: int,
                 batch_size: int = 100, duration: float = 1.6,
                 warmup: float = 0.4, seed: int = 2,
                 **overrides) -> ExperimentConfig:
    """One figure data point, with benchmark-appropriate defaults."""
    params = dict(
        protocol=protocol,
        num_clusters=num_clusters,
        replicas_per_cluster=replicas_per_cluster,
        batch_size=batch_size,
        duration=sim_duration(duration),
        warmup=warmup,
        seed=seed,
        record_count=10_000,
        fast_crypto=True,
    )
    if "duration" in overrides:
        overrides = dict(overrides)
        overrides["duration"] = sim_duration(overrides["duration"])
    params.update(overrides)
    return ExperimentConfig(**params)


def run_point(config: ExperimentConfig, scenario: str = "none",
              fail_at: float = 0.0):
    """Run one data point, optionally under a failure scenario."""
    deployment = Deployment(config)
    if scenario != "none":
        apply_scenario(deployment, scenario, fail_at=fail_at)
    return deployment.run()


def sweep(protocols: Iterable[str], points: Iterable[Tuple],
          make_config, scenario: str = "none", fail_at: float = 0.0,
          ) -> Dict[str, List]:
    """Run ``protocols`` x ``points``; returns results per protocol."""
    results: Dict[str, List] = {}
    for protocol in protocols:
        results[protocol] = []
        for point in points:
            config = make_config(protocol, point)
            results[protocol].append(run_point(config, scenario, fail_at))
    return results


def geo_scale_points() -> List[Tuple[int, int]]:
    """(z, n) pairs for Figure 10: fixed total replicas spread over a
    growing number of regions."""
    if FULL_SCALE:
        total = 60
        zs = [1, 2, 3, 4, 5, 6]
    else:
        total = 24
        zs = [1, 2, 3, 4, 6]
    return [(z, total // z) for z in zs]


def cluster_size_points() -> List[int]:
    """n values for Figure 11 (z = 4)."""
    return [4, 7, 10, 12, 15] if FULL_SCALE else [4, 7, 10]


def failure_points() -> List[int]:
    """n values for Figure 12 (z = 4)."""
    return [4, 7, 10, 12] if FULL_SCALE else [4, 7]


def batch_points() -> List[int]:
    """Batch sizes for Figure 13 (z = 4, n = 7)."""
    return [10, 50, 100, 200, 300]


def assert_shape(condition: bool, claim: str,
                 soft: Optional[List[str]] = None) -> None:
    """Check a qualitative claim from the paper.

    Benchmarks validate *shape* (who wins, trends), not absolute
    numbers.  When ``soft`` is given, a failed claim is recorded there
    instead of failing the benchmark — used for secondary claims that
    are sensitive to the scaled-down deployment size.
    """
    if condition:
        return
    if soft is not None:
        soft.append(claim)
        return
    raise AssertionError(f"paper-shape claim violated: {claim}")
