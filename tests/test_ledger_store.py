"""Tests for the YCSB store and the execution engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.ledger.block import Transaction
from repro.ledger.execution import ExecutionEngine
from repro.ledger.store import YcsbStore


class TestYcsbStore:
    def test_unwritten_records_have_deterministic_initial_values(self):
        s1, s2 = YcsbStore(100), YcsbStore(100)
        assert s1.read(42) == s2.read(42)

    def test_update_then_read(self):
        store = YcsbStore(100)
        store.update(5, "hello")
        assert store.read(5) == "hello"

    def test_insert_behaves_as_update(self):
        store = YcsbStore(100)
        store.insert(7, "x")
        assert store.read(7) == "x"

    def test_modify_appends(self):
        store = YcsbStore(100)
        first = store.read(3)
        result = store.modify(3, "s")
        assert result == first + "|s"
        assert store.read(3) == result

    def test_scan(self):
        store = YcsbStore(10)
        store.update(8, "v8")
        rows = store.scan(7, 5)
        assert [k for k, _ in rows] == [7, 8, 9]
        assert dict(rows)[8] == "v8"

    def test_key_bounds_enforced(self):
        store = YcsbStore(10)
        with pytest.raises(WorkloadError):
            store.read(10)
        with pytest.raises(WorkloadError):
            store.update(-1, "x")
        with pytest.raises(WorkloadError):
            store.scan(0, -1)

    def test_invalid_record_count(self):
        with pytest.raises(WorkloadError):
            YcsbStore(0)

    def test_counters(self):
        store = YcsbStore(10)
        store.read(1)
        store.update(1, "a")
        assert store.read_count == 1
        assert store.write_count == 1

    def test_state_digest_tracks_content(self):
        s1, s2 = YcsbStore(100), YcsbStore(100)
        assert s1.state_digest() == s2.state_digest()
        s1.update(1, "x")
        assert s1.state_digest() != s2.state_digest()
        s2.update(1, "x")
        assert s1.state_digest() == s2.state_digest()

    def test_snapshot_restore(self):
        store = YcsbStore(100)
        store.update(1, "a")
        snap = store.snapshot()
        store.update(1, "b")
        store.restore(snap)
        assert store.read(1) == "a"

    @given(st.lists(st.tuples(st.integers(0, 99), st.text(max_size=5)),
                    max_size=30))
    def test_digest_independent_of_write_order_for_final_state(self, writes):
        """Digest is a function of final state, not write history."""
        s1, s2 = YcsbStore(100), YcsbStore(100)
        for key, value in writes:
            s1.update(key, value)
        # Apply only last-write-wins state to s2.
        final = {}
        for key, value in writes:
            final[key] = value
        for key, value in final.items():
            s2.update(key, value)
        assert s1.state_digest() == s2.state_digest()


class TestExecutionEngine:
    def test_executes_each_op(self):
        engine = ExecutionEngine(YcsbStore(100))
        assert engine.execute_txn(Transaction("t1", "update", 1, "v")) == "ok"
        assert engine.execute_txn(Transaction("t2", "read", 1)) == "v"
        assert engine.execute_txn(Transaction("t3", "insert", 2, "w")) == "ok"
        assert engine.execute_txn(
            Transaction("t4", "modify", 2, "s")) == "w|s"
        assert engine.execute_txn(Transaction.noop()) == "ok"
        assert engine.executed_txns == 5

    def test_unknown_op_rejected(self):
        engine = ExecutionEngine(YcsbStore(10))
        with pytest.raises(WorkloadError):
            engine.execute_txn(Transaction("t", "drop-table", 0, ""))

    def test_determinism_across_engines(self):
        """§2.4: identical inputs produce identical outputs and state."""
        batch = tuple(
            Transaction(f"t{i}", "modify", i % 5, f"s{i}") for i in range(20)
        )
        e1 = ExecutionEngine(YcsbStore(100))
        e2 = ExecutionEngine(YcsbStore(100))
        r1 = e1.execute_batch(batch)
        r2 = e2.execute_batch(batch)
        assert r1 == r2
        assert e1.state_digest() == e2.state_digest()
        assert e1.results_digest(r1) == e2.results_digest(r2)

    def test_results_digest_sensitive_to_results(self):
        engine = ExecutionEngine(YcsbStore(10))
        assert engine.results_digest(["a"]) != engine.results_digest(["b"])
