"""Tests for GeoBFT's optional threshold-signature certificates (§2.2)."""

import pytest

from repro.bench.deployment import Deployment, ExperimentConfig
from repro.consensus.messages import (
    GlobalShare,
    ThresholdCommitCertificate,
)
from repro.core.config import GeoBftConfig
from repro.consensus.pbft import PbftConfig
from repro.errors import ConfigurationError
from repro.types import replica_id


def threshold_config(**overrides):
    defaults = dict(
        protocol="geobft",
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=5,
        clients_per_cluster=1,
        client_outstanding=2,
        duration=2.5,
        warmup=0.5,
        record_count=500,
        seed=51,
        geobft=GeoBftConfig(
            pbft=PbftConfig(view_change_timeout=1.0),
            remote_timeout=10.0,
            threshold_certificates=True,
        ),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def run(config):
    deployment = Deployment(config)
    result = deployment.run()
    return deployment, result


class TestThresholdCertificates:
    def test_progress_and_safety(self):
        deployment, result = run(threshold_config())
        assert result.safety_ok
        assert result.throughput_txn_s > 0
        assert all(r.executed_rounds > 3
                   for r in deployment.replicas.values())

    def test_global_shares_carry_compact_certificates(self):
        deployment = Deployment(threshold_config())
        compact_seen = []

        def observer(src, dst, msg, size, local):
            if isinstance(msg, GlobalShare) and not local:
                compact_seen.append(
                    isinstance(msg.certificate, ThresholdCommitCertificate))

        deployment.network.add_observer(observer)
        deployment.run()
        assert compact_seen
        assert all(compact_seen)

    def test_compact_certificates_have_constant_proof_size(self):
        """The point of §2.2's option: certificate size is independent
        of f, so inter-cluster bytes shrink as clusters grow."""
        def global_share_bytes(n, threshold):
            config = threshold_config(replicas_per_cluster=n)
            if not threshold:
                config.geobft = GeoBftConfig(remote_timeout=10.0)
            deployment = Deployment(config)
            sizes = []
            deployment.network.add_observer(
                lambda s, d, m, size, local:
                sizes.append(size)
                if isinstance(m, GlobalShare) and not local else None)
            deployment.run()
            return max(sizes)

        classic_small = global_share_bytes(4, threshold=False)
        classic_large = global_share_bytes(7, threshold=False)
        compact_small = global_share_bytes(4, threshold=True)
        compact_large = global_share_bytes(7, threshold=True)
        assert classic_large > classic_small  # grows with n - f
        assert compact_large == compact_small  # constant proof
        assert compact_small < classic_small

    def test_results_match_classic_mode(self):
        """Ledgers are identical across certificate representations —
        the proof format must not affect ordering."""
        _d1, classic = run(threshold_config(
            geobft=GeoBftConfig(remote_timeout=10.0)))
        _d2, compact = run(threshold_config())
        assert classic.safety_ok and compact.safety_ok
        # Threshold mode costs an extra local hop + combine CPU, so
        # throughput may differ; content equality is what matters.
        d1 = Deployment(threshold_config(
            geobft=GeoBftConfig(remote_timeout=10.0)))
        d1.run()
        d2 = Deployment(threshold_config())
        d2.run()
        ledger1 = d1.replicas[replica_id(2, 1)].ledger
        ledger2 = d2.replicas[replica_id(2, 1)].ledger
        common = min(ledger1.height, ledger2.height)
        assert common > 0
        for height in range(common):
            assert (ledger1.block(height).batch_digest
                    == ledger2.block(height).batch_digest)

    def test_requires_schemes(self):
        from repro.net.network import Network
        from repro.net.simulator import Simulation
        from repro.net.topology import Topology
        from repro.crypto.signatures import KeyRegistry
        from repro.core.geobft import GeoBftReplica

        sim = Simulation()
        net = Network(sim, Topology.uniform(["a"]))
        members = {1: [replica_id(1, i) for i in range(1, 5)]}
        with pytest.raises(ConfigurationError):
            GeoBftReplica(
                replica_id(1, 1), "a", sim, net, KeyRegistry(),
                cluster_members=members,
                config=GeoBftConfig(threshold_certificates=True),
            )

    def test_tampered_compact_certificate_rejected(self):
        deployment = Deployment(threshold_config(duration=1.5))
        deployment.run()
        receiver = deployment.replicas[replica_id(2, 2)]
        sender = deployment.replicas[replica_id(1, 1)]
        decision = sender._own_decisions.get(
            max(sender._own_decisions or [0]))
        assert decision is not None
        request, _cert = decision
        from repro.crypto.threshold import ThresholdSignature
        forged = ThresholdCommitCertificate(
            1, 999, 0, request, ThresholdSignature("cluster-1", b"\x00" * 32),
        )
        receiver._on_global_share(GlobalShare(999, 1, forged, forwarded=False),
                                  sender.node_id)
        assert not receiver.ordering.has_share(999, 1)
