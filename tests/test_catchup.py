"""Tests for checkpoint catch-up (the certified decision-transfer
protocol standing in for PBFT state transfer)."""

import pytest

from repro.consensus.messages import DecisionTransfer, FetchDecision
from repro.consensus.pbft import PbftConfig
from repro.types import replica_id

from .test_pbft import PbftHarness


class TestDecisionCatchUp:
    def test_partitioned_replica_catches_up_after_heal(self):
        """A replica that misses a stretch of decisions (partitioned
        away) learns of them via stable checkpoints and fetches the
        certified decisions from peers."""
        h = PbftHarness(n=4, config=PbftConfig(
            checkpoint_interval=2, view_change_timeout=30.0))
        laggard = h.replicas[3]
        # Cut the laggard off from everyone.
        for other in h.replicas[:3]:
            h.network.failures.sever_bidirectional(laggard.node_id,
                                                   other.node_id)
        for _ in range(6):
            h.submit(h.make_request())
        h.run(until=2.0)
        assert laggard.engine.decided_count == 0
        assert h.primary.engine.decided_count == 6
        # Heal; the next checkpointed decisions trigger catch-up.
        for other in h.replicas[:3]:
            h.network.failures.heal(laggard.node_id, other.node_id)
            h.network.failures.heal(other.node_id, laggard.node_id)
        for _ in range(2):
            h.submit(h.make_request())
        h.run(until=6.0)
        assert laggard.engine.decided_count == 8
        assert laggard.ledger.height == 8
        assert laggard.ledger.matches_prefix_of(h.primary.ledger)

    def test_fetch_request_answered_with_certified_decision(self):
        h = PbftHarness(n=4)
        h.submit(h.make_request())
        h.run(until=1.0)
        holder = h.replicas[1]
        requester = h.replicas[2]
        transfers = []
        h.network.add_observer(
            lambda src, dst, msg, size, local:
            transfers.append((dst, msg))
            if isinstance(msg, DecisionTransfer) else None)
        fetch = FetchDecision(holder.engine.cluster_id, 1,
                              requester.node_id)
        holder.engine._on_fetch_decision(fetch, requester.node_id)
        h.run(until=2.0)
        assert transfers
        dst, transfer = transfers[0]
        assert dst == requester.node_id
        assert transfer.seq == 1
        assert transfer.certificate.request.batch_id.startswith("b")

    def test_unknown_seq_fetch_ignored(self):
        h = PbftHarness(n=4)
        h.submit(h.make_request())
        h.run(until=1.0)
        holder = h.replicas[1]
        before = h.sim.pending_events
        fetch = FetchDecision(holder.engine.cluster_id, 99,
                              h.replicas[2].node_id)
        holder.engine._on_fetch_decision(fetch, h.replicas[2].node_id)
        # No decision 99 -> no reply scheduled.
        assert h.sim.pending_events == before

    def test_bogus_transfer_rejected(self):
        """A Byzantine peer cannot inject a fake decision: the transfer
        must carry a valid commit certificate."""
        h = PbftHarness(n=4)
        h.submit(h.make_request())
        h.run(until=1.0)
        victim = h.replicas[2]
        good_request = h.make_request()
        from repro.consensus.messages import Commit, CommitCertificate
        fake_commits = tuple(
            Commit(victim.engine.cluster_id, 0, 5, good_request.digest(),
                   replica_id(1, i), h.client_signer.sign("junk"))
            for i in range(1, 4)
        )
        fake_cert = CommitCertificate(victim.engine.cluster_id, 5, 0,
                                      good_request, fake_commits)
        transfer = DecisionTransfer(victim.engine.cluster_id, 5,
                                    good_request, fake_cert)
        decided_before = victim.engine.decided_count
        victim.engine._on_decision_transfer(transfer,
                                            h.replicas[1].node_id)
        assert victim.engine.decided_count == decided_before
        assert victim.engine.decision(5) is None

    def test_transfer_for_already_decided_seq_is_noop(self):
        h = PbftHarness(n=4)
        h.submit(h.make_request())
        h.run(until=1.0)
        replica = h.replicas[1]
        request, certificate = replica.engine.decision(1)
        transfer = DecisionTransfer(replica.engine.cluster_id, 1, request,
                                    certificate)
        before = replica.ledger.height
        replica.engine._on_decision_transfer(transfer,
                                             h.replicas[2].node_id)
        assert replica.ledger.height == before
